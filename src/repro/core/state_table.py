"""Per-sensor state interning: categorical states ↔ dense integer codes.

A :class:`StateTable` is fitted once per sensor at dataset ingest.  Its
states are kept in alphanumeric order — the same sort Section II-A1 of
the paper uses to assign encryption characters — so a state's code *is*
its alphabet position: ``SensorEncoder`` renders code ``c`` as
``ALPHABET[c]`` and every downstream integer representation stays
bijective with the legacy string one.

Code ``len(states)`` is reserved for states never seen at fit time (the
paper's unknown character); tables therefore support at most 65534
distinct states in a ``uint16`` code space, far beyond the paper's
maximum observed cardinality of 7.

Chunked ingest adds a *growable* mode: :meth:`StateTable.extend`
returns a table whose existing codes are untouched and whose novel
states are appended in first-seen order, so codes assigned while early
chunks were folded in never move when later chunks surface new states.
A grown table is therefore not necessarily sorted;
:meth:`StateTable.canonical` recovers the alphanumerically sorted
table together with the recode vector that translates grown codes into
canonical ones in a single vectorised gather.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["StateTable", "UNKNOWN_STATE", "pack_ngrams"]

#: Placeholder returned when decoding the reserved unknown code.
UNKNOWN_STATE = "<unknown>"

#: Code dtype; 65535 values bound the per-sensor cardinality.
CODE_DTYPE = np.uint16

_MAX_STATES = np.iinfo(CODE_DTYPE).max  # one code is reserved for unknown


class StateTable:
    """An interned, alphanumerically sorted state ↔ code mapping.

    Parameters
    ----------
    sensor:
        Sensor identifier the table belongs to.
    states:
        Distinct states in alphanumeric order.  :meth:`from_events`
        sorts for you; the direct constructor validates the order so a
        table can never silently disagree with the paper's character
        assignment.
    """

    __slots__ = ("sensor", "states", "_index")

    def __init__(self, sensor: str, states: Sequence[str]) -> None:
        states = tuple(str(state) for state in states)
        if len(states) > _MAX_STATES:
            raise ValueError(
                f"sensor {sensor!r} has {len(states)} distinct states, "
                f"exceeding the {_MAX_STATES}-state code space"
            )
        if any(states[i] >= states[i + 1] for i in range(len(states) - 1)):
            raise ValueError(
                f"states for sensor {sensor!r} must be unique and "
                "alphanumerically sorted"
            )
        self.sensor = str(sensor)
        self.states = states
        self._index = {state: code for code, state in enumerate(states)}

    @classmethod
    def from_events(cls, sensor: str, events: Iterable[str]) -> "StateTable":
        """Intern the distinct states of an event stream."""
        return cls(sensor, sorted({str(event) for event in events}))

    @classmethod
    def _grown(cls, sensor: str, states: tuple[str, ...]) -> "StateTable":
        """Construct a (possibly unsorted) grown table without the
        sorted-order validation — only :meth:`extend` may call this;
        states are already distinct strings in first-seen order."""
        if len(states) > _MAX_STATES:
            raise ValueError(
                f"sensor {sensor!r} has {len(states)} distinct states, "
                f"exceeding the {_MAX_STATES}-state code space"
            )
        table = cls.__new__(cls)
        table.sensor = str(sensor)
        table.states = states
        table._index = {state: code for code, state in enumerate(states)}
        return table

    # ------------------------------------------------------------------
    # Growable interning (chunked ingest)
    # ------------------------------------------------------------------
    @property
    def is_sorted(self) -> bool:
        """Whether states are in canonical alphanumeric order."""
        return all(
            self.states[i] < self.states[i + 1] for i in range(len(self.states) - 1)
        )

    def extend(self, new_states: Iterable[str]) -> "StateTable":
        """Grow the table with any unseen states, keeping codes stable.

        Every code this table already assigned keeps its value in the
        returned table; states never seen before are appended in
        first-seen order and take the next codes.  Returns ``self``
        unchanged when nothing new appears, so chunked ingest pays for
        a new table only on the (rare) chunks that enlarge a sensor's
        alphabet.  The result may be unsorted — finalisation recovers
        the paper's alphanumeric order via :meth:`canonical`.
        """
        index = self._index
        novel: list[str] = []
        seen_novel: set[str] = set()
        for state in new_states:
            state = str(state)
            if state not in index and state not in seen_novel:
                seen_novel.add(state)
                novel.append(state)
        if not novel:
            return self
        return StateTable._grown(self.sensor, self.states + tuple(novel))

    def canonical(self) -> "tuple[StateTable, np.ndarray | None]":
        """The sorted table over the same states, plus a recode vector.

        Returns ``(table, recode)`` where ``table`` is the
        alphanumerically sorted :class:`StateTable` a one-shot
        :meth:`from_events` fit would have produced, and ``recode`` is
        the gather vector such that ``recode[grown_code]`` is the
        canonical code for the same state (with the trailing slot
        translating the unknown code).  ``recode`` is ``None`` when the
        table is already sorted — codes are then canonical as-is.
        """
        if self.is_sorted:
            return self, None
        ordered = StateTable(self.sensor, sorted(self.states))
        return ordered, ordered.recode_lookup(self)

    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of interned states."""
        return len(self.states)

    @property
    def unknown_code(self) -> int:
        """The reserved code for states absent from the table."""
        return len(self.states)

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[str]:
        return iter(self.states)

    def __contains__(self, state: str) -> bool:
        return state in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateTable):
            return NotImplemented
        return self.sensor == other.sensor and self.states == other.states

    def __hash__(self) -> int:
        return hash((self.sensor, self.states))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateTable({self.sensor!r}, {len(self.states)} states)"

    # ------------------------------------------------------------------
    def code_of(self, state: str) -> int:
        """The code of ``state``; unseen states get :attr:`unknown_code`."""
        return self._index.get(str(state), len(self.states))

    def state_of(self, code: int) -> str:
        """The state interned at ``code`` (:data:`UNKNOWN_STATE` for the
        reserved unknown code)."""
        if code == len(self.states):
            return UNKNOWN_STATE
        return self.states[code]

    def encode(self, events: Iterable[str]) -> np.ndarray:
        """Intern an event stream into a ``uint16`` code array."""
        index = self._index
        unknown = len(self.states)
        return np.fromiter(
            (index.get(str(event), unknown) for event in events),
            dtype=CODE_DTYPE,
        )

    def decode(self, codes: Iterable[int]) -> list[str]:
        """Decode codes back to states (unknown → :data:`UNKNOWN_STATE`)."""
        lookup = self.states + (UNKNOWN_STATE,)
        return [lookup[code] for code in np.asarray(codes, dtype=np.int64).tolist()]

    def recode_lookup(self, other: "StateTable") -> np.ndarray:
        """Translation vector from ``other``'s code space into this one.

        ``lookup[other_code]`` is this table's code for the same state;
        states this table never interned (including ``other``'s unknown
        code) map to this table's unknown code.  Applying the vector to
        a code array re-encodes it in one vectorised gather.
        """
        unknown = self.unknown_code
        # The trailing slot translates ``other``'s own unknown code.
        return np.asarray(
            [self._index.get(state, unknown) for state in other.states] + [unknown],
            dtype=CODE_DTYPE,
        )

    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[str, tuple[str, ...]]:
        return (self.sensor, self.states)

    def __setstate__(self, state: tuple[str, tuple[str, ...]]) -> None:
        sensor, states = state
        self.sensor = sensor
        self.states = states
        self._index = {value: code for code, value in enumerate(states)}


def pack_ngrams(windows: np.ndarray, base: int) -> np.ndarray | None:
    """Pack fixed-length integer windows into scalar ``int64`` keys.

    ``windows`` is a ``(count, width)`` array whose entries lie in
    ``[0, base)``; each row becomes the base-``base`` number with the
    row's first entry most significant — the same bijection as reading
    the row as a fixed-width string.  Returns ``None`` when ``base **
    width`` would overflow a signed 64-bit key, signalling the caller
    to fall back to tuple keys.
    """
    if base < 1:
        raise ValueError("base must be positive")
    width = windows.shape[1] if windows.ndim == 2 else 0
    if width == 0:
        return np.zeros(len(windows), dtype=np.int64)
    if base ** width >= 2 ** 63:
        return None
    weights = base ** np.arange(width - 1, -1, -1, dtype=np.int64)
    return windows.astype(np.int64, copy=False) @ weights
