"""The columnar code matrix behind an aligned multivariate event log.

An :class:`EventFrame` stores one aligned log as a single
``(num_sensors, num_samples)`` ``uint16`` matrix plus one
:class:`~repro.core.state_table.StateTable` per sensor.  It is built
once at dataset ingest; every later consumer — windowing, encryption,
fingerprinting, slicing — reads zero-copy views of the matrix instead
of re-materialising Python strings.

:class:`EventFrameBuilder` is the chunked ingest path: it folds
``{sensor: [state, ...]}`` blocks into growing per-sensor code lists
(interned through growable :class:`StateTable`\\ s so early codes never
move), then finalises into an :class:`EventFrame` whose
:meth:`~EventFrame.digest` is bit-identical to a one-shot build over
the concatenated events.  Row digests roll chunk-at-a-time during
finalisation and are cached on the frame, so downstream fingerprinting
never rescans the matrix.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .state_table import CODE_DTYPE, StateTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lang.events import EventSequence

__all__ = ["EventFrame", "EventFrameBuilder"]


def _row_hasher(sensor: str, states: Sequence[str]) -> "hashlib._Hash":
    """The shared row-digest prefix: sensor name plus table states.

    Row digests are ``prefix + raw little-endian code bytes``; keeping
    the prefix construction in one place guarantees the builder's
    rolling digests and :meth:`EventFrame.row_digest` agree byte for
    byte.
    """
    hasher = hashlib.sha256()
    hasher.update(sensor.encode("utf-8"))
    hasher.update(b"\x00")
    for state in states:
        hasher.update(state.encode("utf-8"))
        hasher.update(b"\x1f")
    hasher.update(b"\x00")
    return hasher


class EventFrame:
    """Code matrix + per-sensor state tables for one aligned log.

    Parameters
    ----------
    sensors:
        Sensor names, one per matrix row, in order.
    codes:
        ``(len(sensors), num_samples)`` ``uint16`` matrix of interned
        state codes.
    tables:
        One fitted :class:`StateTable` per sensor.
    """

    __slots__ = ("sensors", "codes", "tables", "_row_digests")

    def __init__(
        self,
        sensors: Iterable[str],
        codes: np.ndarray,
        tables: dict[str, StateTable],
    ) -> None:
        self.sensors = tuple(sensors)
        codes = np.asarray(codes, dtype=CODE_DTYPE)
        if codes.ndim != 2 or codes.shape[0] != len(self.sensors):
            raise ValueError(
                f"code matrix shape {codes.shape} does not match "
                f"{len(self.sensors)} sensors"
            )
        missing = [name for name in self.sensors if name not in tables]
        if missing:
            raise ValueError(f"missing state tables for sensors: {missing}")
        self.codes = codes
        self.tables = {name: tables[name] for name in self.sensors}
        # Memoized row digests: rows and tables are immutable by
        # contract, so a digest computed (or pre-seeded by the chunked
        # builder) once is valid forever.  Views produced by
        # slice/select start with an empty cache of their own.
        self._row_digests: dict[str, str] = {}

    @classmethod
    def from_sequences(cls, sequences: "Iterable[EventSequence]") -> "EventFrame":
        """Stack per-sensor code rows into one matrix (the only copy).

        All sequences must have equal length; an empty iterable yields
        the empty ``(0, 0)`` frame.
        """
        sequences = list(sequences)
        if not sequences:
            return cls((), np.zeros((0, 0), dtype=CODE_DTYPE), {})
        matrix = np.vstack([np.asarray(seq.codes, dtype=CODE_DTYPE) for seq in sequences])
        return cls(
            (seq.sensor for seq in sequences),
            matrix,
            {seq.sensor: seq.table for seq in sequences},
        )

    # ------------------------------------------------------------------
    @property
    def num_sensors(self) -> int:
        return len(self.sensors)

    @property
    def num_samples(self) -> int:
        return int(self.codes.shape[1]) if self.codes.ndim == 2 else 0

    def __contains__(self, sensor: str) -> bool:
        return sensor in self.tables

    def __iter__(self) -> Iterator[str]:
        return iter(self.sensors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventFrame({self.num_sensors} sensors x {self.num_samples} samples)"

    def row(self, sensor: str) -> np.ndarray:
        """Zero-copy view of one sensor's code row."""
        return self.codes[self.sensors.index(sensor)]

    def table(self, sensor: str) -> StateTable:
        return self.tables[sensor]

    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "EventFrame":
        """Frame restricted to samples ``[start, stop)`` — a pure view."""
        return EventFrame(self.sensors, self.codes[:, start:stop], self.tables)

    def select(self, sensors: Iterable[str]) -> "EventFrame":
        """Frame restricted to the named sensors (rows are copied once)."""
        names = list(sensors)
        missing = [name for name in names if name not in self.tables]
        if missing:
            raise KeyError(f"unknown sensors: {missing}")
        rows = [self.sensors.index(name) for name in names]
        return EventFrame(names, self.codes[rows], self.tables)

    # ------------------------------------------------------------------
    def row_digest(self, sensor: str) -> str:
        """SHA-256 fingerprint of one sensor's codes and state table.

        Hashes the interned representation directly — the code bytes in
        fixed little-endian ``uint16`` plus the table's states — rather
        than re-rendering the row to strings, so fingerprinting stays a
        single pass over packed memory.  Digests are memoized (frames
        are immutable), and frames produced by
        :class:`EventFrameBuilder` arrive with the cache pre-seeded
        from the rolling per-chunk digests.
        """
        cached = self._row_digests.get(sensor)
        if cached is not None:
            return cached
        hasher = _row_hasher(sensor, self.tables[sensor].states)
        row = np.ascontiguousarray(self.row(sensor), dtype="<u2")
        hasher.update(row.tobytes())
        digest = hasher.hexdigest()
        self._row_digests[sensor] = digest
        return digest

    def digest(self) -> str:
        """Fingerprint of the whole frame (sensor order is significant)."""
        hasher = hashlib.sha256()
        for sensor in self.sensors:
            hasher.update(self.row_digest(sensor).encode("ascii"))
            hasher.update(b"\x1e")
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    def __getstate__(self):
        # The digest cache is derivable; dropping it keeps pickles
        # byte-stable regardless of what was fingerprinted in-session.
        return (self.sensors, self.codes, self.tables)

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple) and len(state) == 2:
            # Legacy default slot-state pickles from before the digest
            # cache existed: (None, {slot: value}).
            slots = state[1]
            sensors, codes, tables = slots["sensors"], slots["codes"], slots["tables"]
        else:
            sensors, codes, tables = state
        self.sensors = sensors
        self.codes = codes
        self.tables = tables
        self._row_digests = {}


class EventFrameBuilder:
    """Fold event chunks into a growing columnar core.

    The chunked counterpart of a one-shot :class:`EventFrame` build:
    feed ``{sensor: [state, ...]}`` blocks to :meth:`append` in sample
    order, then call :meth:`finalize`.  Internally each sensor's states
    are interned through a growable :class:`StateTable` (codes assigned
    by early chunks never move when later chunks surface novel states)
    and each chunk is kept as one small ``uint16`` code block, so peak
    memory is the final matrix plus one chunk of strings — never the
    whole decoded log.

    Finalisation canonicalises every sensor's table to the paper's
    alphanumeric order, recodes the accumulated blocks with one gather
    per block while rolling the per-row digests chunk-at-a-time, and
    returns an :class:`EventFrame` that is bit-identical (matrix,
    tables and :meth:`~EventFrame.digest`) to a one-shot build over the
    concatenated events.  The digest cache rides along on the frame, so
    downstream stage fingerprints reuse the rolling digests instead of
    rescanning the matrix.
    """

    def __init__(self, sensors: "Iterable[str] | None" = None) -> None:
        self._sensors: tuple[str, ...] | None = (
            None if sensors is None else tuple(str(name) for name in sensors)
        )
        if self._sensors is not None:
            self._check_duplicate_sensors(self._sensors)
        self._tables: dict[str, StateTable] = {}
        self._blocks: dict[str, list[np.ndarray]] = {}
        self._samples = 0
        self._finalized = False

    @staticmethod
    def _check_duplicate_sensors(names: Sequence[str]) -> None:
        seen: set[str] = set()
        duplicates = [name for name in names if name in seen or seen.add(name)]
        if duplicates:
            raise ValueError(f"duplicate sensor name: {duplicates[0]!r}")

    # ------------------------------------------------------------------
    @property
    def sensors(self) -> tuple[str, ...]:
        """Sensor order, fixed by the constructor or the first chunk."""
        return self._sensors or ()

    @property
    def num_samples(self) -> int:
        """Samples appended so far."""
        return self._samples

    def __len__(self) -> int:
        return self._samples

    # ------------------------------------------------------------------
    def append(self, chunk: "Mapping[str, Sequence[str]]") -> None:
        """Fold one ``{sensor: [state, ...]}`` block into the core.

        The first chunk fixes the sensor set and order; every later
        chunk must cover exactly the same sensors, and all columns of a
        chunk must share one length (the chunk's sample count).  Empty
        chunks are permitted and contribute nothing.
        """
        if self._finalized:
            raise RuntimeError("builder is finalized; create a new one")
        if self._sensors is None:
            names = tuple(str(name) for name in chunk)
            self._check_duplicate_sensors(names)
            self._sensors = names
        else:
            got = {str(name) for name in chunk}
            expected = set(self._sensors)
            if got != expected:
                missing = sorted(expected - got)
                extra = sorted(got - expected)
                raise ValueError(
                    f"chunk sensors diverge from the first chunk's: "
                    f"missing {missing}, unexpected {extra}"
                )
        lengths = {name: len(chunk[name]) for name in self._sensors}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"chunk columns are not aligned; lengths={lengths}")
        length = next(iter(lengths.values())) if lengths else 0
        if length == 0:
            return
        for name in self._sensors:
            events = [str(event) for event in chunk[name]]
            table = self._tables.get(name)
            if table is None:
                table = StateTable.from_events(name, events)
            else:
                table = table.extend(events)
            self._tables[name] = table
            self._blocks.setdefault(name, []).append(table.encode(events))
        self._samples += length

    def finalize(self) -> EventFrame:
        """Canonicalise tables, recode blocks and seal the frame.

        After this the builder refuses further :meth:`append` calls.
        """
        if self._finalized:
            raise RuntimeError("builder is already finalized")
        self._finalized = True
        if self._sensors is None:
            return EventFrame((), np.zeros((0, 0), dtype=CODE_DTYPE), {})
        matrix = np.empty((len(self._sensors), self._samples), dtype=CODE_DTYPE)
        tables: dict[str, StateTable] = {}
        digests: dict[str, str] = {}
        for row, name in enumerate(self._sensors):
            grown = self._tables.get(name)
            if grown is None:  # all chunks were empty
                grown = StateTable(name, ())
            table, recode = grown.canonical()
            tables[name] = table
            hasher = _row_hasher(name, table.states)
            position = 0
            for block in self._blocks.get(name, ()):
                if recode is not None:
                    block = recode[block]
                stop = position + len(block)
                matrix[row, position:stop] = block
                hasher.update(np.ascontiguousarray(block, dtype="<u2").tobytes())
                position = stop
            digests[name] = hasher.hexdigest()
        self._blocks.clear()
        frame = EventFrame(self._sensors, matrix, tables)
        frame._row_digests.update(digests)
        return frame
