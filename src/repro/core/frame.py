"""The columnar code matrix behind an aligned multivariate event log.

An :class:`EventFrame` stores one aligned log as a single
``(num_sensors, num_samples)`` ``uint16`` matrix plus one
:class:`~repro.core.state_table.StateTable` per sensor.  It is built
once at dataset ingest; every later consumer — windowing, encryption,
fingerprinting, slicing — reads zero-copy views of the matrix instead
of re-materialising Python strings.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from .state_table import CODE_DTYPE, StateTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lang.events import EventSequence

__all__ = ["EventFrame"]


class EventFrame:
    """Code matrix + per-sensor state tables for one aligned log.

    Parameters
    ----------
    sensors:
        Sensor names, one per matrix row, in order.
    codes:
        ``(len(sensors), num_samples)`` ``uint16`` matrix of interned
        state codes.
    tables:
        One fitted :class:`StateTable` per sensor.
    """

    __slots__ = ("sensors", "codes", "tables")

    def __init__(
        self,
        sensors: Iterable[str],
        codes: np.ndarray,
        tables: dict[str, StateTable],
    ) -> None:
        self.sensors = tuple(sensors)
        codes = np.asarray(codes, dtype=CODE_DTYPE)
        if codes.ndim != 2 or codes.shape[0] != len(self.sensors):
            raise ValueError(
                f"code matrix shape {codes.shape} does not match "
                f"{len(self.sensors)} sensors"
            )
        missing = [name for name in self.sensors if name not in tables]
        if missing:
            raise ValueError(f"missing state tables for sensors: {missing}")
        self.codes = codes
        self.tables = {name: tables[name] for name in self.sensors}

    @classmethod
    def from_sequences(cls, sequences: "Iterable[EventSequence]") -> "EventFrame":
        """Stack per-sensor code rows into one matrix (the only copy).

        All sequences must have equal length; an empty iterable yields
        the empty ``(0, 0)`` frame.
        """
        sequences = list(sequences)
        if not sequences:
            return cls((), np.zeros((0, 0), dtype=CODE_DTYPE), {})
        matrix = np.vstack([np.asarray(seq.codes, dtype=CODE_DTYPE) for seq in sequences])
        return cls(
            (seq.sensor for seq in sequences),
            matrix,
            {seq.sensor: seq.table for seq in sequences},
        )

    # ------------------------------------------------------------------
    @property
    def num_sensors(self) -> int:
        return len(self.sensors)

    @property
    def num_samples(self) -> int:
        return int(self.codes.shape[1]) if self.codes.ndim == 2 else 0

    def __contains__(self, sensor: str) -> bool:
        return sensor in self.tables

    def __iter__(self) -> Iterator[str]:
        return iter(self.sensors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventFrame({self.num_sensors} sensors x {self.num_samples} samples)"

    def row(self, sensor: str) -> np.ndarray:
        """Zero-copy view of one sensor's code row."""
        return self.codes[self.sensors.index(sensor)]

    def table(self, sensor: str) -> StateTable:
        return self.tables[sensor]

    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "EventFrame":
        """Frame restricted to samples ``[start, stop)`` — a pure view."""
        return EventFrame(self.sensors, self.codes[:, start:stop], self.tables)

    def select(self, sensors: Iterable[str]) -> "EventFrame":
        """Frame restricted to the named sensors (rows are copied once)."""
        names = list(sensors)
        missing = [name for name in names if name not in self.tables]
        if missing:
            raise KeyError(f"unknown sensors: {missing}")
        rows = [self.sensors.index(name) for name in names]
        return EventFrame(names, self.codes[rows], self.tables)

    # ------------------------------------------------------------------
    def row_digest(self, sensor: str) -> str:
        """SHA-256 fingerprint of one sensor's codes and state table.

        Hashes the interned representation directly — the code bytes in
        fixed little-endian ``uint16`` plus the table's states — rather
        than re-rendering the row to strings, so fingerprinting stays a
        single pass over packed memory.
        """
        table = self.tables[sensor]
        hasher = hashlib.sha256()
        hasher.update(sensor.encode("utf-8"))
        hasher.update(b"\x00")
        for state in table.states:
            hasher.update(state.encode("utf-8"))
            hasher.update(b"\x1f")
        hasher.update(b"\x00")
        row = np.ascontiguousarray(self.row(sensor), dtype="<u2")
        hasher.update(row.tobytes())
        return hasher.hexdigest()

    def digest(self) -> str:
        """Fingerprint of the whole frame (sensor order is significant)."""
        hasher = hashlib.sha256()
        for sensor in self.sensors:
            hasher.update(self.row_digest(sensor).encode("ascii"))
            hasher.update(b"\x1e")
        return hasher.hexdigest()
