"""Columnar event core: interned integer codes behind every layer.

The paper's input ``{X^k_t}`` is categorical, yet the seed reproduction
re-handled Python strings at every layer — encryption re-mapped states
per call, windowing sliced character strings, BLEU hashed string
n-grams.  This package is the integer-coded data model those layers now
sit on top of:

- :class:`StateTable` interns one sensor's categorical states *once*
  (alphanumerically sorted, the paper's order) and maps them to dense
  ``uint16`` codes;
- :class:`EventFrame` stacks the per-sensor code rows of an aligned
  multivariate log into a single ``(num_sensors, num_samples)`` code
  matrix that windowing and fingerprinting read with zero-copy views;
- :class:`EventFrameBuilder` grows that matrix chunk-at-a-time for
  streaming ingest, using :meth:`StateTable.extend`'s stable-code
  growable interning, and finalises bit-identically to a one-shot
  build.

:mod:`repro.lang` keeps its string-facing constructors and iteration
APIs as thin shims that decode lazily from this representation.
"""

from .frame import EventFrame, EventFrameBuilder
from .state_table import UNKNOWN_STATE, StateTable, pack_ngrams

__all__ = [
    "EventFrame",
    "EventFrameBuilder",
    "StateTable",
    "UNKNOWN_STATE",
    "pack_ngrams",
]
