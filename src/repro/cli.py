"""Command-line interface.

Three subcommands mirror the framework's lifecycle on CSV event logs
(one column per sensor, one row per sampling interval):

- ``train``   — fit Algorithm 1 on a training + development CSV and
  save the fitted framework;
- ``detect``  — run Algorithm 2 on a testing CSV with a saved
  framework, printing per-window anomaly scores (optionally as JSON);
- ``inspect`` — print a saved framework's Table-I statistics, popular
  sensors and clusters, optionally exporting the graph to JSON/GraphML.

``train`` (alias ``build``) accepts ``--cache-dir`` to reuse pair
models from a content-addressed artifact cache across rebuilds; the
companion ``cache`` subcommand inspects or garbage-collects such a
cache.  ``train`` and ``detect`` accept ``--chunk-size`` to stream
their CSVs through the chunked ingest path (bit-identical results,
bounded peak memory), ``serve`` runs the sharded streaming detection
service over one or more tenant streams (see ``docs/service.md``),
``bench scale`` runs the size-tiered scaling ladder into
``BENCH_scale.json`` and ``bench online`` sweeps the streaming
service across shard counts into ``BENCH_online.json``.

Example::

    python -m repro.cli train train.csv dev.csv --model plant.pkl \
        --word-size 10 --sentence-length 20
    python -m repro.cli detect test.csv --model plant.pkl --threshold 0.5
    python -m repro.cli inspect --model plant.pkl --export-json graph.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .graph.export import save_graph_json, save_graphml
from .graph.ranges import ScoreRange
from .lang.corpus import LanguageConfig
from .lang.events import MultivariateEventLog
from .obs import MetricsRegistry, configure_logging
from .pipeline.config import FrameworkConfig
from .pipeline.framework import AnalyticsFramework
from .pipeline.persistence import PairCheckpointStore, load_framework, save_framework
from .report.tables import ascii_table
from .scenarios import (
    DEFAULT_DETECTORS,
    TIERS,
    generate_scenario,
    run_scenario,
    scenario_names,
)
from .scenarios.generators import SCENARIOS
from .scenarios.harness import append_bench_record

__all__ = ["main", "build_parser"]


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """Logging/metrics flags shared by the train and detect subcommands."""
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        metavar="LEVEL",
        help="enable structured logging on the 'repro' logger hierarchy at "
        "this level (DEBUG, INFO, WARNING, ...); unset leaves logging "
        "unconfigured",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines (implies --log-level INFO "
        "unless --log-level is given)",
    )
    parser.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's metrics snapshot (stage timings, cache "
        "hit/miss counts, pair-training and detection counters) as JSON "
        "to this path",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Discrete-event-sequence analytics (Nie et al., DSN 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser(
        "train",
        aliases=["build"],
        help="fit the relationship graph (Algorithm 1)",
    )
    train.add_argument("training_csv", type=Path)
    train.add_argument("development_csv", type=Path)
    train.add_argument("--model", type=Path, required=True, help="output model path")
    train.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="stream the CSVs through the chunked ingest path, this many "
        "rows at a time (bit-identical to the default in-memory load; "
        "bounds peak memory on large logs)",
    )
    train.add_argument("--word-size", type=int, default=10)
    train.add_argument("--word-stride", type=int, default=1)
    train.add_argument("--sentence-length", type=int, default=20)
    train.add_argument("--sentence-stride", type=int, default=None)
    train.add_argument("--engine", choices=("ngram", "seq2seq"), default="ngram")
    train.add_argument(
        "--representation",
        choices=("codes", "strings"),
        default="codes",
        help="sentence representation: packed integer word keys (codes, "
        "default) or legacy encrypted character strings; scores are "
        "bit-identical either way",
    )
    train.add_argument(
        "--prescreen",
        choices=("off", "bleu", "mi"),
        default="off",
        help="pair-affinity prescreen: prune unordered sensor pairs whose "
        "cheap affinity falls below the calibrated floor before any "
        "translation model trains (see docs/prescreen.md); 'off' "
        "(default) is bit-identical to builds without the prescreen",
    )
    train.add_argument(
        "--prescreen-floor",
        type=float,
        default=None,
        metavar="FLOOR",
        help="override the prescreen method's calibrated affinity floor "
        "(0-100, on the predicted-BLEU scale)",
    )
    train.add_argument("--popular-threshold", type=int, default=100)
    train.add_argument(
        "--range",
        type=str,
        default="80:90",
        help="detection BLEU range, LOW:HIGH (default 80:90)",
    )
    train.add_argument(
        "--n-jobs",
        type=str,
        default="1",
        help="parallel pair-training workers: a count or 'auto' (default 1)",
    )
    train.add_argument(
        "--train-engine",
        choices=("looped", "batched"),
        default="looped",
        help="pair-training engine: 'looped' (default) trains one model at "
        "a time; 'batched' (seq2seq only) advances cohorts of "
        "shape-compatible pairs in lockstep inside one tensor program "
        "(see docs/architecture.md)",
    )
    train.add_argument(
        "--cohort-size",
        type=int,
        default=None,
        metavar="PAIRS",
        help="maximum pairs per batched cohort (default 32; only "
        "meaningful with --train-engine batched)",
    )
    train.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="pair-level checkpoint journal (default: MODEL.pairs when --resume)",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint journal instead of retraining "
        "finished pairs (a stale journal is cleared without this flag)",
    )
    train.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed artifact cache: rebuilds with unchanged "
        "inputs restore pairs instead of retraining them",
    )
    train.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache even when --cache-dir is given",
    )
    train.add_argument(
        "--report-json",
        type=Path,
        default=None,
        help="write the build report (trained/cached/resumed/skipped pairs) "
        "as JSON to this path",
    )
    _add_observability_arguments(train)

    detect = sub.add_parser("detect", help="score a testing log (Algorithm 2)")
    detect.add_argument("testing_csv", type=Path)
    detect.add_argument("--model", type=Path, required=True)
    detect.add_argument("--threshold", type=float, default=0.5, help="alarm threshold")
    detect.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="stream the testing CSV through the chunked ingest path "
        "(bit-identical scores; bounds peak memory on large logs)",
    )
    detect.add_argument("--json", action="store_true", help="emit JSON instead of text")
    _add_observability_arguments(detect)

    inspect = sub.add_parser("inspect", help="summarise a trained model")
    inspect.add_argument("--model", type=Path, required=True)
    inspect.add_argument("--export-json", type=Path, default=None)
    inspect.add_argument("--export-graphml", type=Path, default=None)
    inspect.add_argument(
        "--report", type=Path, default=None, help="write a markdown report here"
    )

    cache = sub.add_parser("cache", help="inspect or clean a build cache")
    cache.add_argument("cache_dir", type=Path)
    cache.add_argument(
        "--gc-days",
        type=float,
        default=None,
        help="delete artifacts last touched more than this many days ago",
    )
    cache.add_argument(
        "--purge", action="store_true", help="delete every artifact in the cache"
    )
    cache.add_argument("--json", action="store_true", help="emit JSON instead of text")

    scenarios = sub.add_parser(
        "scenarios",
        help="generate and evaluate labeled fault scenarios",
        description="Fault-scenario suite: 'list' the registered "
        "generators, 'run' the evaluation harness (framework + baselines, "
        "event-level scoring, benchmark records), or print deterministic "
        "frame 'digest's for drift checks.",
    )
    scenarios.add_argument(
        "action",
        choices=("list", "run", "digest"),
        help="list scenarios, run the harness, or print frame digests",
    )
    scenarios.add_argument(
        "names",
        nargs="*",
        help="scenario names (see 'scenarios list'); empty with --all "
        "means every scenario",
    )
    scenarios.add_argument("--all", action="store_true", help="select every scenario")
    scenarios.add_argument(
        "--tier",
        choices=tuple(sorted(TIERS)),
        default="tiny",
        help="scenario size tier (default tiny)",
    )
    scenarios.add_argument("--seed", type=int, default=11)
    scenarios.add_argument(
        "--detectors",
        type=str,
        default=",".join(DEFAULT_DETECTORS),
        help="comma-separated detectors to run "
        f"(default {','.join(DEFAULT_DETECTORS)})",
    )
    scenarios.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="PATH",
        help="append repro-scenarios-v1 records to this benchmark JSON "
        "(one record per scenario, keyed on scenario/tier/seed)",
    )
    scenarios.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    _add_observability_arguments(scenarios)

    serve = sub.add_parser(
        "serve",
        help="run the sharded streaming detection service",
        description="Sharded streaming detection: each NAME=CSV pair is "
        "one tenant stream, routed to a shard and scored incrementally "
        "against the saved model; windows from every shard interleave "
        "into one merged fleet feed.  With --snapshot-dir the service "
        "restores a prior snapshot before ingesting and writes a fresh "
        "one after draining, so a restarted run resumes mid-stream.",
    )
    serve.add_argument(
        "streams",
        nargs="+",
        metavar="NAME=CSV",
        help="tenant streams: a stream name and its event CSV",
    )
    serve.add_argument("--model", type=Path, required=True)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of detector shards (default 1)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="ITEMS",
        help="per-shard ingest queue bound in work items (default 64)",
    )
    serve.add_argument(
        "--backpressure",
        choices=("block", "reject"),
        default="block",
        help="full-queue policy: 'block' the producer (default, lossless) "
        "or 'reject' the chunk (bounded latency; drops are counted "
        "under service.dropped)",
    )
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="samples per submitted chunk (default 256)",
    )
    serve.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="restore stream state from this directory when a snapshot "
        "is present, and write one after the run drains",
    )
    serve.add_argument(
        "--threshold", type=float, default=0.5, help="alarm threshold"
    )
    serve.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    _add_observability_arguments(serve)

    bench = sub.add_parser(
        "bench",
        help="run scaling benchmarks",
        description="Scaling benchmarks: 'scale' runs the size-tiered "
        "ladder (generate, chunked + resident ingest, fit, detect per "
        "tier) and logs repro-scale-v1 records with wall seconds, heap "
        "peaks and per-stage throughput; 'online' sweeps the sharded "
        "streaming service across shard counts and logs repro-online-v1 "
        "records with events/second and p99 window latency.",
    )
    bench.add_argument(
        "action", choices=("scale", "online"), help="benchmark family to run"
    )
    bench.add_argument(
        "--shard-counts",
        type=str,
        default=None,
        metavar="COUNTS",
        help="bench online: comma-separated shard counts to sweep "
        "(default 1,2,4)",
    )
    bench.add_argument(
        "--tenants",
        type=int,
        default=4,
        help="bench online: tenant streams replaying the scenario log "
        "(default 4)",
    )
    bench.add_argument(
        "--tiers",
        type=str,
        default=None,
        metavar="NAMES",
        help="comma-separated tier names, smallest first "
        "(default: the full ladder; see docs/cli.md)",
    )
    bench.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="rows per chunk for the chunked-ingest phase (default 256)",
    )
    bench.add_argument(
        "--seed", type=int, default=None, help="override each tier's generator seed"
    )
    bench.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="PATH",
        help="append repro-scale-v1 records to this benchmark JSON "
        "(one record per tier, keyed on tier/chunk_size/seed)",
    )
    bench.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )
    _add_observability_arguments(bench)

    simulate = sub.add_parser(
        "simulate", help="generate a synthetic dataset to files"
    )
    simulate.add_argument("kind", choices=("plant", "backblaze"))
    simulate.add_argument("output_dir", type=Path)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--sensors", type=int, default=20, help="plant only")
    simulate.add_argument("--days", type=int, default=30)
    simulate.add_argument(
        "--samples-per-day", type=int, default=96, help="plant only"
    )
    simulate.add_argument("--drives", type=int, default=24, help="backblaze only")
    simulate.add_argument(
        "--split",
        type=str,
        default=None,
        help="plant only: TRAIN:DEV day counts; also writes train/dev/test CSVs",
    )
    return parser


def _parse_range(text: str) -> ScoreRange:
    try:
        low_text, high_text = text.split(":")
        low, high = float(low_text), float(high_text)
    except ValueError as error:
        raise SystemExit(f"invalid --range {text!r}; expected LOW:HIGH") from error
    return ScoreRange(low, high, inclusive_high=high >= 100.0)


def _parse_n_jobs(text: str) -> int | str:
    if text == "auto":
        return "auto"
    try:
        n_jobs = int(text)
    except ValueError as error:
        raise SystemExit(f"invalid --n-jobs {text!r}; expected an integer or 'auto'") from error
    if n_jobs < 1:
        raise SystemExit(f"invalid --n-jobs {text!r}; must be >= 1")
    return n_jobs


def _setup_observability(args: argparse.Namespace) -> None:
    """Apply ``--log-level`` / ``--log-json``; no flags leaves logging alone."""
    if args.log_level is not None or args.log_json:
        try:
            configure_logging(args.log_level or "INFO", json_mode=args.log_json)
        except ValueError as error:
            raise SystemExit(str(error)) from error


def _write_metrics(framework: AnalyticsFramework, args: argparse.Namespace) -> None:
    if args.metrics_json is not None:
        path = framework.metrics.write_json(args.metrics_json)
        # stderr so `detect --json` stdout stays machine-parseable.
        print(f"metrics snapshot written to {path}", file=sys.stderr)


def _check_chunk_size(args: argparse.Namespace) -> None:
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit(f"invalid --chunk-size {args.chunk_size}; must be >= 1")


def _command_train(args: argparse.Namespace) -> int:
    _setup_observability(args)
    _check_chunk_size(args)
    training = MultivariateEventLog.from_csv(
        args.training_csv, chunk_size=args.chunk_size
    )
    development = MultivariateEventLog.from_csv(
        args.development_csv, chunk_size=args.chunk_size
    )
    try:
        config = FrameworkConfig(
            language=LanguageConfig(
                word_size=args.word_size,
                word_stride=args.word_stride,
                sentence_length=args.sentence_length,
                sentence_stride=args.sentence_stride,
            ),
            engine=args.engine,
            representation=args.representation,
            detection_range=_parse_range(args.range),
            popular_threshold=args.popular_threshold,
            n_jobs=_parse_n_jobs(args.n_jobs),
            train_engine=args.train_engine,
            train_cohort_size=args.cohort_size,
            prescreen=args.prescreen,
            prescreen_floor=args.prescreen_floor,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    checkpoint = None
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and args.resume:
        checkpoint_path = args.model.with_suffix(args.model.suffix + ".pairs")
    if checkpoint_path is not None:
        checkpoint = PairCheckpointStore(checkpoint_path)
        try:
            if not args.resume and checkpoint.exists():
                checkpoint.clear()
        except ValueError as error:
            raise SystemExit(str(error)) from error

    cache_dir = False if args.no_cache else args.cache_dir
    framework = AnalyticsFramework(config)
    try:
        fitted = framework.fit(
            training, development, checkpoint=checkpoint, cache_dir=cache_dir
        )
    except ValueError as error:
        # A foreign file at --checkpoint (e.g. a CSV) is a usage error,
        # not a crash; other ValueErrors keep their tracebacks.
        if "not a pair checkpoint journal" in str(error):
            raise SystemExit(str(error)) from error
        raise
    path = save_framework(fitted, args.model)
    graph = fitted.graph
    print(
        f"trained {graph.num_edges} pair models over {len(graph.sensors)} sensors; "
        f"saved to {path}"
    )
    prescreen = getattr(graph, "prescreen", None)
    if prescreen is not None:
        print(
            f"prescreen ({prescreen.config.method}, floor "
            f"{prescreen.floor:g}): kept {len(prescreen.kept_pairs)} "
            f"pair(s), pruned {len(prescreen.pruned_pairs)} in "
            f"{prescreen.seconds:.2f}s"
        )
    report = fitted.build_report
    if report is not None:
        print(f"build: {report.summary()}")
        if args.report_json is not None:
            args.report_json.parent.mkdir(parents=True, exist_ok=True)
            args.report_json.write_text(json.dumps(report.to_dict(), indent=2))
            print(f"build report written to {args.report_json}")
        if not report.ok:
            print(
                f"warning: {len(report.skipped)} pair(s) skipped after retries",
                file=sys.stderr,
            )
    _write_metrics(fitted, args)
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    _setup_observability(args)
    _check_chunk_size(args)
    framework = load_framework(args.model)
    testing = MultivariateEventLog.from_csv(
        args.testing_csv, chunk_size=args.chunk_size
    )
    result = framework.detect(testing)
    _write_metrics(framework, args)
    if args.json:
        payload = {
            "anomaly_scores": [float(s) for s in result.anomaly_scores],
            "alarms": result.anomalous_windows(args.threshold),
            "valid_pairs": [list(pair) for pair in result.valid_pairs],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{result.num_windows} windows over {result.num_valid_pairs} valid pairs")
    for window, score in enumerate(result.anomaly_scores):
        alarm = "  <-- ALARM" if score >= args.threshold else ""
        print(f"window {window:4d}: {score:5.3f}{alarm}")
    alarms = result.anomalous_windows(args.threshold)
    print(f"alarms (score >= {args.threshold}): {alarms}")
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    framework = load_framework(args.model)
    if framework.graph is None:
        print("model is not fitted", file=sys.stderr)
        return 1
    print(ascii_table(
        [s.as_row() for s in framework.subgraph_statistics()],
        title="Global subgraph statistics (Table I)",
    ))
    print(f"\npopular sensors: {framework.popular_sensors()}")
    clusters = framework.clusters()
    print(f"clusters: {[sorted(c) for c in clusters]}")
    if args.export_json is not None:
        path = save_graph_json(framework.graph, args.export_json)
        print(f"graph JSON written to {path}")
    if args.export_graphml is not None:
        path = save_graphml(framework.graph, args.export_graphml)
        print(f"GraphML written to {path}")
    if args.report is not None:
        from .pipeline.reporting import write_report

        path = write_report(framework, args.report)
        print(f"markdown report written to {path}")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from .pipeline.artifacts import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    removed = 0
    if args.purge:
        removed = store.purge()
    elif args.gc_days is not None:
        if args.gc_days < 0:
            raise SystemExit(f"invalid --gc-days {args.gc_days}; must be >= 0")
        removed = store.gc(max_age_seconds=args.gc_days * 86400.0)
    stats = store.stats()
    if args.json:
        payload = {
            "cache_dir": str(store.root),
            "artifacts": stats.num_artifacts,
            "total_bytes": stats.total_bytes,
            "by_kind": stats.as_rows(),
            "removed": removed,
        }
        print(json.dumps(payload, indent=2))
        return 0
    if args.purge or args.gc_days is not None:
        print(f"removed {removed} artifact(s)")
    print(
        f"cache {store.root}: {stats.num_artifacts} artifact(s), "
        f"{stats.total_bytes} bytes"
    )
    for row in stats.as_rows():
        print(f"  {row['kind']}: {row['artifacts']} artifact(s), {row['bytes']} bytes")
    return 0


def _scenario_selection(args: argparse.Namespace) -> list[str]:
    if args.all:
        if args.names:
            raise SystemExit("give scenario names or --all, not both")
        return scenario_names()
    if not args.names:
        raise SystemExit(
            "no scenarios selected; name some (see 'scenarios list') or pass --all"
        )
    unknown = [name for name in args.names if name not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown}; choose from {scenario_names()}"
        )
    return list(args.names)


def _command_scenarios(args: argparse.Namespace) -> int:
    _setup_observability(args)

    if args.action == "list":
        rows = [
            {
                "scenario": name,
                "kind": (SCENARIOS[name].__doc__ or "").strip().splitlines()[0],
            }
            for name in scenario_names()
        ]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(ascii_table(rows, title="Registered fault scenarios"))
        return 0

    names = _scenario_selection(args)

    if args.action == "digest":
        payload = {}
        for name in names:
            data = generate_scenario(name, seed=args.seed, tier=args.tier)
            payload[name] = data.digest
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            for name, digest in payload.items():
                print(f"{name} {digest}")
        return 0

    detectors = tuple(d for d in args.detectors.split(",") if d)
    metrics = MetricsRegistry()
    reports = []
    for name in names:
        data = generate_scenario(name, seed=args.seed, tier=args.tier)
        try:
            report = run_scenario(
                data, detectors=detectors, tier=args.tier, metrics=metrics
            )
        except KeyError as error:
            raise SystemExit(str(error)) from error
        reports.append(report)
        if args.bench is not None:
            append_bench_record(report.to_dict(), args.bench)

    if args.metrics_json is not None:
        path = metrics.write_json(args.metrics_json)
        print(f"metrics snapshot written to {path}", file=sys.stderr)

    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
        return 0
    rows = [
        {
            "scenario": report.scenario,
            "detector": outcome.detector,
            "precision": f"{outcome.evaluation.precision:.2f}",
            "recall": f"{outcome.evaluation.recall:.2f}",
            "f1": f"{outcome.evaluation.f1:.2f}",
            "episodes": len(outcome.evaluation.predicted_episodes),
            "events": len(outcome.evaluation.true_events),
        }
        for report in reports
        for outcome in report.outcomes
    ]
    print(ascii_table(rows, title=f"Scenario suite ({args.tier}, seed {args.seed})"))
    if args.bench is not None:
        print(f"benchmark records appended to {args.bench}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service import StreamingDetectionService, has_snapshot

    _setup_observability(args)
    _check_chunk_size(args)
    chunk_size = 256 if args.chunk_size is None else args.chunk_size
    if args.shards < 1:
        raise SystemExit(f"invalid --shards {args.shards}; must be >= 1")

    streams: dict[str, Path] = {}
    for spec in args.streams:
        name, separator, csv_path = spec.partition("=")
        if not separator or not name or not csv_path:
            raise SystemExit(
                f"invalid stream {spec!r}; expected NAME=CSV"
            )
        if name in streams:
            raise SystemExit(f"duplicate stream name {name!r}")
        streams[name] = Path(csv_path)

    framework = load_framework(args.model)
    if framework.graph is None:
        print("model is not fitted", file=sys.stderr)
        return 1
    logs = {
        name: MultivariateEventLog.from_csv(path, chunk_size=args.chunk_size)
        for name, path in streams.items()
    }

    metrics = MetricsRegistry()
    service = StreamingDetectionService(
        framework.graph,
        list(streams),
        num_shards=args.shards,
        queue_depth=64 if args.queue_depth is None else args.queue_depth,
        backpressure=args.backpressure,
        score_range=framework.config.detection_range,
        metrics=metrics,
        autostart=False,
    )
    restored = False
    if args.snapshot_dir is not None and has_snapshot(args.snapshot_dir):
        service.restore(args.snapshot_dir)
        restored = True
        print(f"resumed from snapshot {args.snapshot_dir}", file=sys.stderr)
    service.start()

    # Interleave the tenant streams chunk-by-chunk, the shape a fleet
    # of concurrent producers would deliver.
    for name, log in logs.items():
        for start in range(0, log.num_samples, chunk_size):
            stop = min(start + chunk_size, log.num_samples)
            block = {
                sensor: log[sensor].events[start:stop]
                for sensor in log.sensors
            }
            service.submit(name, block)
    feed = service.merged_feed()
    pending = {k: v for k, v in service.pending_samples().items() if v}
    errors = {tenant: str(error) for tenant, error in service.errors.items()}
    if args.snapshot_dir is not None:
        service.snapshot(args.snapshot_dir)
        print(f"snapshot written to {args.snapshot_dir}", file=sys.stderr)
    service.close()

    dropped = int(metrics.value("service.dropped", 0))
    if args.metrics_json is not None:
        path = metrics.write_json(args.metrics_json)
        print(f"metrics snapshot written to {path}", file=sys.stderr)

    if args.json:
        payload = {
            "shards": args.shards,
            "tenants": list(streams),
            "restored": restored,
            "windows": [
                {
                    "tenant": fleet_window.tenant,
                    "shard": fleet_window.shard_id,
                    "window_index": fleet_window.window.window_index,
                    "start_sample": fleet_window.window.start_sample,
                    "anomaly_score": fleet_window.window.anomaly_score,
                    "broken_pairs": [
                        list(pair)
                        for pair in fleet_window.window.broken_pairs
                    ],
                }
                for fleet_window in feed
            ],
            "alarms": [
                [fw.tenant, fw.window.window_index]
                for fw in feed
                if fw.window.anomaly_score >= args.threshold
            ],
            "pending_samples": pending,
            "dropped_chunks": dropped,
            "errors": errors,
        }
        print(json.dumps(payload, indent=2))
        return 1 if errors else 0

    print(
        f"served {len(streams)} stream(s) over {args.shards} shard(s): "
        f"{len(feed)} windows"
    )
    for fleet_window in feed:
        window = fleet_window.window
        alarm = "  <-- ALARM" if window.anomaly_score >= args.threshold else ""
        print(
            f"{fleet_window.tenant:>16s} shard {fleet_window.shard_id} "
            f"window {window.window_index:4d}: {window.anomaly_score:5.3f}"
            f"{alarm}"
        )
    if pending:
        print(f"pending residual samples: {pending}")
    if dropped:
        print(f"dropped chunks under reject backpressure: {dropped}")
    for tenant, error in errors.items():
        print(f"quarantined {tenant}: {error}", file=sys.stderr)
    return 1 if errors else 0


def _command_bench_online(args: argparse.Namespace) -> int:
    from .bench.online import (
        DEFAULT_ONLINE_CHUNK,
        DEFAULT_SHARD_COUNTS,
        run_online_bench,
    )

    shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS
    if args.shard_counts is not None:
        try:
            shard_counts = tuple(
                int(value) for value in args.shard_counts.split(",") if value
            )
        except ValueError as error:
            raise SystemExit(
                f"invalid --shard-counts {args.shard_counts!r}; "
                "expected comma-separated integers"
            ) from error
    if not shard_counts or any(count < 1 for count in shard_counts):
        raise SystemExit(f"invalid --shard-counts {args.shard_counts!r}")
    if args.tenants < 1:
        raise SystemExit(f"invalid --tenants {args.tenants}; must be >= 1")
    chunk_size = DEFAULT_ONLINE_CHUNK if args.chunk_size is None else args.chunk_size

    metrics = MetricsRegistry()
    records = run_online_bench(
        shard_counts=shard_counts,
        num_tenants=args.tenants,
        seed=11 if args.seed is None else args.seed,
        chunk_size=chunk_size,
        bench_path=args.bench,
        metrics=metrics,
    )
    if args.metrics_json is not None:
        path = metrics.write_json(args.metrics_json)
        print(f"metrics snapshot written to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    rows = [
        {
            "shards": record["shards"],
            "tenants": record["tenants"],
            "events/s": f"{record['events_per_second']:.0f}",
            "p50 ms": f"{record['p50_latency_seconds'] * 1e3:.1f}",
            "p99 ms": f"{record['p99_latency_seconds'] * 1e3:.1f}",
            "windows": record["windows"],
            "parity": record["parity"],
            "warm trained": record["warm_start"]["trained"],
        }
        for record in records
    ]
    print(ascii_table(rows, title=f"Online service bench (chunk_size={chunk_size})"))
    if args.bench is not None:
        print(f"benchmark records appended to {args.bench}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    _setup_observability(args)
    if args.action == "online":
        return _command_bench_online(args)
    from .bench.scale import DEFAULT_SCALE_CHUNK, SCALE_TIERS, run_scale_ladder

    chunk_size = DEFAULT_SCALE_CHUNK if args.chunk_size is None else args.chunk_size
    if chunk_size < 1:
        raise SystemExit(f"invalid --chunk-size {chunk_size}; must be >= 1")
    tiers = None
    if args.tiers is not None:
        tiers = [name for name in args.tiers.split(",") if name]
        unknown = [name for name in tiers if name not in SCALE_TIERS]
        if unknown:
            raise SystemExit(
                f"unknown tier(s) {unknown}; choose from {sorted(SCALE_TIERS)}"
            )
    metrics = MetricsRegistry()
    records = run_scale_ladder(
        tiers=tiers,
        chunk_size=chunk_size,
        seed=args.seed,
        bench_path=args.bench,
        metrics=metrics,
    )
    if args.metrics_json is not None:
        path = metrics.write_json(args.metrics_json)
        print(f"metrics snapshot written to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    rows = []
    for record in records:
        phases = record["phases"]
        rows.append(
            {
                "tier": record["tier"],
                "events": record["total_events"],
                "ingest chunked s": f"{phases['ingest_chunked']['seconds']:.2f}",
                "ingest peak MB": f"{phases['ingest_chunked']['peak_bytes'] / 1e6:.1f}",
                "resident peak MB": f"{phases['ingest_resident']['peak_bytes'] / 1e6:.1f}",
                "fit s": f"{phases['fit']['seconds']:.2f}",
                "detect s": f"{phases['detect']['seconds']:.2f}",
                "rss MB": f"{record['ru_maxrss_kb'] / 1024:.0f}",
            }
        )
    print(ascii_table(rows, title=f"Scale ladder (chunk_size={chunk_size})"))
    if args.bench is not None:
        print(f"benchmark records appended to {args.bench}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from .datasets import (
        BackblazeConfig,
        PlantConfig,
        generate_backblaze_dataset,
        generate_plant_dataset,
        save_backblaze_dataset,
        save_plant_dataset,
    )

    if args.kind == "plant":
        # Scale the default anomaly/precursor days (21/28 and 19/20/27
        # of a 30-day month) to the requested horizon.
        def scaled(day: int) -> int:
            return max(2, min(args.days, round(day * args.days / 30)))

        config = PlantConfig(
            num_sensors=args.sensors,
            days=args.days,
            samples_per_day=args.samples_per_day,
            anomaly_days=tuple(sorted({scaled(21), scaled(28)})),
            precursor_days=tuple(sorted({scaled(19), scaled(20), scaled(27)} - {scaled(21), scaled(28)})),
            seed=args.seed,
        )
        dataset = generate_plant_dataset(config)
        directory = save_plant_dataset(dataset, args.output_dir)
        print(
            f"plant dataset: {config.num_sensors} sensors x "
            f"{config.total_samples} samples -> {directory}"
        )
        if args.split is not None:
            try:
                train_days, dev_days = (int(v) for v in args.split.split(":"))
            except ValueError as error:
                raise SystemExit(
                    f"invalid --split {args.split!r}; expected TRAIN:DEV"
                ) from error
            train, dev, test = dataset.split(train_days, dev_days)
            train.to_csv(directory / "train.csv")
            dev.to_csv(directory / "dev.csv")
            test.to_csv(directory / "test.csv")
            print(f"split CSVs written ({train_days}/{dev_days}/rest days)")
    else:
        config = BackblazeConfig(num_drives=args.drives, days=max(args.days, 60), seed=args.seed)
        dataset = generate_backblaze_dataset(config)
        directory = save_backblaze_dataset(dataset, args.output_dir)
        print(
            f"backblaze dataset: {len(dataset)} drives "
            f"({len(dataset.failed_serials)} failures) -> {directory}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _command_train,
        "build": _command_train,
        "detect": _command_detect,
        "inspect": _command_inspect,
        "cache": _command_cache,
        "scenarios": _command_scenarios,
        "serve": _command_serve,
        "bench": _command_bench,
        "simulate": _command_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
