"""Directional sensor-to-sensor translation and BLEU scoring."""

from .base import TranslationModel
from .batched import (
    DEFAULT_COHORT_SIZE,
    BatchedPairTrainer,
    CohortResult,
    cohort_signature,
    group_cohorts,
)
from .bleu import (
    BleuBreakdown,
    bleu_breakdown,
    brevity_penalty,
    corpus_bleu,
    mapping_proxy_scores,
    modified_precision,
    sentence_bleu,
)
from .decoding import BeamHypothesis, beam_search_translate
from .diagnostics import PairDiagnostics, diagnose_pair
from .factory import ENGINES, make_translator, translator_factory
from .ngram import NGramTranslator
from .seq2seq import NMTConfig, Seq2SeqTranslator
from .trainer import PairTrainer, TrainingRecord, train_with_early_stopping

__all__ = [
    "BatchedPairTrainer",
    "BeamHypothesis",
    "BleuBreakdown",
    "CohortResult",
    "DEFAULT_COHORT_SIZE",
    "ENGINES",
    "NGramTranslator",
    "NMTConfig",
    "PairDiagnostics",
    "PairTrainer",
    "Seq2SeqTranslator",
    "TrainingRecord",
    "TranslationModel",
    "beam_search_translate",
    "bleu_breakdown",
    "brevity_penalty",
    "cohort_signature",
    "corpus_bleu",
    "diagnose_pair",
    "group_cohorts",
    "make_translator",
    "mapping_proxy_scores",
    "modified_precision",
    "sentence_bleu",
    "train_with_early_stopping",
    "translator_factory",
]
