"""Batched multi-pair training: one tensor program for many pair models.

Algorithm 1 trains ``N(N-1)`` independent seq2seq models; the looped
path advances them one at a time, so the Python-level step loop in
:mod:`repro.nn` dominates wall-clock.  This module packs *cohorts* of
same-shaped pair corpora into ``(pairs, batch, ...)`` tensors and
advances every model in lockstep through the ``Batched*`` twins of the
nn modules, turning dozens of small matmuls per step into a few stacked
BLAS calls.

Equivalence contract
--------------------
Each pair keeps its *own* RNG stream (``np.random.default_rng(seed)``),
consumed in exactly the order the looped
:class:`~repro.translation.seq2seq.Seq2SeqTranslator` would consume it:
module init draws happen in per-pair skeleton models whose parameters
are then stacked into slabs, and per-step draws (batch sampling,
dropout masks) are taken per pair at the same points.  All stacked ops
compute each pair's slice with the same numpy kernels the looped path
uses, so every cohort trains **bit-identically** to the looped
engine.  When vocabulary widths differ within a cohort,
embedding/projection slabs are zero-padded to the cohort maximum, but
no padded element ever enters a reduction: the loss slices each
pair's logits to its real width before the softmax, and the
gradient-clip norm sums each pair's real slab regions with the looped
memory layout.  This matters because padded entries — though exact
zeros — would change numpy's pairwise-summation blocking by ~1e-16
per step, which amplifies chaotically over long trainings into real
weight divergence.  See
``tests/translation/test_batched_equivalence.py``.

Early stopping
--------------
With ``eval_every`` set, the cohort is evaluated on each pair's dev
sentences every chunk; pairs whose dev BLEU plateaus (``patience``
evaluations without a ``min_improvement`` gain) are *compacted out* of
the parameter slabs — they stop consuming gradient work while the
cohort continues — and their best-scoring weights are restored, so the
reported ``dev_bleu`` always describes the returned model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import nn
from ..nn import functional as F
from ..lang.vocabulary import Vocabulary
from ..obs import MetricsRegistry, Stopwatch, get_logger
from .bleu import corpus_bleu, sentence_bleu
from .seq2seq import NMTConfig, Seq2SeqTranslator
from .trainer import TrainingRecord

if TYPE_CHECKING:  # pragma: no cover - avoid a translation -> pipeline cycle
    from ..pipeline.executor import PairTask

__all__ = [
    "BatchedPairTrainer",
    "CohortResult",
    "DEFAULT_COHORT_SIZE",
    "cohort_signature",
    "group_cohorts",
]

logger = get_logger(__name__)

#: Default number of pair models advanced by one tensor program.
DEFAULT_COHORT_SIZE = 32


# ----------------------------------------------------------------------
# Cohort grouping
# ----------------------------------------------------------------------
def cohort_signature(corpus) -> tuple[int, int, int] | None:
    """Shape key deciding which pairs can share one tensor program.

    Pairs are compatible when their corpora have the same sentence
    count and uniform source/target sentence lengths — the normal
    fixed-window case.  Returns ``None`` for ragged or empty corpora,
    which must fall back to the looped engine.
    """
    pairs = getattr(corpus, "pairs", None)
    if not pairs:
        return None
    source_len = len(pairs[0][0])
    target_len = len(pairs[0][1])
    if source_len == 0 or target_len == 0:
        return None
    for source_sentence, target_sentence in pairs:
        if len(source_sentence) != source_len or len(target_sentence) != target_len:
            return None
    return (len(pairs), source_len, target_len)


def _vocab_widths(corpus) -> tuple[int, int]:
    """Distinct source/target word counts — a proxy for vocabulary sizes."""
    pairs = corpus.pairs
    source_words = {word for sentence, _ in pairs for word in sentence}
    target_words = {word for _, sentence in pairs for word in sentence}
    return (len(target_words), len(source_words))


def group_cohorts(
    tasks: Sequence["PairTask"], cohort_size: int = DEFAULT_COHORT_SIZE
) -> tuple[list[list["PairTask"]], list["PairTask"]]:
    """Split tasks into shape-compatible cohorts plus looped leftovers.

    Within a signature group, tasks are stably sorted by vocabulary
    widths before chunking so most cohorts come out width-uniform and
    skip the padded-projection arithmetic entirely; ties keep the
    incoming (prescreen / community) order.  Groups appear in
    first-seen order.  The second element lists tasks whose corpora
    cannot be packed (ragged or empty) — the caller trains those
    serially.
    """
    if cohort_size < 1:
        raise ValueError("cohort_size must be >= 1")
    groups: dict[tuple[int, int, int], list["PairTask"]] = {}
    leftovers: list["PairTask"] = []
    for task in tasks:
        signature = cohort_signature(task.corpus)
        if signature is None:
            leftovers.append(task)
        else:
            groups.setdefault(signature, []).append(task)
    cohorts: list[list["PairTask"]] = []
    for members in groups.values():
        members = sorted(members, key=lambda task: _vocab_widths(task.corpus))
        for start in range(0, len(members), cohort_size):
            cohorts.append(members[start : start + cohort_size])
    return cohorts, leftovers


# ----------------------------------------------------------------------
# Corpus packing
# ----------------------------------------------------------------------
def _vectorised_ids(vocab: Vocabulary, matrix: np.ndarray) -> np.ndarray | None:
    """Map a packed word-key matrix to vocabulary ids without Python loops."""
    try:
        keys = np.asarray(vocab.words(), dtype=np.int64)
    except (TypeError, ValueError):
        return None  # string words (legacy path)
    first_content = len(vocab) - keys.size
    if keys.size == 0:
        return np.full(matrix.shape, vocab.unk_id, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    positions = np.searchsorted(sorted_keys, matrix)
    positions = np.minimum(positions, keys.size - 1)
    matched = sorted_keys[positions] == matrix
    return np.where(matched, order[positions] + first_content, vocab.unk_id)


def _sentence_id_matrix(vocab: Vocabulary, sentences: Sequence[tuple], language) -> np.ndarray:
    """Encode fixed-length sentences to an ``(N, L)`` id matrix.

    Reuses the language's cached :meth:`packed_sentence_matrix` when the
    corpus is that language's aligned prefix (the ``from_languages``
    case), otherwise packs the tuples directly; both feed a vectorised
    key → id lookup.  Falls back to per-sentence ``vocab.encode`` for
    string words.
    """
    count = len(sentences)
    matrix = None
    if language is not None and count:
        packed = language.packed_sentence_matrix()
        if (
            packed is not None
            and len(packed) >= count
            and packed.shape[1] == len(sentences[0])
            and np.array_equal(packed[0], np.asarray(sentences[0], dtype=np.int64))
        ):
            matrix = packed[:count]
    if matrix is None:
        try:
            matrix = np.asarray(sentences, dtype=np.int64)
        except (TypeError, ValueError):
            matrix = None
    if matrix is not None:
        ids = _vectorised_ids(vocab, matrix)
        if ids is not None:
            return ids
    return np.stack([vocab.encode(sentence) for sentence in sentences])


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class CohortResult:
    """One pair's outcome from a cohort run (mirrors the looped worker)."""

    source: str
    target: str
    model: Seq2SeqTranslator
    record: TrainingRecord
    score: float
    dev_sentence_scores: np.ndarray


@dataclass
class _PairState:
    """Per-pair early-stopping bookkeeping."""

    best_bleu: float = -np.inf
    stale: int = 0
    best_state: dict | None = None
    steps_taken: int = 0
    stopped_early: bool = False
    eval_history: list = field(default_factory=list)
    train_seconds: float = 0.0


# ----------------------------------------------------------------------
# The tensor program
# ----------------------------------------------------------------------
class _CohortProgram:
    """Lockstep training state for one cohort of shape-compatible pairs."""

    def __init__(self, tasks: Sequence["PairTask"], config: NMTConfig) -> None:
        self.config = config
        self.tasks = list(tasks)

        # Per-pair skeleton models: real Seq2SeqTranslators whose _build()
        # consumes each pair's RNG stream exactly as a looped fit would,
        # giving us both the init draws to stack and the objects to
        # unpack trained slabs back into.
        models: list[Seq2SeqTranslator] = []
        for task in self.tasks:
            corpus = task.corpus
            model = Seq2SeqTranslator(config)
            model.source_sensor = corpus.source_sensor
            model.target_sensor = corpus.target_sensor
            model.source_vocab = Vocabulary.from_sentences(corpus.source_sentences)
            model.target_vocab = Vocabulary.from_sentences(corpus.target_sentences)
            model._build()
            model.loss_history = []
            models.append(model)
        self.models = models
        rngs = [model._rng for model in models]

        recurrent_stack = (
            nn.BatchedLSTM.stack if config.recurrent_unit == "lstm" else nn.BatchedGRU.stack
        )
        self.encoder_embedding = nn.BatchedEmbedding.stack(
            [model._encoder_embedding for model in models]
        )
        self.encoder = recurrent_stack([model._encoder for model in models], rngs)
        self.decoder_embedding = nn.BatchedEmbedding.stack(
            [model._decoder_embedding for model in models]
        )
        self.decoder = recurrent_stack([model._decoder for model in models], rngs)
        self.attention = nn.BatchedLuongAttention.stack(
            [model._attention for model in models]
        )
        target_sizes = [len(model.target_vocab) for model in models]
        vocab_max = max(target_sizes)
        self.projection = nn.BatchedLinear.stack(
            [model._projection for model in models], pad_out_to=vocab_max
        )
        # Slabs over a vocabulary axis are zero-padded to the cohort
        # maximum; the loss and the gradient-clip norm only ever reduce
        # over each pair's real width (see train_steps), so training is
        # bit-identical to the looped engine even in mixed-width
        # cohorts.
        self.source_widths = np.asarray(
            [len(model.source_vocab) for model in models], dtype=np.int64
        )
        self.target_widths = np.asarray(target_sizes, dtype=np.int64)
        self._refresh_width_groups()

        # Packed id tensors for the whole corpus of every pair.
        source_ids = []
        decoder_inputs = []
        decoder_targets = []
        for task, model in zip(self.tasks, models):
            corpus = task.corpus
            src = _sentence_id_matrix(
                model.source_vocab, corpus.source_sentences, corpus.source_language
            )
            tgt = _sentence_id_matrix(
                model.target_vocab, corpus.target_sentences, corpus.target_language
            )
            count = tgt.shape[0]
            bos = np.full((count, 1), model.target_vocab.bos_id, dtype=np.int64)
            eos = np.full((count, 1), model.target_vocab.eos_id, dtype=np.int64)
            source_ids.append(src)
            decoder_inputs.append(np.concatenate([bos, tgt], axis=1))
            decoder_targets.append(np.concatenate([tgt, eos], axis=1))
        self.source_ids = np.stack(source_ids)  # (pairs, N, L)
        self.decoder_inputs = np.stack(decoder_inputs)  # (pairs, N, T)
        self.decoder_targets = np.stack(decoder_targets)  # (pairs, N, T)
        self.num_sentences = self.source_ids.shape[1]

        self.rngs = list(rngs)
        self.active = list(range(len(models)))  # original pair positions
        self.optimizer = nn.BatchedAdam(self.parameters(), lr=config.learning_rate)

    # ------------------------------------------------------------------
    def _refresh_width_groups(self) -> None:
        """Recompute the target-width groups over the active pairs.

        Each group is ``(positions, width)``: the cohort positions whose
        target vocabulary has ``width`` entries.  The loss reduces over
        exactly ``width`` logit columns per group, so no padded column
        ever enters a softmax — summation blocking (and therefore every
        bit of the training trajectory) matches the looped engine.
        """
        groups: dict[int, list[int]] = {}
        for position, width in enumerate(self.target_widths):
            groups.setdefault(int(width), []).append(position)
        self._width_groups = [
            (np.asarray(positions, dtype=np.int64), width)
            for width, positions in groups.items()
        ]
        self._mixed_target = len(self._width_groups) > 1
        self._mixed_source = bool(
            self.source_widths.size
            and (self.source_widths != self.source_widths[0]).any()
        )

    def _padded_slabs(self) -> list[tuple[nn.Parameter, int, np.ndarray]]:
        """Parameters padded on a vocabulary axis: (param, axis, widths)."""
        slabs: list[tuple[nn.Parameter, int, np.ndarray]] = []
        if self._mixed_source:
            slabs.append((self.encoder_embedding.weight, 1, self.source_widths))
        if self._mixed_target:
            slabs.append((self.decoder_embedding.weight, 1, self.target_widths))
            slabs.append((self.projection.weight, 2, self.target_widths))
            if self.projection.bias is not None:
                slabs.append((self.projection.bias, 2, self.target_widths))
        return slabs

    def _clip_gradients(self) -> None:
        """Per-pair gradient clipping that ignores padded slab regions.

        Padded entries hold exact-zero gradients, but including them in
        the norm reduction would change numpy's pairwise-summation
        blocking relative to the looped engine; summing each pair's
        real region with the looped layout keeps the norms — and hence
        the clip scales — bit-identical.
        """
        if not (self._mixed_source or self._mixed_target):
            nn.clip_grad_norm_per_pair(self.parameters(), self.config.clip_norm)
            return
        params = [param for param in self.parameters() if param.grad is not None]
        if not params:
            return
        num_pairs = self.num_active
        padded = {id(param): (axis, widths) for param, axis, widths in self._padded_slabs()}
        total = np.zeros(num_pairs)
        for param in params:
            info = padded.get(id(param))
            if info is None:
                total += (param.grad.reshape(num_pairs, -1) ** 2).sum(axis=1)
                continue
            axis, widths = info
            for position in range(num_pairs):
                width = int(widths[position])
                grad = param.grad[position]
                sliced = grad[:width] if axis == 1 else grad[..., :width]
                total[position] += (sliced**2).sum()
        norms = np.sqrt(total)
        max_norm = self.config.clip_norm
        scales = np.where(
            (norms > max_norm) & (norms > 0),
            max_norm / np.maximum(norms, 1e-300),
            1.0,
        )
        if (scales != 1.0).any():
            for param in params:
                param.grad *= scales.reshape(
                    (num_pairs,) + (1,) * (param.grad.ndim - 1)
                )

    # ------------------------------------------------------------------
    def _batched_modules(self) -> list:
        return [
            self.encoder_embedding,
            self.encoder,
            self.decoder_embedding,
            self.decoder,
            self.attention,
            self.projection,
        ]

    def parameters(self) -> list[nn.Parameter]:
        params: list[nn.Parameter] = []
        for module in self._batched_modules():
            params.extend(module.parameters())
        return params

    @property
    def num_active(self) -> int:
        return len(self.active)

    def active_models(self) -> list[Seq2SeqTranslator]:
        return [self.models[index] for index in self.active]

    # ------------------------------------------------------------------
    def train_steps(self, steps: int) -> None:
        """Advance every active pair ``steps`` lockstep optimiser steps."""
        num_pairs = self.num_active
        if num_pairs == 0 or steps == 0:
            return
        batch_size = min(self.config.batch_size, self.num_sentences)
        source_len = self.source_ids.shape[2]
        target_len = self.decoder_inputs.shape[2]
        pair_rows = np.arange(num_pairs)[:, None]
        source_mask = np.ones((num_pairs, batch_size, source_len))
        target_mask = np.ones((num_pairs, batch_size, target_len))
        active_models = self.active_models()

        for _ in range(steps):
            chosen = np.stack(
                [
                    rng.choice(self.num_sentences, size=batch_size, replace=False)
                    for rng in self.rngs
                ]
            )
            source_batch = self.source_ids[pair_rows, chosen]
            input_batch = self.decoder_inputs[pair_rows, chosen]
            target_batch = self.decoder_targets[pair_rows, chosen]

            embedded = self.encoder_embedding(source_batch)
            encoder_outputs, state = self.encoder(embedded)
            if not self._mixed_target:
                step_logits: list[nn.Tensor] = []
                for t in range(target_len):
                    token_embedded = self.decoder_embedding(input_batch[:, :, t])
                    hidden, state = self.decoder.step(token_embedded, state)
                    attentional, _ = self.attention(
                        hidden, encoder_outputs, source_mask
                    )
                    step_logits.append(self.projection(attentional))
                all_logits = nn.Tensor.stack(step_logits, axis=2)
                losses = F.pairwise_masked_cross_entropy(
                    all_logits, target_batch, target_mask
                )
                total = losses.sum()
                loss_values = losses.data
            else:
                # Mixed-width cohort: project and reduce each width
                # group with its true vocabulary width.  Padding the
                # projection would be mathematically equivalent (padded
                # weights and gradients are exact zeros) but not
                # bit-equivalent — a wider matmul contraction or
                # softmax row changes the kernels' accumulation order,
                # and that ~1e-16/step noise amplifies chaotically over
                # long trainings.  Slicing the shared slabs per group
                # keeps every pair's arithmetic identical to looped.
                group_weights = [
                    (
                        positions,
                        self.projection.weight[positions, :, :width],
                        None
                        if self.projection.bias is None
                        else self.projection.bias[positions, :, :width],
                    )
                    for positions, width in self._width_groups
                ]
                group_logits: list[list[nn.Tensor]] = [[] for _ in group_weights]
                for t in range(target_len):
                    token_embedded = self.decoder_embedding(input_batch[:, :, t])
                    hidden, state = self.decoder.step(token_embedded, state)
                    attentional, _ = self.attention(
                        hidden, encoder_outputs, source_mask
                    )
                    for index, (positions, w_g, b_g) in enumerate(group_weights):
                        logits_g = attentional[positions] @ w_g
                        if b_g is not None:
                            logits_g = logits_g + b_g
                        group_logits[index].append(logits_g)
                loss_values = np.empty(num_pairs)
                total = None
                for (positions, _), logits in zip(self._width_groups, group_logits):
                    stacked = nn.Tensor.stack(logits, axis=2)
                    sub_losses = F.pairwise_masked_cross_entropy(
                        stacked, target_batch[positions], target_mask[positions]
                    )
                    loss_values[positions] = sub_losses.data
                    group_total = sub_losses.sum()
                    total = group_total if total is None else total + group_total

            self.optimizer.zero_grad()
            total.backward()
            self._clip_gradients()
            self.optimizer.step()
            for position, model in enumerate(active_models):
                model.loss_history.append(float(loss_values[position]))

    # ------------------------------------------------------------------
    def sync_models(self) -> None:
        """Write current slab slices back into the active skeleton models."""
        active = self.active_models()
        self.encoder_embedding.unpack_into([m._encoder_embedding for m in active])
        self.encoder.unpack_into([m._encoder for m in active])
        self.decoder_embedding.unpack_into([m._decoder_embedding for m in active])
        self.decoder.unpack_into([m._decoder for m in active])
        self.attention.unpack_into([m._attention for m in active])
        self.projection.unpack_into([m._projection for m in active])
        for model in active:
            model._set_training(False)
            model.fitted = True

    def compact(self, keep_positions: Sequence[int]) -> None:
        """Drop finished pairs from every slab, moment and RNG list."""
        keep = np.asarray(list(keep_positions), dtype=np.int64)
        for module in self._batched_modules():
            module.select_pairs(keep)
        self.optimizer.select_pairs(keep)
        self.rngs = [self.rngs[int(index)] for index in keep]
        self.source_ids = self.source_ids[keep]
        self.decoder_inputs = self.decoder_inputs[keep]
        self.decoder_targets = self.decoder_targets[keep]
        self.source_widths = self.source_widths[keep]
        self.target_widths = self.target_widths[keep]
        self._refresh_width_groups()
        self.active = [self.active[int(index)] for index in keep]


# ----------------------------------------------------------------------
# Public trainer
# ----------------------------------------------------------------------
@dataclass
class BatchedPairTrainer:
    """Trains a cohort of directed pairs inside one tensor program.

    Parameters
    ----------
    config:
        Shared :class:`NMTConfig` (every pair trains with the same
        hyper-parameters, as in the paper).
    eval_every, patience, min_improvement:
        When ``eval_every`` is set, pairs are dev-evaluated every that
        many steps and early-stopped independently with the same
        plateau rule as
        :func:`~repro.translation.trainer.train_with_early_stopping`;
        finished pairs are compacted out of the slabs.  ``None``
        (default) trains the fixed ``config.training_steps`` budget —
        the looped-engine-equivalent mode used by the pipeline.
    metrics:
        Optional registry receiving ``train.pairs_active`` (gauge) and
        ``train.masked_steps`` (counter: pair-steps saved by early
        stopping).
    """

    config: NMTConfig | None = None
    eval_every: int | None = None
    patience: int = 3
    min_improvement: float = 0.5
    metrics: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = NMTConfig()
        if self.eval_every is not None and self.eval_every < 1:
            raise ValueError("eval_every must be >= 1 when given")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    # ------------------------------------------------------------------
    def train_cohort(self, tasks: Sequence["PairTask"]) -> list[CohortResult]:
        """Train and dev-score every task; results follow task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        program = _CohortProgram(tasks, self.config)
        states = [_PairState() for _ in tasks]
        if self.metrics is not None:
            self.metrics.gauge("train.pairs_active").set(program.num_active)

        if self.eval_every is None:
            self._run_fixed(program, states)
        else:
            self._run_early_stopping(program, states, tasks)

        results = []
        for task, model, state in zip(tasks, program.models, states):
            watch = Stopwatch()
            translations = model.translate(task.dev_source)
            score = corpus_bleu(translations, task.dev_target, smooth=True)
            sentence_scores = np.asarray(
                [
                    sentence_bleu(candidate, reference)
                    for candidate, reference in zip(translations, task.dev_target)
                ]
            )
            eval_seconds = watch.split()
            record = TrainingRecord(
                source=task.source,
                target=task.target,
                train_seconds=state.train_seconds,
                eval_seconds=eval_seconds,
                dev_bleu=score,
                loss_history=list(model.loss_history),
                eval_history=list(state.eval_history),
                stopped_early=state.stopped_early,
            )
            results.append(
                CohortResult(
                    source=task.source,
                    target=task.target,
                    model=model,
                    record=record,
                    score=score,
                    dev_sentence_scores=sentence_scores,
                )
            )
        logger.debug(
            "cohort of %d pair(s) trained in lockstep",
            len(tasks),
            extra={"pairs": len(tasks), "engine": "batched"},
        )
        return results

    # ------------------------------------------------------------------
    def _charge_segment(
        self, program: _CohortProgram, states: list[_PairState], seconds: float, steps: int
    ) -> None:
        share = seconds / program.num_active if program.num_active else 0.0
        for index in program.active:
            states[index].train_seconds += share
            states[index].steps_taken += steps

    def _run_fixed(self, program: _CohortProgram, states: list[_PairState]) -> None:
        start = time.perf_counter()
        program.train_steps(self.config.training_steps)
        self._charge_segment(
            program, states, time.perf_counter() - start, self.config.training_steps
        )
        program.sync_models()
        if self.metrics is not None:
            self.metrics.gauge("train.pairs_active").set(0)

    def _run_early_stopping(
        self,
        program: _CohortProgram,
        states: list[_PairState],
        tasks: list["PairTask"],
    ) -> None:
        budget = self.config.training_steps
        steps_done = 0
        while program.num_active:
            chunk = min(self.eval_every, budget - steps_done)
            start = time.perf_counter()
            program.train_steps(chunk)
            self._charge_segment(program, states, time.perf_counter() - start, chunk)
            steps_done += chunk
            program.sync_models()

            keep_positions: list[int] = []
            for position, index in enumerate(program.active):
                model = program.models[index]
                state = states[index]
                task = tasks[index]
                translations = model.translate(task.dev_source)
                dev_bleu = corpus_bleu(translations, task.dev_target, smooth=True)
                state.eval_history.append((steps_done, dev_bleu))
                finished = False
                if dev_bleu > state.best_bleu + self.min_improvement:
                    state.best_bleu = dev_bleu
                    state.stale = 0
                    state.best_state = model.state_dict()
                else:
                    state.stale += 1
                    if state.stale >= self.patience:
                        finished = True
                        state.stopped_early = steps_done < budget
                if steps_done >= budget:
                    finished = True
                if finished:
                    if state.best_state is not None:
                        model.load_state_dict(state.best_state)
                    if self.metrics is not None and state.stopped_early:
                        self.metrics.counter("train.masked_steps").inc(
                            budget - state.steps_taken
                        )
                else:
                    keep_positions.append(position)

            if len(keep_positions) < program.num_active:
                program.compact(keep_positions)
                if self.metrics is not None:
                    self.metrics.gauge("train.pairs_active").set(program.num_active)
