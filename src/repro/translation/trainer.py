"""Training utilities for pairwise translation models.

:class:`PairTrainer` wraps a translation engine with the conveniences a
long-running Algorithm-1 build wants: development-set evaluation during
training, early stopping on dev BLEU, and a structured training record
for post-hoc analysis (the data behind Figure 4a's runtime CDF).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..lang.corpus import ParallelCorpus
from ..obs import Stopwatch, get_logger
from .base import TranslationModel
from .bleu import corpus_bleu
from .seq2seq import NMTConfig, Seq2SeqTranslator

__all__ = ["TrainingRecord", "PairTrainer", "train_with_early_stopping"]

logger = get_logger(__name__)


@dataclass
class TrainingRecord:
    """What happened while fitting one directed pair."""

    source: str
    target: str
    train_seconds: float
    eval_seconds: float
    dev_bleu: float
    loss_history: list[float] = field(default_factory=list)
    eval_history: list[tuple[int, float]] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.eval_seconds


@dataclass
class PairTrainer:
    """Fit-and-score helper for one directed sensor pair."""

    model_factory: Callable[[], TranslationModel]

    def fit_pair(
        self, train_corpus: ParallelCorpus, dev_corpus: ParallelCorpus
    ) -> tuple[TranslationModel, TrainingRecord]:
        """Train on ``train_corpus`` and score on ``dev_corpus``."""
        model = self.model_factory()
        watch = Stopwatch()
        model.fit(train_corpus)
        train_seconds = watch.split()

        dev_bleu = model.score(dev_corpus)
        eval_seconds = watch.split()

        record = TrainingRecord(
            source=train_corpus.source_sensor,
            target=train_corpus.target_sensor,
            train_seconds=train_seconds,
            eval_seconds=eval_seconds,
            dev_bleu=dev_bleu,
            loss_history=list(getattr(model, "loss_history", [])),
        )
        logger.debug(
            "pair %s->%s fitted: dev BLEU %.2f in %.2fs train + %.2fs eval",
            record.source,
            record.target,
            dev_bleu,
            train_seconds,
            eval_seconds,
            extra={
                "source": record.source,
                "target": record.target,
                "dev_bleu": dev_bleu,
                "train_seconds": train_seconds,
                "eval_seconds": eval_seconds,
            },
        )
        return model, record


def train_with_early_stopping(
    train_corpus: ParallelCorpus,
    dev_corpus: ParallelCorpus,
    config: NMTConfig,
    eval_every: int = 50,
    patience: int = 3,
    min_improvement: float = 0.5,
) -> tuple[Seq2SeqTranslator, TrainingRecord]:
    """Fit a seq2seq model in chunks, stopping when dev BLEU plateaus.

    The model is trained ``eval_every`` steps at a time (up to
    ``config.training_steps`` total); after each chunk the dev BLEU is
    measured, and training stops once ``patience`` consecutive
    evaluations fail to improve by ``min_improvement`` BLEU points.

    This is the paper's implicit recipe — they train a fixed 1000 steps
    because all pair models share settings; early stopping recovers
    most of that compute on easy pairs without changing the scores the
    graph layer sees.
    """
    if eval_every < 1 or patience < 1:
        raise ValueError("eval_every and patience must be >= 1")

    total_budget = config.training_steps
    model = Seq2SeqTranslator(
        NMTConfig(
            embedding_size=config.embedding_size,
            hidden_size=config.hidden_size,
            num_layers=config.num_layers,
            dropout=config.dropout,
            training_steps=min(eval_every, total_budget),
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            clip_norm=config.clip_norm,
            seed=config.seed,
            recurrent_unit=config.recurrent_unit,
            attention_score=config.attention_score,
        )
    )

    start = time.perf_counter()
    eval_seconds = 0.0
    loss_history: list[float] = []
    eval_history: list[tuple[int, float]] = []
    best_bleu = -np.inf
    best_state: dict | None = None
    stale = 0
    steps_done = 0
    stopped_early = False

    # First chunk fits vocabularies and modules; later chunks continue.
    model.fit(train_corpus)
    steps_done += model.config.training_steps
    loss_history.extend(model.loss_history)

    while True:
        eval_start = time.perf_counter()
        dev_bleu = model.score(dev_corpus)
        eval_seconds += time.perf_counter() - eval_start
        eval_history.append((steps_done, dev_bleu))
        logger.debug(
            "pair %s->%s step %d: loss %.4f, dev BLEU %.2f",
            train_corpus.source_sensor,
            train_corpus.target_sensor,
            steps_done,
            loss_history[-1] if loss_history else float("nan"),
            dev_bleu,
            extra={
                "source": train_corpus.source_sensor,
                "target": train_corpus.target_sensor,
                "step": steps_done,
                "loss": loss_history[-1] if loss_history else None,
                "dev_bleu": dev_bleu,
            },
        )
        if dev_bleu > best_bleu + min_improvement:
            best_bleu = dev_bleu
            stale = 0
            best_state = model.state_dict()
        else:
            stale += 1
            if stale >= patience:
                stopped_early = steps_done < total_budget
                break
        if steps_done >= total_budget:
            break
        chunk = min(eval_every, total_budget - steps_done)
        _continue_training(model, train_corpus, chunk)
        steps_done += chunk
        loss_history.extend(model.loss_history[-chunk:])

    # Restore the best-scoring weights so the reported dev_bleu always
    # describes the returned model, even when later chunks degraded it.
    if best_state is not None:
        model.load_state_dict(best_state)

    train_seconds = time.perf_counter() - start - eval_seconds
    record = TrainingRecord(
        source=train_corpus.source_sensor,
        target=train_corpus.target_sensor,
        train_seconds=train_seconds,
        eval_seconds=eval_seconds,
        dev_bleu=best_bleu if eval_history else model.score(dev_corpus),
        loss_history=loss_history,
        eval_history=eval_history,
        stopped_early=stopped_early,
    )
    return model, record


def _continue_training(
    model: Seq2SeqTranslator, corpus: ParallelCorpus, steps: int
) -> None:
    """Run ``steps`` more optimisation steps on an already-fitted model."""
    from .. import nn
    from ..nn import functional as F

    model._set_training(True)
    # Reuse the optimizer from fit() so Adam's moment estimates and step
    # count carry across chunks: chunked training then takes exactly the
    # same optimisation path as one uninterrupted fit.  Models restored
    # from pre-optimizer pickles start a fresh one.
    optimizer = getattr(model, "_optimizer", None)
    if optimizer is None:
        optimizer = nn.Adam(model.parameters(), lr=model.config.learning_rate)
        model._optimizer = optimizer
    pairs = corpus.pairs
    batch_size = min(model.config.batch_size, len(pairs))
    for _ in range(steps):
        chosen = model._rng.choice(len(pairs), size=batch_size, replace=False)
        sources = [pairs[i][0] for i in chosen]
        targets = [pairs[i][1] for i in chosen]
        source_ids, source_mask = model._encode_batch(sources)
        decoder_inputs, decoder_targets, target_mask = model._target_batch(targets)
        encoder_outputs, state = model._run_encoder(source_ids)
        step_logits = []
        for t in range(decoder_inputs.shape[1]):
            logits, state = model._decode_step(
                decoder_inputs[:, t], state, encoder_outputs, source_mask
            )
            step_logits.append(logits)
        loss = F.masked_cross_entropy(
            nn.Tensor.stack(step_logits, axis=1), decoder_targets, target_mask
        )
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(model.parameters(), model.config.clip_norm)
        optimizer.step()
        model.loss_history.append(loss.item())
    model._set_training(False)
