"""Pairwise relationship diagnostics.

Answers the operator question "why does this edge have this score?" by
combining the BLEU breakdown (which n-gram orders fail), the two
languages' statistics (is the target trivially constant?) and the edge
asymmetry.  This is the quantitative version of the paper's Section
III-C investigation into why [90, 100] edges are useless — "a
significant portion of words in the vocabulary of these target sensors
are 'aaaaaaaa'".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..lang.statistics import LanguageStatistics, language_statistics
from .bleu import BleuBreakdown, bleu_breakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports translation)
    from ..graph.mvrg import MultivariateRelationshipGraph

__all__ = ["PairDiagnostics", "diagnose_pair"]


@dataclass(frozen=True)
class PairDiagnostics:
    """Everything known about one directed relationship."""

    source: str
    target: str
    score: float
    reverse_score: float | None
    breakdown: BleuBreakdown
    source_language: LanguageStatistics
    target_language: LanguageStatistics

    @property
    def asymmetry(self) -> float | None:
        """|s(i,j) − s(j,i)| when the reverse edge exists."""
        if self.reverse_score is None:
            return None
        return abs(self.score - self.reverse_score)

    @property
    def trivially_translatable(self) -> bool:
        """High score explained by a near-constant target language —
        the [90, 100] failure mode of Figure 8b."""
        return self.score >= 90.0 and self.target_language.is_trivial()

    @property
    def shares_vocabulary_not_dynamics(self) -> bool:
        """Unigrams match but higher orders collapse: the sensors use
        similar states without moving together."""
        precisions = self.breakdown.precisions
        if 1 not in precisions or 4 not in precisions:
            return False
        return precisions[1] >= 0.7 and precisions[4] <= 0.3

    def summary(self) -> str:
        """A one-paragraph human-readable reading of the edge."""
        lines = [
            f"{self.source} -> {self.target}: BLEU {self.score:.1f}"
            + (
                f" (reverse {self.reverse_score:.1f})"
                if self.reverse_score is not None
                else ""
            )
        ]
        precisions = ", ".join(
            f"p{order}={value:.2f}" for order, value in self.breakdown.precisions.items()
        )
        lines.append(f"  n-gram precisions: {precisions}; BP {self.breakdown.brevity_penalty:.2f}")
        lines.append(
            f"  target language: vocab {self.target_language.vocabulary_size}, "
            f"entropy {self.target_language.word_entropy_bits:.2f} bits, "
            f"top word {self.target_language.most_common_fraction:.0%}"
        )
        if self.trivially_translatable:
            lines.append("  verdict: trivially translatable target (weak evidence of a real relationship)")
        elif self.shares_vocabulary_not_dynamics:
            lines.append("  verdict: shared vocabulary without shared dynamics")
        elif self.score >= 80.0:
            lines.append("  verdict: strong behavioural relationship")
        else:
            lines.append("  verdict: weak relationship")
        return "\n".join(lines)


def diagnose_pair(
    graph: "MultivariateRelationshipGraph", source: str, target: str
) -> PairDiagnostics:
    """Diagnose the directed edge ``source -> target`` of a fitted graph.

    Translations are recomputed on the training languages' sentence
    corpora, so the breakdown reflects the same data that produced the
    edge score.
    """
    relationship = graph[(source, target)]
    source_language = graph.corpus[source]
    target_language = graph.corpus[target]
    translations = relationship.model.translate(source_language.sentences)
    count = min(len(translations), len(target_language.sentences))
    breakdown = bleu_breakdown(
        translations[:count], target_language.sentences[:count]
    )
    reverse_score = (
        graph.score(target, source) if (target, source) in graph else None
    )
    return PairDiagnostics(
        source=source,
        target=target,
        score=relationship.score,
        reverse_score=reverse_score,
        breakdown=breakdown,
        source_language=language_statistics(source_language),
        target_language=language_statistics(target_language),
    )
