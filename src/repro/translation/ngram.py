"""Count-based surrogate translation model.

The paper trains one seq2seq NMT model per directed sensor pair — over
32,000 models for the 128-sensor plant.  On a single CPU that is not
tractable with the neural model, so the full-scale benchmarks use this
surrogate (see DESIGN.md "Substitutions").  It predicts each target
word from the time-aligned source word with a backoff chain

    P(t_k | s_k, t_{k-1})  →  P(t_k | s_k)  →  P(t_k),

decoded greedily.  Like the neural model, it produces high BLEU when
the target sensor's word stream is predictable from the source's
(strong pairwise relationship) and low BLEU otherwise, which is the
only property Algorithm 1/2 consume.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from ..lang.corpus import ParallelCorpus
from ..lang.vocabulary import BOS
from .base import Sentence, TranslationModel

__all__ = ["NGramTranslator"]


class NGramTranslator(TranslationModel):
    """Positionally aligned conditional-frequency translator.

    Parameters
    ----------
    use_target_history:
        When true (default), condition on the previously emitted target
        word in addition to the aligned source word, capturing target
        language continuity (analogous to the decoder's recurrence).
    """

    def __init__(self, use_target_history: bool = True) -> None:
        super().__init__()
        self.use_target_history = use_target_history
        self._joint: dict[tuple[str, str], Counter] = defaultdict(Counter)
        self._conditional: dict[str, Counter] = defaultdict(Counter)
        self._marginal: Counter = Counter()

    def fit(self, corpus: ParallelCorpus) -> "NGramTranslator":
        if len(corpus) == 0:
            raise ValueError("cannot fit on an empty corpus")
        self.source_sensor = corpus.source_sensor
        self.target_sensor = corpus.target_sensor
        self._joint.clear()
        self._conditional.clear()
        self._marginal.clear()
        for source, target in corpus:
            previous = BOS
            for source_word, target_word in zip(source, target):
                self._joint[(source_word, previous)][target_word] += 1
                self._conditional[source_word][target_word] += 1
                self._marginal[target_word] += 1
                previous = target_word
        self.fitted = True
        return self

    def _predict_word(self, source_word: str, previous: str) -> str:
        if self.use_target_history:
            joint = self._joint.get((source_word, previous))
            if joint:
                return joint.most_common(1)[0][0]
        conditional = self._conditional.get(source_word)
        if conditional:
            return conditional.most_common(1)[0][0]
        if not self._marginal:
            raise RuntimeError("model has no statistics; was fit() called?")
        return self._marginal.most_common(1)[0][0]

    def translate(self, source_sentences: Sequence[Sentence]) -> list[Sentence]:
        self._check_fitted()
        translations: list[Sentence] = []
        for sentence in source_sentences:
            previous = BOS
            output: list[str] = []
            for source_word in sentence:
                predicted = self._predict_word(source_word, previous)
                output.append(predicted)
                previous = predicted
            translations.append(tuple(output))
        return translations
