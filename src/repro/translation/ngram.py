"""Count-based surrogate translation model.

The paper trains one seq2seq NMT model per directed sensor pair — over
32,000 models for the 128-sensor plant.  On a single CPU that is not
tractable with the neural model, so the full-scale benchmarks use this
surrogate (see DESIGN.md "Substitutions").  It predicts each target
word from the time-aligned source word with a backoff chain

    P(t_k | s_k, t_{k-1})  →  P(t_k | s_k)  →  P(t_k),

decoded greedily.  Like the neural model, it produces high BLEU when
the target sensor's word stream is predictable from the source's
(strong pairwise relationship) and low BLEU otherwise, which is the
only property Algorithm 1/2 consume.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from typing import Hashable, Sequence

import numpy as np

from ..lang.corpus import ParallelCorpus
from ..lang.vocabulary import BOS
from .base import Sentence, TranslationModel

__all__ = ["NGramTranslator"]

Word = Hashable

#: Stand-in for :data:`BOS` in the vectorised integer fit.  Packed word
#: keys are non-negative, so -1 can never collide with a real word.
_BOS_CODE = -1


def _argmax(counter: Counter) -> Word:
    """The word ``Counter.most_common(1)`` would return.

    ``most_common`` resolves count ties by insertion order (first seen
    wins); the strict ``>`` below preserves exactly that, so the cached
    argmaxes decode identically to the per-call scan.
    """
    best_word: Word = None
    best_count = -1
    for word, count in counter.items():
        if count > best_count:
            best_word, best_count = word, count
    return best_word


def _flatten_from_languages(
    corpus: ParallelCorpus,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
    """Zero-conversion flatten via the languages' packed matrices.

    When the corpus was built :meth:`ParallelCorpus.from_languages`,
    both sides expose a cached ``(num_sentences, length)`` int64 word
    matrix; the aligned streams are then just row-truncated ``reshape``
    views, skipping the per-pair tuple walk entirely.  The streams are
    identical to the generic flatten: uniform sentence length means
    every pair contributes exactly ``length`` aligned positions.
    """
    source_language = getattr(corpus, "source_language", None)
    target_language = getattr(corpus, "target_language", None)
    if source_language is None or target_language is None:
        return None
    source_matrix = source_language.packed_sentence_matrix()
    target_matrix = target_language.packed_sentence_matrix()
    if source_matrix is None or target_matrix is None:
        return None
    count = len(corpus)
    if count == 0:
        return (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )
    if source_matrix.shape[1] != target_matrix.shape[1]:
        return None
    if count > len(source_matrix) or count > len(target_matrix):
        return None  # pairs not drawn from these matrices; play safe
    length = source_matrix.shape[1]
    source_all = source_matrix[:count].reshape(-1)
    target_all = target_matrix[:count].reshape(-1)
    previous_all = np.empty_like(target_all)
    previous_all[1:] = target_all[:-1]
    previous_all[::length] = _BOS_CODE
    return source_all, target_all, previous_all


def _flatten_int_pairs(
    corpus: ParallelCorpus,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
    """Flatten aligned (source, target, previous-target) word streams.

    Returns ``None`` for non-integer (or negative) words, signalling
    the Counter fit.  Positions follow the exact ``zip`` order of the
    legacy loop, so first-occurrence indices reproduce Counter
    insertion order.
    """
    fast = _flatten_from_languages(corpus)
    if fast is not None:
        return fast
    aligned: list[tuple] = []
    counts: list[int] = []
    for source, target in corpus:
        count = min(len(source), len(target))
        if count == 0:
            continue
        # np.fromiter would happily coerce digit-strings, so token
        # types are checked before the bulk conversion below.
        if not isinstance(source[0], (int, np.integer)) or not isinstance(
            target[0], (int, np.integer)
        ):
            return None
        aligned.append((source, target))
        counts.append(count)
    if not aligned:
        return (
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )
    counts_arr = np.asarray(counts, dtype=np.int64)
    total = int(counts_arr.sum())
    # One chained fromiter per stream: far cheaper than a per-pair
    # array when the corpus holds thousands of short sentences.
    chain = itertools.chain.from_iterable
    source_all = np.fromiter(
        chain(s[:c] for (s, _), c in zip(aligned, counts)), np.int64, total
    )
    target_all = np.fromiter(
        chain(t[:c] for (_, t), c in zip(aligned, counts)), np.int64, total
    )
    if source_all.min() < 0 or target_all.min() < 0:
        return None
    previous_all = np.empty(total, np.int64)
    previous_all[1:] = target_all[:-1]
    # The shift leaks each pair's last target into the next pair's
    # first slot; every pair start is then reset to the BOS sentinel.
    starts = np.zeros(len(counts_arr), dtype=np.int64)
    np.cumsum(counts_arr[:-1], out=starts[1:])
    previous_all[starts] = _BOS_CODE
    return source_all, target_all, previous_all


def _grouped_argmax(
    group_ids: np.ndarray, target_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group argmax target with Counter tie-breaking.

    For every distinct group id, pick the target id with the highest
    count; ties go to the pair whose *first occurrence* comes earliest
    in the stream — exactly ``Counter.most_common(1)`` on a Counter
    filled in stream order.  Returns (sorted distinct groups, best
    target per group).
    """
    num_targets = int(target_ids.max()) + 1 if len(target_ids) else 1
    combined = group_ids * num_targets + target_ids
    pairs, first_index, counts = np.unique(
        combined, return_index=True, return_counts=True
    )
    groups = pairs // num_targets
    # Sort by (group, count desc, first occurrence asc); the first row
    # of each group segment is its argmax.
    order = np.lexsort((first_index, -counts, groups))
    sorted_groups = groups[order]
    segment_starts = np.flatnonzero(
        np.r_[True, sorted_groups[1:] != sorted_groups[:-1]]
    )
    chosen = order[segment_starts]
    return groups[chosen], pairs[chosen] % num_targets


class NGramTranslator(TranslationModel):
    """Positionally aligned conditional-frequency translator.

    Words are opaque hashable tokens — character strings on the legacy
    path, packed integer keys on the columnar path.  The backoff
    argmaxes are precomputed once at fit time, so translation is a
    couple of dict lookups per word instead of a ``most_common`` scan.

    Parameters
    ----------
    use_target_history:
        When true (default), condition on the previously emitted target
        word in addition to the aligned source word, capturing target
        language continuity (analogous to the decoder's recurrence).
    """

    def __init__(self, use_target_history: bool = True) -> None:
        super().__init__()
        self.use_target_history = use_target_history
        self._joint: dict[tuple[Word, Word], Counter] = defaultdict(Counter)
        self._conditional: dict[Word, Counter] = defaultdict(Counter)
        self._marginal: Counter = Counter()
        self._joint_best: dict[tuple[Word, Word], Word] = {}
        self._conditional_best: dict[Word, Word] = {}
        self._marginal_best: Word = None
        self._vector_tables: "tuple | None" = None

    def fit(self, corpus: ParallelCorpus) -> "NGramTranslator":
        if len(corpus) == 0:
            raise ValueError("cannot fit on an empty corpus")
        self.source_sensor = corpus.source_sensor
        self.target_sensor = corpus.target_sensor
        self._joint.clear()
        self._conditional.clear()
        self._marginal.clear()
        self._vector_tables = None
        flattened = _flatten_int_pairs(corpus)
        if flattened is not None:
            self._fit_vectorised(*flattened)
        else:
            for source, target in corpus:
                previous: Word = BOS
                for source_word, target_word in zip(source, target):
                    self._joint[(source_word, previous)][target_word] += 1
                    self._conditional[source_word][target_word] += 1
                    self._marginal[target_word] += 1
                    previous = target_word
            self._build_argmax()
        self.fitted = True
        return self

    def _fit_vectorised(
        self, sources: np.ndarray, targets: np.ndarray, previous: np.ndarray
    ) -> None:
        """Build the backoff argmax tables by counting integer streams.

        Produces exactly the predictions of the Counter loop — counts
        and first-occurrence tie-breaks are computed per conditioning
        context (see :func:`_grouped_argmax`) — without materialising
        the per-context Counters, which stay empty on this path.  Also
        keeps the compact-id tables around so :meth:`translate` can
        decode whole corpora with array lookups.
        """
        self._joint_best = {}
        self._conditional_best = {}
        self._marginal_best = None
        self._vector_tables = None
        if len(targets) == 0:
            return
        target_values, target_ids = np.unique(targets, return_inverse=True)
        source_values, source_ids = np.unique(sources, return_inverse=True)
        source_ids = source_ids.astype(np.int64, copy=False)

        counts = np.bincount(target_ids)
        best = np.flatnonzero(counts == counts.max())
        if len(best) > 1:
            # Tie: the target whose first occurrence comes earliest.
            earliest = min(best, key=lambda tid: int(np.argmax(target_ids == tid)))
            marginal_id = int(earliest)
        else:
            marginal_id = int(best[0])
        self._marginal_best = int(target_values[marginal_id])

        groups, best_targets = _grouped_argmax(source_ids, target_ids)
        # Every source id occurs in the stream, so this table is total.
        conditional_table = np.empty(len(source_values), dtype=np.int64)
        conditional_table[groups] = best_targets
        self._conditional_best = dict(
            zip(
                source_values[groups].tolist(),
                target_values[best_targets].tolist(),
            )
        )

        joint_keys = joint_targets = None
        num_previous = len(target_values) + 1
        if self.use_target_history:
            # Previous-word ids derive from the target ids: id 0 is
            # BOS, id t+1 is target id t of the preceding position —
            # no second unique pass over the shifted stream needed.
            previous_ids = np.empty_like(target_ids)
            previous_ids[0] = 0
            previous_ids[1:] = target_ids[:-1] + 1
            previous_ids[previous == _BOS_CODE] = 0
            context_ids = source_ids * num_previous + previous_ids
            joint_keys, joint_targets = _grouped_argmax(context_ids, target_ids)
            previous_of = joint_keys % num_previous
            source_of = source_values[joint_keys // num_previous]
            best_of = target_values[joint_targets]
            self._joint_best = {
                (
                    int(source_word),
                    BOS if previous_id == 0 else int(target_values[previous_id - 1]),
                ): int(target_word)
                for source_word, previous_id, target_word in zip(
                    source_of.tolist(), previous_of.tolist(), best_of.tolist()
                )
            }
        self._vector_tables = (
            source_values,
            target_values,
            conditional_table,
            joint_keys,
            joint_targets,
            marginal_id,
            num_previous,
        )

    def _build_argmax(self) -> None:
        self._joint_best = {key: _argmax(c) for key, c in self._joint.items()}
        self._conditional_best = {key: _argmax(c) for key, c in self._conditional.items()}
        self._marginal_best = _argmax(self._marginal) if self._marginal else None

    def _ensure_argmax(self) -> None:
        # Models unpickled from before the argmax cache existed carry
        # only the raw counters; rebuild lazily.
        if not getattr(self, "_conditional_best", None) and self._conditional:
            self._joint_best = {}
            self._conditional_best = {}
            self._build_argmax()

    def _predict_word(self, source_word: Word, previous: Word) -> Word:
        if self.use_target_history:
            predicted = self._joint_best.get((source_word, previous))
            if predicted is not None:
                return predicted
        predicted = self._conditional_best.get(source_word)
        if predicted is not None:
            return predicted
        if self._marginal_best is None:
            raise RuntimeError("model has no statistics; was fit() called?")
        return self._marginal_best

    def _translate_vectorised(
        self, source_sentences: Sequence[Sentence]
    ) -> "list[Sentence] | None":
        """Decode a uniform-length integer corpus with array lookups.

        Walks sentence positions in lockstep — one vector step per
        position instead of one dict lookup per word — replaying the
        exact joint → conditional → marginal backoff of
        :meth:`_predict_word`.  Returns ``None`` (caller falls back to
        the scalar loop) for ragged, empty or non-integer input.
        """
        tables = getattr(self, "_vector_tables", None)
        if tables is None or not source_sentences:
            return None
        (
            source_values,
            target_values,
            conditional_table,
            joint_keys,
            joint_targets,
            marginal_id,
            num_previous,
        ) = tables
        length = len(source_sentences[0])
        if length == 0:
            return None
        for sentence in source_sentences:
            # np.fromiter would coerce digit-strings, so token types
            # are checked per sentence before the bulk conversion.
            if len(sentence) != length or not isinstance(
                sentence[0], (int, np.integer)
            ):
                return None
        count = len(source_sentences)
        try:
            matrix = np.fromiter(
                itertools.chain.from_iterable(source_sentences),
                np.int64,
                count * length,
            ).reshape(count, length)
        except (TypeError, ValueError):
            return None

        use_joint = self.use_target_history and joint_keys is not None and len(joint_keys)
        output_ids = np.empty((count, length), dtype=np.int64)
        previous_ids = np.zeros(count, dtype=np.int64)  # BOS
        for position in range(length):
            column = matrix[:, position]
            source_pos = np.searchsorted(source_values, column)
            source_safe = np.minimum(source_pos, len(source_values) - 1)
            known = source_values[source_safe] == column
            predicted = np.full(count, -1, dtype=np.int64)
            if use_joint:
                context = source_safe * num_previous + previous_ids
                joint_pos = np.searchsorted(joint_keys, context)
                joint_safe = np.minimum(joint_pos, len(joint_keys) - 1)
                hit = known & (joint_keys[joint_safe] == context)
                predicted[hit] = joint_targets[joint_safe[hit]]
            miss = predicted < 0
            conditional_hit = miss & known
            predicted[conditional_hit] = conditional_table[source_safe[conditional_hit]]
            predicted[predicted < 0] = marginal_id
            output_ids[:, position] = predicted
            previous_ids = predicted + 1
        decoded = target_values[output_ids]
        return [tuple(row) for row in decoded.tolist()]

    def translate(self, source_sentences: Sequence[Sentence]) -> list[Sentence]:
        self._check_fitted()
        self._ensure_argmax()
        vectorised = self._translate_vectorised(source_sentences)
        if vectorised is not None:
            return vectorised
        # Bound lookups hoisted out of the per-word loop; the body
        # mirrors _predict_word exactly.
        joint_get = self._joint_best.get if self.use_target_history else None
        conditional_get = self._conditional_best.get
        marginal = self._marginal_best
        translations: list[Sentence] = []
        for sentence in source_sentences:
            previous: Word = BOS
            output: list[Word] = []
            for source_word in sentence:
                predicted = (
                    joint_get((source_word, previous)) if joint_get is not None else None
                )
                if predicted is None:
                    predicted = conditional_get(source_word)
                    if predicted is None:
                        if marginal is None:
                            raise RuntimeError(
                                "model has no statistics; was fit() called?"
                            )
                        predicted = marginal
                output.append(predicted)
                previous = predicted
            translations.append(tuple(output))
        return translations
