"""Decoding strategies for the seq2seq translator.

Greedy decoding (the default inside
:meth:`repro.translation.Seq2SeqTranslator.translate`) picks the argmax
token at every step.  Beam search — the standard NMT inference strategy
of the paper's citation [23] — keeps the ``beam_width`` best partial
hypotheses and returns the highest-scoring completed one, with an
optional length penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["BeamHypothesis", "beam_search_translate"]


@dataclass(order=True)
class BeamHypothesis:
    """A partial or completed decode, ordered by normalised score."""

    sort_key: float = field(init=False, repr=False)
    log_probability: float
    tokens: tuple[int, ...] = field(compare=False)
    state: object = field(compare=False)
    finished: bool = field(compare=False, default=False)

    def __post_init__(self) -> None:
        self.sort_key = self.normalised_score()

    def normalised_score(self, length_penalty: float = 0.6) -> float:
        """Google-NMT style length-normalised log probability."""
        length = max(1, len(self.tokens))
        norm = ((5.0 + length) / 6.0) ** length_penalty
        return self.log_probability / norm


def beam_search_translate(
    translator: "Seq2SeqTranslator",
    source_sentence: tuple[str, ...],
    beam_width: int = 4,
    max_length: int | None = None,
    length_penalty: float = 0.6,
) -> tuple[str, ...]:
    """Beam-search decode one sentence with a fitted seq2seq translator.

    Parameters
    ----------
    translator:
        A fitted :class:`~repro.translation.Seq2SeqTranslator`.
    source_sentence:
        Words in the source sensor's language.
    beam_width:
        Number of hypotheses kept per step.
    max_length:
        Decode limit; defaults to source length + 1 (sentences are
        near-isochronous in this domain).
    length_penalty:
        Exponent of the GNMT length normaliser (0 disables it).

    Returns
    -------
    The best hypothesis's words (specials stripped).
    """
    translator._check_fitted()
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    vocab = translator.target_vocab
    assert vocab is not None
    if max_length is None:
        max_length = len(source_sentence) + 1

    with nn.no_grad():
        source_ids, source_mask = translator._encode_batch([source_sentence])
        encoder_outputs, initial_state = translator._run_encoder(source_ids)

        beams = [
            BeamHypothesis(
                log_probability=0.0, tokens=(vocab.bos_id,), state=initial_state
            )
        ]
        completed: list[BeamHypothesis] = []

        for _ in range(max_length):
            candidates: list[BeamHypothesis] = []
            for beam in beams:
                if beam.finished:
                    completed.append(beam)
                    continue
                token = np.array([beam.tokens[-1]], dtype=np.int64)
                logits, state = translator._decode_step(
                    token, beam.state, encoder_outputs, source_mask
                )
                log_probs = F.log_softmax(logits, axis=-1).data[0]
                top = np.argsort(log_probs)[::-1][:beam_width]
                for token_id in top:
                    candidates.append(
                        BeamHypothesis(
                            log_probability=beam.log_probability + float(log_probs[token_id]),
                            tokens=beam.tokens + (int(token_id),),
                            state=state,
                            finished=int(token_id) == vocab.eos_id,
                        )
                    )
            if not candidates:
                beams = []
                break
            candidates.sort(
                key=lambda hyp: hyp.normalised_score(length_penalty), reverse=True
            )
            beams = candidates[:beam_width]
            if all(beam.finished for beam in beams):
                break
        # Hypotheses still in the beam (finished on the last step, or
        # truncated by max_length) compete alongside earlier completions.
        completed.extend(beams)

        best = max(completed, key=lambda hyp: hyp.normalised_score(length_penalty))
    return tuple(vocab.decode(best.tokens))
