"""BLEU — BiLingual Evaluation Understudy (Papineni et al., 2002).

The paper uses BLEU on a 0–100 scale as the translation score
``s(i, j)`` that quantifies the relationship between two sensors.  This
module implements corpus-level BLEU with modified n-gram precision and
the brevity penalty, plus a smoothed sentence-level variant (Lin & Och
smoothing: add-one on higher-order precisions) for short sentences.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "corpus_bleu",
    "sentence_bleu",
    "modified_precision",
    "brevity_penalty",
    "BleuBreakdown",
    "bleu_breakdown",
]

Sentence = Sequence[str]


def _ngrams(sentence: Sentence, order: int) -> Counter:
    return Counter(
        tuple(sentence[i : i + order]) for i in range(len(sentence) - order + 1)
    )


def modified_precision(
    candidates: Sequence[Sentence], references: Sequence[Sentence], order: int
) -> tuple[int, int]:
    """Clipped n-gram matches and totals across a corpus.

    Returns ``(matched, total)`` for n-grams of size ``order``; the
    modified precision is ``matched / total``.
    """
    matched = 0
    total = 0
    for candidate, reference in zip(candidates, references):
        candidate_counts = _ngrams(candidate, order)
        reference_counts = _ngrams(reference, order)
        total += sum(candidate_counts.values())
        matched += sum(
            min(count, reference_counts[gram]) for gram, count in candidate_counts.items()
        )
    return matched, total


def brevity_penalty(candidate_length: int, reference_length: int) -> float:
    """Exponential penalty for candidates shorter than their references."""
    if candidate_length == 0:
        return 0.0
    if candidate_length >= reference_length:
        return 1.0
    return math.exp(1.0 - reference_length / candidate_length)


def corpus_bleu(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int = 4,
    smooth: bool = False,
) -> float:
    """Corpus-level BLEU on the paper's 0–100 scale.

    Parameters
    ----------
    candidates, references:
        Parallel lists of token sequences (one reference per candidate,
        as in the paper's sensor-to-sensor setting).
    max_order:
        Largest n-gram order (standard BLEU-4).
    smooth:
        When true, zero counts at higher orders are add-one smoothed
        instead of zeroing the whole score; useful for very short
        sentences.
    """
    if len(candidates) != len(references):
        raise ValueError(
            f"candidate/reference count mismatch: {len(candidates)} vs {len(references)}"
        )
    if not candidates:
        raise ValueError("corpus_bleu requires at least one sentence pair")

    # Only orders for which at least one candidate n-gram exists are
    # feasible; short sentences are scored over their feasible orders
    # with uniform weights (the effective-order convention).
    stats: list[tuple[int, int, int]] = []
    for order in range(1, max_order + 1):
        matched, total = modified_precision(candidates, references, order)
        if total > 0:
            stats.append((order, matched, total))
    if not stats:
        return 0.0

    weight = 1.0 / len(stats)
    log_precision_sum = 0.0
    for order, matched, total in stats:
        if matched == 0:
            # Unigram misses mean the candidate shares no tokens with
            # the reference: the score is 0 regardless of smoothing.
            # Higher-order zeros are add-one smoothed (Lin & Och) when
            # requested.
            if order == 1 or not smooth:
                return 0.0
            matched, total = 1, total + 1
        log_precision_sum += weight * math.log(matched / total)

    candidate_length = sum(len(c) for c in candidates)
    reference_length = sum(len(r) for r in references)
    bp = brevity_penalty(candidate_length, reference_length)
    return 100.0 * bp * math.exp(log_precision_sum)


def sentence_bleu(
    candidate: Sentence, reference: Sentence, max_order: int = 4
) -> float:
    """Smoothed single-sentence BLEU on the 0–100 scale."""
    return corpus_bleu([candidate], [reference], max_order=max_order, smooth=True)


class BleuBreakdown:
    """Per-order diagnostics behind a corpus BLEU score.

    Useful when interpreting an edge: a pair with high unigram but low
    4-gram precision shares vocabulary but not dynamics; a pair with a
    low brevity penalty under-translates.
    """

    def __init__(
        self,
        precisions: dict[int, float],
        brevity_penalty_value: float,
        candidate_length: int,
        reference_length: int,
        score: float,
    ) -> None:
        self.precisions = precisions
        self.brevity_penalty = brevity_penalty_value
        self.candidate_length = candidate_length
        self.reference_length = reference_length
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"p{o}={p:.2f}" for o, p in self.precisions.items())
        return f"BleuBreakdown({parts}, bp={self.brevity_penalty:.2f}, score={self.score:.1f})"


def bleu_breakdown(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int = 4,
) -> BleuBreakdown:
    """Per-order modified precisions, brevity penalty and the score."""
    precisions: dict[int, float] = {}
    for order in range(1, max_order + 1):
        matched, total = modified_precision(candidates, references, order)
        if total > 0:
            precisions[order] = matched / total
    candidate_length = sum(len(c) for c in candidates)
    reference_length = sum(len(r) for r in references)
    return BleuBreakdown(
        precisions=precisions,
        brevity_penalty_value=brevity_penalty(candidate_length, reference_length),
        candidate_length=candidate_length,
        reference_length=reference_length,
        score=corpus_bleu(candidates, references, max_order=max_order, smooth=True),
    )
