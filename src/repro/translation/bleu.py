"""BLEU — BiLingual Evaluation Understudy (Papineni et al., 2002).

The paper uses BLEU on a 0–100 scale as the translation score
``s(i, j)`` that quantifies the relationship between two sensors.  This
module implements corpus-level BLEU with modified n-gram precision and
the brevity penalty, plus a smoothed sentence-level variant (Lin & Och
smoothing: add-one on higher-order precisions) for short sentences.

Sentences are sequences of opaque hashable tokens.  The legacy path
counts n-grams with :class:`collections.Counter`; integer-coded corpora
(the columnar representation, where each word is a packed ``int`` key)
additionally get a vectorised path that flattens the corpus into one
``int64`` token array, packs every n-gram into a scalar key and counts
matches with ``np.unique``/``np.intersect1d``.  Both paths produce the
same integer ``(matched, total)`` statistics, so scores are
bit-identical regardless of the path taken.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "corpus_bleu",
    "sentence_bleu",
    "mapping_proxy_scores",
    "modified_precision",
    "brevity_penalty",
    "BleuBreakdown",
    "bleu_breakdown",
]

Sentence = Sequence

#: Below this many total candidate tokens the Counter path wins on
#: constant factors (e.g. the per-window ``sentence_bleu`` of
#: Algorithm 2); above it the vectorised integer path takes over.
_VECTOR_MIN_TOKENS = 96


def _ngrams(sentence: Sentence, order: int) -> Counter:
    return Counter(
        tuple(sentence[i : i + order]) for i in range(len(sentence) - order + 1)
    )


def _counter_precision(
    candidates: Sequence[Sentence], references: Sequence[Sentence], order: int
) -> tuple[int, int]:
    matched = 0
    total = 0
    for candidate, reference in zip(candidates, references):
        candidate_counts = _ngrams(candidate, order)
        reference_counts = _ngrams(reference, order)
        total += sum(candidate_counts.values())
        matched += sum(
            min(count, reference_counts[gram]) for gram, count in candidate_counts.items()
        )
    return matched, total


# ----------------------------------------------------------------------
# Vectorised integer-corpus path
# ----------------------------------------------------------------------
def _flatten_int_corpus(
    sentences: Sequence[Sentence],
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Flatten a corpus of int-token sentences to ``(tokens, ends)``.

    Returns ``None`` when tokens are not integers, signalling the
    caller to use the Counter path.  ``ends`` holds the cumulative end
    offset of each sentence inside ``tokens``.
    """
    for sentence in sentences:
        if len(sentence) == 0:
            continue
        # np.fromiter would happily coerce digit-strings, so the token
        # type is checked explicitly before flattening.
        if not isinstance(sentence[0], (int, np.integer)):
            return None
        break
    lengths = np.fromiter((len(s) for s in sentences), dtype=np.int64, count=len(sentences))
    total = int(lengths.sum())
    try:
        tokens = np.fromiter(
            itertools.chain.from_iterable(sentences), dtype=np.int64, count=total
        )
    except (TypeError, ValueError):
        return None
    return tokens, np.cumsum(lengths)


def _all_gram_keys(
    ends: np.ndarray, ids: np.ndarray, base: int, max_order: int
) -> "dict[int, np.ndarray] | None":
    """Per-window ``sentence * base^order + gram`` keys, all orders.

    ``ids`` are the corpus's compact token ids; windows crossing a
    sentence boundary are masked out.  Order ``o`` packed values build
    incrementally from order ``o - 1`` (one multiply-add per order), so
    the whole family costs a single ``searchsorted`` pass.  Returns
    ``None`` on (improbable) 64-bit overflow of any order's key space.
    """
    positions = np.arange(len(ids), dtype=np.int64)
    sentence = np.searchsorted(ends, positions, side="right")
    limits = ends[sentence] if len(ends) else positions
    keys: dict[int, np.ndarray] = {}
    packed = ids.astype(np.int64, copy=False)
    for order in range(1, max_order + 1):
        span = base ** order if base > 0 else 0
        if span <= 0 or span >= 2 ** 62 or len(ends) * span >= 2 ** 62:
            return None
        if order > 1:
            packed = packed[:-1] * base + ids[order - 1 :]
        count = len(packed)
        valid = positions[:count] + order <= limits[:count]
        keys[order] = sentence[:count][valid] * span + packed[valid]
    return keys


def _int_corpus_stats(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int,
) -> "dict[int, tuple[int, int]] | None":
    """All-order ``(matched, total)`` stats via the vectorised path.

    Produces exactly the statistics of the Counter path — clipped
    per-sentence n-gram matches are integers either way — or ``None``
    when the corpus is not integer-coded (or would overflow packing).
    """
    cand = _flatten_int_corpus(candidates)
    if cand is None:
        return None
    ref = _flatten_int_corpus(references)
    if ref is None:
        return None
    cand_tokens, cand_ends = cand
    ref_tokens, ref_ends = ref
    vocabulary = np.unique(np.concatenate((cand_tokens, ref_tokens)))
    base = len(vocabulary)
    cand_ids = np.searchsorted(vocabulary, cand_tokens)
    ref_ids = np.searchsorted(vocabulary, ref_tokens)

    cand_by_order = _all_gram_keys(cand_ends, cand_ids, base, max_order)
    ref_by_order = _all_gram_keys(ref_ends, ref_ids, base, max_order)
    if cand_by_order is None or ref_by_order is None:
        # Key-space overflow (enormous vocabulary): count with Counters
        # instead — identical statistics, just slower.
        return {
            order: _counter_precision(candidates, references, order)
            for order in range(1, max_order + 1)
        }
    per_order = [
        (order, cand_by_order[order], ref_by_order[order])
        for order in range(1, max_order + 1)
    ]

    # Offset every order's key space into a disjoint range so one
    # unique/count pass per side covers all orders at once — the keys
    # are small arrays, so per-call numpy overhead dominates and
    # fusing the orders roughly quarters it.
    offsets: list[int] = []
    offset = 0
    sentences = max(len(cand_ends), len(ref_ends))
    for order, _, _ in per_order:
        offsets.append(offset)
        offset += sentences * (base ** order)
        if offset >= 2 ** 62:
            break
    else:
        return _fused_order_stats(per_order, offsets)

    # Fallback: the fused key space overflowed 63 bits; intersect each
    # order separately.
    stats: dict[int, tuple[int, int]] = {}
    for order, cand_keys, ref_keys in per_order:
        total = int(len(cand_keys))
        cand_unique, cand_counts = np.unique(cand_keys, return_counts=True)
        ref_unique, ref_counts = np.unique(ref_keys, return_counts=True)
        _, cand_idx, ref_idx = np.intersect1d(
            cand_unique, ref_unique, assume_unique=True, return_indices=True
        )
        matched = int(np.minimum(cand_counts[cand_idx], ref_counts[ref_idx]).sum())
        stats[order] = (matched, total)
    return stats


def _fused_order_stats(
    per_order: Sequence[tuple[int, np.ndarray, np.ndarray]],
    offsets: Sequence[int],
) -> dict[int, tuple[int, int]]:
    """Clipped match counts for all orders in one unique pass per side."""
    cand_all = np.concatenate(
        [keys + off for (_, keys, _), off in zip(per_order, offsets)]
    )
    ref_all = np.concatenate(
        [keys + off for (_, _, keys), off in zip(per_order, offsets)]
    )
    matched_per_order = np.zeros(len(per_order), dtype=np.int64)
    if len(cand_all) and len(ref_all):
        cand_unique, cand_counts = np.unique(cand_all, return_counts=True)
        ref_unique, ref_counts = np.unique(ref_all, return_counts=True)
        positions = np.searchsorted(ref_unique, cand_unique)
        positions_safe = np.minimum(positions, len(ref_unique) - 1)
        shared = ref_unique[positions_safe] == cand_unique
        clipped = np.minimum(cand_counts[shared], ref_counts[positions_safe[shared]])
        # Recover each shared key's order from its offset range.
        bounds = np.asarray(offsets[1:], dtype=np.int64)
        order_index = np.searchsorted(bounds, cand_unique[shared], side="right")
        np.add.at(matched_per_order, order_index, clipped)
    return {
        order: (int(matched_per_order[i]), int(len(keys)))
        for i, (order, keys, _) in enumerate(per_order)
    }


def _corpus_stats(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int,
) -> dict[int, tuple[int, int]]:
    """Per-order ``(matched, total)``, dispatching to the fastest path."""
    if sum(len(c) for c in candidates) >= _VECTOR_MIN_TOKENS:
        stats = _int_corpus_stats(candidates, references, max_order)
        if stats is not None:
            return stats
    return {
        order: _counter_precision(candidates, references, order)
        for order in range(1, max_order + 1)
    }


def modified_precision(
    candidates: Sequence[Sentence], references: Sequence[Sentence], order: int
) -> tuple[int, int]:
    """Clipped n-gram matches and totals across a corpus.

    Returns ``(matched, total)`` for n-grams of size ``order``; the
    modified precision is ``matched / total``.
    """
    return _counter_precision(candidates, references, order)


def brevity_penalty(candidate_length: int, reference_length: int) -> float:
    """Exponential penalty for candidates shorter than their references."""
    if candidate_length == 0:
        return 0.0
    if candidate_length >= reference_length:
        return 1.0
    return math.exp(1.0 - reference_length / candidate_length)


def corpus_bleu(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int = 4,
    smooth: bool = False,
) -> float:
    """Corpus-level BLEU on the paper's 0–100 scale.

    Parameters
    ----------
    candidates, references:
        Parallel lists of token sequences (one reference per candidate,
        as in the paper's sensor-to-sensor setting).
    max_order:
        Largest n-gram order (standard BLEU-4).
    smooth:
        When true, zero counts at higher orders are add-one smoothed
        instead of zeroing the whole score; useful for very short
        sentences.
    """
    if len(candidates) != len(references):
        raise ValueError(
            f"candidate/reference count mismatch: {len(candidates)} vs {len(references)}"
        )
    if not candidates:
        raise ValueError("corpus_bleu requires at least one sentence pair")

    # Only orders for which at least one candidate n-gram exists are
    # feasible; short sentences are scored over their feasible orders
    # with uniform weights (the effective-order convention).
    all_stats = _corpus_stats(candidates, references, max_order)
    stats: list[tuple[int, int, int]] = [
        (order, matched, total)
        for order, (matched, total) in sorted(all_stats.items())
        if total > 0
    ]
    if not stats:
        return 0.0

    weight = 1.0 / len(stats)
    log_precision_sum = 0.0
    for order, matched, total in stats:
        if matched == 0:
            # Unigram misses mean the candidate shares no tokens with
            # the reference: the score is 0 regardless of smoothing.
            # Higher-order zeros are add-one smoothed (Lin & Och) when
            # requested.
            if order == 1 or not smooth:
                return 0.0
            matched, total = 1, total + 1
        log_precision_sum += weight * math.log(matched / total)

    candidate_length = sum(len(c) for c in candidates)
    reference_length = sum(len(r) for r in references)
    bp = brevity_penalty(candidate_length, reference_length)
    return 100.0 * bp * math.exp(log_precision_sum)


def sentence_bleu(
    candidate: Sentence, reference: Sentence, max_order: int = 4
) -> float:
    """Smoothed single-sentence BLEU on the 0–100 scale."""
    return corpus_bleu([candidate], [reference], max_order=max_order, smooth=True)


# ----------------------------------------------------------------------
# Mapping-predictability proxy (the prescreen's scoring entry point)
# ----------------------------------------------------------------------

#: Sentinel for "no previous target word" in the proxy's context, one
#: past every real compact id on the vectorised path and a private
#: object on the Counter path.  Like :data:`~repro.lang.vocabulary.BOS`
#: it can never collide with a real word.
_PROXY_BOS = object()


def _factorize_corpus(
    sentences: Sequence[Sentence],
) -> "tuple[np.ndarray, int] | None":
    """A uniform-length corpus as a compact-id matrix, or ``None``.

    Returns ``(ids, num_ids)`` where ``ids`` is a ``(sentences, length)``
    ``int64`` matrix of dense token ids.  Ragged corpora, zero-length
    sentences and token types numpy cannot order (e.g. the tuple
    fallback words of overflowing alphabets) signal the slow path by
    returning ``None``.  The ids are labels only — every statistic
    computed from them is invariant under relabelling, which is what
    makes the fast and slow paths (and full-matrix vs. per-pair
    factorisation) agree exactly.
    """
    length = len(sentences[0])
    if length == 0 or any(len(sentence) != length for sentence in sentences):
        return None
    try:
        matrix = np.asarray([tuple(sentence) for sentence in sentences])
    except (TypeError, ValueError):
        return None
    if matrix.ndim != 2 or matrix.dtype == object:
        return None
    unique, inverse = np.unique(matrix, return_inverse=True)
    return inverse.reshape(matrix.shape).astype(np.int64), len(unique)


def _loo_accuracy(matched: int, total: int) -> float:
    """Leave-one-out mapping accuracy, ``1.0`` when nothing repeats.

    ``matched``/``total`` are already first-observation-discounted: a
    context seen once contributes no evidence either way, so a corpus
    where no context ever repeats yields the conservative maximum
    (nothing proved unpredictable) rather than a spurious perfect score
    from memorisation.
    """
    return 1.0 if total == 0 else matched / total


def _grouped_stats(joint_keys: np.ndarray, num_outputs: int) -> tuple[int, int]:
    """LOO counts of the best deterministic context → output mapping.

    ``joint_keys`` packs ``context * num_outputs + output`` per aligned
    observation.  For each context the best mapping predicts its
    majority output; leave-one-out counting credits ``best - 1`` of its
    ``n - 1`` repeat observations, so singleton contexts (pure
    memorisation) contribute nothing.  Returns ``(matched, total)``.
    """
    unique, counts = np.unique(joint_keys, return_counts=True)
    contexts = unique // num_outputs
    starts = np.flatnonzero(np.r_[True, contexts[1:] != contexts[:-1]])
    best = np.maximum.reduceat(counts, starts)
    totals = np.add.reduceat(counts, starts)
    return int((best - 1).sum()), int((totals - 1).sum())


def _vector_direction(
    source_ids: np.ndarray,
    num_source: int,
    target_ids: np.ndarray,
    num_target: int,
    max_order: int,
) -> float | None:
    """Vectorised forward LOO predictability, or ``None`` on overflow.

    Pools the LOO counts of every context order from 1 up to
    ``max_order`` (clamped to the sentence width): sparse high-order
    contexts rarely repeat, so they contribute few observations and the
    pooled accuracy stays anchored by the orders with real evidence —
    the same backoff economics as the translator itself.
    """
    order = min(max_order, source_ids.shape[1])
    # Previous-target ids aligned with each scored position; the id
    # ``num_target`` is the BOS sentinel (history restarts per sentence).
    rows = target_ids.shape[0]
    previous = np.concatenate(
        [np.full((rows, 1), num_target, dtype=np.int64), target_ids[:, :-1]], axis=1
    )
    grams, num_grams = source_ids, num_source
    matched = total = 0
    for step in range(1, order + 1):
        if step >= 2:
            keys = grams[:, :-1] * np.int64(num_source) + source_ids[:, step - 1 :]
            unique, inverse = np.unique(keys, return_inverse=True)
            grams = inverse.reshape(keys.shape).astype(np.int64)
            num_grams = len(unique)
        if num_grams * (num_target + 1) * num_target >= 2 ** 62:
            return None
        context = grams * np.int64(num_target + 1) + previous[:, step - 1 :]
        joint = (
            context.ravel() * np.int64(num_target)
            + target_ids[:, step - 1 :].ravel()
        )
        step_matched, step_total = _grouped_stats(joint, num_target)
        matched += step_matched
        total += step_total
    return _loo_accuracy(matched, total)


def _counter_direction(
    sources: Sequence[Sentence], targets: Sequence[Sentence], max_order: int
) -> float:
    """Slow-path forward LOO predictability via dicts.

    Handles ragged sentences (each aligned pair is trimmed to its
    common length) and arbitrary hashable tokens; produces exactly the
    statistics of the vectorised path on inputs both can score.  Like
    the fast path it pools LOO counts over every context order from 1
    to ``max_order``; pairs shorter than an order simply sit that order
    out.
    """
    joint: Counter = Counter()
    for source, target in zip(sources, targets):
        length = min(len(source), len(target))
        for order in range(1, min(max_order, length) + 1):
            for position in range(order - 1, length):
                gram = tuple(source[position - order + 1 : position + 1])
                previous = target[position - 1] if position else _PROXY_BOS
                joint[((order, gram, previous), target[position])] += 1
    best: Counter = Counter()
    totals: Counter = Counter()
    for (context, _), count in joint.items():
        best[context] = max(best[context], count)
        totals[context] += count
    matched = sum(count - 1 for count in best.values())
    total = sum(count - 1 for count in totals.values())
    return _loo_accuracy(matched, total)


def mapping_proxy_scores(
    sources: Sequence[Sentence],
    targets: Sequence[Sentence],
    max_order: int = 1,
) -> tuple[float, float]:
    """Directional translatability proxies on a 0–100 accuracy scale.

    The forward score estimates the per-word accuracy the count-based
    :class:`~repro.translation.ngram.NGramTranslator` could reach on
    *unseen* data: each aligned target word is predicted from the
    translator's backoff context — a source n-gram ending at its
    position plus the previous target word — by the best deterministic
    dictionary, under leave-one-out counting so singleton contexts
    (pure memorisation) contribute no credit.  LOO counts are pooled
    over every context order from 1 to ``max_order``: high orders only
    weigh in where their contexts actually repeat, so pooling adds
    sensitivity to longer-range structure without letting sparse
    contexts inflate the score.  No model is trained; the score is a
    handful of ``np.unique`` passes over the aligned corpora.

    Returns ``(forward, reverse)``; swapping the arguments swaps the
    two values exactly.  A corpus with no repeating context scores the
    conservative 100.0 (no evidence of unpredictability).  Raises
    ``ValueError`` when there are no aligned sentence pairs or no
    aligned words at all (the prescreen layer maps that to its
    documented degenerate affinity instead).
    """
    count = min(len(sources), len(targets))
    if count == 0:
        raise ValueError("mapping_proxy_scores requires at least one aligned sentence pair")
    if max_order < 1:
        raise ValueError("max_order must be >= 1")
    sources = list(sources[:count])
    targets = list(targets[:count])
    if not any(min(len(s), len(t)) for s, t in zip(sources, targets)):
        raise ValueError("no aligned words to score (zero-length sentences)")
    source_ids = _factorize_corpus(sources)
    target_ids = _factorize_corpus(targets)
    forward = reverse = None
    if (
        source_ids is not None
        and target_ids is not None
        and source_ids[0].shape[1] == target_ids[0].shape[1]
    ):
        forward = _vector_direction(*source_ids, *target_ids, max_order)
        reverse = _vector_direction(*target_ids, *source_ids, max_order)
    if forward is None:
        forward = _counter_direction(sources, targets, max_order)
    if reverse is None:
        reverse = _counter_direction(targets, sources, max_order)
    return 100.0 * forward, 100.0 * reverse


class BleuBreakdown:
    """Per-order diagnostics behind a corpus BLEU score.

    Useful when interpreting an edge: a pair with high unigram but low
    4-gram precision shares vocabulary but not dynamics; a pair with a
    low brevity penalty under-translates.
    """

    def __init__(
        self,
        precisions: dict[int, float],
        brevity_penalty_value: float,
        candidate_length: int,
        reference_length: int,
        score: float,
    ) -> None:
        self.precisions = precisions
        self.brevity_penalty = brevity_penalty_value
        self.candidate_length = candidate_length
        self.reference_length = reference_length
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"p{o}={p:.2f}" for o, p in self.precisions.items())
        return f"BleuBreakdown({parts}, bp={self.brevity_penalty:.2f}, score={self.score:.1f})"


def bleu_breakdown(
    candidates: Sequence[Sentence],
    references: Sequence[Sentence],
    max_order: int = 4,
) -> BleuBreakdown:
    """Per-order modified precisions, brevity penalty and the score."""
    precisions: dict[int, float] = {}
    for order, (matched, total) in sorted(_corpus_stats(candidates, references, max_order).items()):
        if total > 0:
            precisions[order] = matched / total
    candidate_length = sum(len(c) for c in candidates)
    reference_length = sum(len(r) for r in references)
    return BleuBreakdown(
        precisions=precisions,
        brevity_penalty_value=brevity_penalty(candidate_length, reference_length),
        candidate_length=candidate_length,
        reference_length=reference_length,
        score=corpus_bleu(candidates, references, max_order=max_order, smooth=True),
    )
