"""Common interface for directional sensor-to-sensor translation models."""

from __future__ import annotations

import abc
from typing import Sequence

from ..lang.corpus import ParallelCorpus
from .bleu import corpus_bleu

__all__ = ["TranslationModel"]

#: A sentence is a tuple of opaque word tokens — character strings on
#: the legacy path, packed integer keys on the columnar path.
Sentence = tuple


class TranslationModel(abc.ABC):
    """A directional model translating one sensor's language into another's.

    Implementations are fitted on a :class:`~repro.lang.ParallelCorpus`
    and then translate arbitrary source sentences.  The derived
    :meth:`score` — corpus BLEU of the translations against the aligned
    target sentences — is the pairwise relationship metric ``s(i, j)``
    of Algorithm 1 and the test statistic ``f(i, j)`` of Algorithm 2.
    """

    def __init__(self) -> None:
        self.source_sensor: str | None = None
        self.target_sensor: str | None = None
        self.fitted = False

    @abc.abstractmethod
    def fit(self, corpus: ParallelCorpus) -> "TranslationModel":
        """Train the model on aligned sentence pairs."""

    @abc.abstractmethod
    def translate(self, source_sentences: Sequence[Sentence]) -> list[Sentence]:
        """Translate source sentences into target-language sentences."""

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{type(self).__name__} has not been fitted")

    def _check_corpus(self, corpus: ParallelCorpus) -> None:
        if self.source_sensor is not None and corpus.source_sensor != self.source_sensor:
            raise ValueError(
                f"corpus source {corpus.source_sensor!r} != model source {self.source_sensor!r}"
            )
        if self.target_sensor is not None and corpus.target_sensor != self.target_sensor:
            raise ValueError(
                f"corpus target {corpus.target_sensor!r} != model target {self.target_sensor!r}"
            )

    def score(self, corpus: ParallelCorpus, smooth: bool = True) -> float:
        """Corpus BLEU (0–100) of this model's translations of ``corpus``."""
        self._check_fitted()
        self._check_corpus(corpus)
        if len(corpus) == 0:
            raise ValueError("cannot score an empty corpus")
        translations = self.translate(corpus.source_sentences)
        return corpus_bleu(translations, corpus.target_sentences, smooth=smooth)
