"""Seq2seq-with-attention NMT translator (the paper's model).

Architecture per Section III-A2: a 2-layer LSTM encoder maps the source
sentence to fixed-size states; a 2-layer LSTM decoder with Luong
attention (citation [23]) emits the target sentence.  Paper settings:
embedding 64, hidden units 64, dropout 0.2, 1000 training steps.

Runs on the from-scratch :mod:`repro.nn` substrate (no GPU/TensorFlow
in this environment; see DESIGN.md "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .. import nn
from ..lang.corpus import ParallelCorpus
from ..lang.vocabulary import Vocabulary
from ..nn import functional as F
from .base import Sentence, TranslationModel

__all__ = ["NMTConfig", "Seq2SeqTranslator"]


@dataclass(frozen=True)
class NMTConfig:
    """Hyper-parameters of the NMT model.

    Defaults are the paper's published settings; tests and CPU-bound
    benchmarks shrink them.
    """

    embedding_size: int = 64
    hidden_size: int = 64
    num_layers: int = 2
    dropout: float = 0.2
    training_steps: int = 1000
    batch_size: int = 16
    learning_rate: float = 1e-3
    clip_norm: float = 5.0
    seed: int = 0
    recurrent_unit: str = "lstm"
    attention_score: str = "general"

    def __post_init__(self) -> None:
        if self.embedding_size < 1 or self.hidden_size < 1 or self.num_layers < 1:
            raise ValueError("model dimensions must be positive")
        if self.training_steps < 1 or self.batch_size < 1:
            raise ValueError("training_steps and batch_size must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.recurrent_unit not in ("lstm", "gru"):
            raise ValueError(f"recurrent_unit must be 'lstm' or 'gru', got {self.recurrent_unit!r}")
        if self.attention_score not in ("dot", "general", "concat"):
            raise ValueError(f"unknown attention score {self.attention_score!r}")

    @classmethod
    def small(cls, seed: int = 0) -> "NMTConfig":
        """A CPU-friendly configuration for tests and examples."""
        return cls(
            embedding_size=16,
            hidden_size=16,
            num_layers=2,
            dropout=0.1,
            training_steps=120,
            batch_size=8,
            seed=seed,
        )


class Seq2SeqTranslator(TranslationModel):
    """Directional LSTM encoder–decoder with Luong attention."""

    def __init__(self, config: NMTConfig | None = None) -> None:
        super().__init__()
        self.config = config or NMTConfig()
        self.source_vocab: Vocabulary | None = None
        self.target_vocab: Vocabulary | None = None
        self._rng = np.random.default_rng(self.config.seed)
        self.loss_history: list[float] = []
        # Persisted across fit/continue chunks so interrupted training
        # keeps its Adam moments (see trainer._continue_training).
        self._optimizer: nn.Adam | None = None
        # Modules created in fit(), once vocab sizes are known.
        self._encoder_embedding: nn.Embedding | None = None
        self._encoder: nn.LSTM | None = None
        self._decoder_embedding: nn.Embedding | None = None
        self._decoder: nn.LSTM | None = None
        self._attention: nn.LuongAttention | None = None
        self._projection: nn.Linear | None = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        assert self.source_vocab is not None and self.target_vocab is not None
        rng = self._rng
        recurrent = nn.LSTM if cfg.recurrent_unit == "lstm" else nn.GRU
        self._encoder_embedding = nn.Embedding(len(self.source_vocab), cfg.embedding_size, rng=rng)
        self._encoder = recurrent(
            cfg.embedding_size, cfg.hidden_size, cfg.num_layers, dropout=cfg.dropout, rng=rng
        )
        self._decoder_embedding = nn.Embedding(len(self.target_vocab), cfg.embedding_size, rng=rng)
        self._decoder = recurrent(
            cfg.embedding_size, cfg.hidden_size, cfg.num_layers, dropout=cfg.dropout, rng=rng
        )
        self._attention = nn.LuongAttention(cfg.hidden_size, rng=rng, score=cfg.attention_score)
        self._projection = nn.Linear(cfg.hidden_size, len(self.target_vocab), rng=rng)

    def _modules(self) -> list[nn.Module]:
        modules = [
            self._encoder_embedding,
            self._encoder,
            self._decoder_embedding,
            self._decoder,
            self._attention,
            self._projection,
        ]
        assert all(module is not None for module in modules)
        return modules  # type: ignore[return-value]

    def parameters(self) -> list[nn.Parameter]:
        params: list[nn.Parameter] = []
        for module in self._modules():
            params.extend(module.parameters())
        return params

    def _set_training(self, flag: bool) -> None:
        for module in self._modules():
            module.train() if flag else module.eval()

    # ------------------------------------------------------------------
    def _encode_batch(self, sentences: Sequence[Sentence]) -> tuple[np.ndarray, np.ndarray]:
        """Return padded source id matrix and its mask."""
        assert self.source_vocab is not None
        length = max(len(sentence) for sentence in sentences)
        ids = np.full((len(sentences), length), self.source_vocab.pad_id, dtype=np.int64)
        mask = np.zeros((len(sentences), length), dtype=np.float64)
        for row, sentence in enumerate(sentences):
            encoded = self.source_vocab.encode(sentence)
            ids[row, : len(encoded)] = encoded
            mask[row, : len(encoded)] = 1.0
        return ids, mask

    def _target_batch(self, sentences: Sequence[Sentence]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (decoder inputs, decoder targets, mask) with BOS/EOS."""
        assert self.target_vocab is not None
        vocab = self.target_vocab
        length = max(len(sentence) for sentence in sentences) + 1  # room for EOS
        inputs = np.full((len(sentences), length), vocab.pad_id, dtype=np.int64)
        targets = np.full((len(sentences), length), vocab.pad_id, dtype=np.int64)
        mask = np.zeros((len(sentences), length), dtype=np.float64)
        for row, sentence in enumerate(sentences):
            encoded = vocab.encode(sentence, add_eos=True)
            inputs[row, 0] = vocab.bos_id
            inputs[row, 1 : len(encoded)] = encoded[:-1]
            targets[row, : len(encoded)] = encoded
            mask[row, : len(encoded)] = 1.0
        return inputs, targets, mask

    def _run_encoder(self, source_ids: np.ndarray) -> tuple[nn.Tensor, nn.LSTMState]:
        assert self._encoder_embedding is not None and self._encoder is not None
        embedded = self._encoder_embedding(source_ids)
        return self._encoder(embedded)

    def _decode_step(
        self,
        token_ids: np.ndarray,
        state: nn.LSTMState,
        encoder_outputs: nn.Tensor,
        source_mask: np.ndarray,
    ) -> tuple[nn.Tensor, nn.LSTMState]:
        """One decoder step: embed, recur, attend, project to logits."""
        assert (
            self._decoder_embedding is not None
            and self._decoder is not None
            and self._attention is not None
            and self._projection is not None
        )
        embedded = self._decoder_embedding(token_ids)
        hidden, state = self._decoder.step(embedded, state)
        attentional, _ = self._attention(hidden, encoder_outputs, source_mask)
        logits = self._projection(attentional)
        return logits, state

    # ------------------------------------------------------------------
    def fit(self, corpus: ParallelCorpus) -> "Seq2SeqTranslator":
        if len(corpus) == 0:
            raise ValueError("cannot fit on an empty corpus")
        self.source_sensor = corpus.source_sensor
        self.target_sensor = corpus.target_sensor
        self.source_vocab = Vocabulary.from_sentences(corpus.source_sentences)
        self.target_vocab = Vocabulary.from_sentences(corpus.target_sentences)
        self._build()
        self._set_training(True)

        self._optimizer = nn.Adam(self.parameters(), lr=self.config.learning_rate)
        optimizer = self._optimizer
        pairs = corpus.pairs
        batch_size = min(self.config.batch_size, len(pairs))
        self.loss_history = []

        for _ in range(self.config.training_steps):
            chosen = self._rng.choice(len(pairs), size=batch_size, replace=False)
            sources = [pairs[i][0] for i in chosen]
            targets = [pairs[i][1] for i in chosen]

            source_ids, source_mask = self._encode_batch(sources)
            decoder_inputs, decoder_targets, target_mask = self._target_batch(targets)

            encoder_outputs, encoder_state = self._run_encoder(source_ids)
            state = encoder_state
            step_logits: list[nn.Tensor] = []
            for t in range(decoder_inputs.shape[1]):
                logits, state = self._decode_step(
                    decoder_inputs[:, t], state, encoder_outputs, source_mask
                )
                step_logits.append(logits)
            all_logits = nn.Tensor.stack(step_logits, axis=1)
            loss = F.masked_cross_entropy(all_logits, decoder_targets, target_mask)

            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(self.parameters(), self.config.clip_norm)
            optimizer.step()
            self.loss_history.append(loss.item())

        self._set_training(False)
        self.fitted = True
        return self

    # ------------------------------------------------------------------
    # Stable serialization hooks (used by the pipeline artifact store)
    # ------------------------------------------------------------------
    _MODULE_NAMES = (
        "encoder_embedding",
        "encoder",
        "decoder_embedding",
        "decoder",
        "attention",
        "projection",
    )

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat parameter state keyed ``<submodule>.<dotted name>``.

        Keys are stable across processes and library versions (they
        derive from the fixed submodule layout, not object ids), so the
        state can be fingerprinted, stored and reloaded independently
        of pickle.
        """
        self._check_fitted()
        state: dict[str, np.ndarray] = {}
        for name, module in zip(self._MODULE_NAMES, self._modules()):
            for key, values in module.state_dict().items():
                state[f"{name}.{key}"] = values
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict` into a fitted model."""
        self._check_fitted()
        for name, module in zip(self._MODULE_NAMES, self._modules()):
            prefix = f"{name}."
            module.load_state_dict(
                {
                    key[len(prefix):]: values
                    for key, values in state.items()
                    if key.startswith(prefix)
                }
            )

    def weights_digest(self) -> str:
        """Deterministic fingerprint of the fitted weights."""
        from ..nn.serialization import state_digest

        return state_digest(self.state_dict())

    # ------------------------------------------------------------------
    def translate(
        self, source_sentences: Sequence[Sentence], max_length: int | None = None
    ) -> list[Sentence]:
        """Greedy decoding of each source sentence."""
        self._check_fitted()
        assert self.target_vocab is not None
        if not source_sentences:
            return []
        if max_length is None:
            max_length = max(len(sentence) for sentence in source_sentences) + 1
        vocab = self.target_vocab

        with nn.no_grad():
            source_ids, source_mask = self._encode_batch(source_sentences)
            encoder_outputs, state = self._run_encoder(source_ids)
            batch = source_ids.shape[0]
            tokens = np.full(batch, vocab.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            # Emitted words carry the corpus representation: strings on
            # the legacy path, packed integer keys on the columnar path.
            outputs: list[list] = [[] for _ in range(batch)]
            for _ in range(max_length):
                logits, state = self._decode_step(tokens, state, encoder_outputs, source_mask)
                tokens = logits.data.argmax(axis=1)
                for row in range(batch):
                    if finished[row]:
                        continue
                    if tokens[row] == vocab.eos_id:
                        finished[row] = True
                    else:
                        outputs[row].append(vocab.word_of(int(tokens[row])))
                if finished.all():
                    break
        return [tuple(words) for words in outputs]
