"""Factory for translation engines.

The relationship-graph layer is engine-agnostic: any
:class:`~repro.translation.base.TranslationModel` can quantify a pair.
``"seq2seq"`` is the paper's NMT model; ``"ngram"`` is the fast
count-based surrogate used by the full-scale benchmarks (DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from typing import Callable

from .base import TranslationModel
from .ngram import NGramTranslator
from .seq2seq import NMTConfig, Seq2SeqTranslator

__all__ = ["make_translator", "translator_factory", "ENGINES"]

ENGINES = ("seq2seq", "ngram")


def make_translator(engine: str = "ngram", config: NMTConfig | None = None) -> TranslationModel:
    """Instantiate a fresh translator for one directed sensor pair."""
    if engine == "seq2seq":
        return Seq2SeqTranslator(config)
    if engine == "ngram":
        return NGramTranslator()
    raise ValueError(f"unknown translation engine {engine!r}; choose from {ENGINES}")


def translator_factory(
    engine: str = "ngram", config: NMTConfig | None = None
) -> Callable[[], TranslationModel]:
    """Return a zero-argument callable producing fresh translators.

    Algorithm 1 trains one model per directed pair; passing a factory
    instead of an instance keeps pair models independent.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown translation engine {engine!r}; choose from {ENGINES}")
    return lambda: make_translator(engine, config)
