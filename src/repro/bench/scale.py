"""Size-tiered scaling ladder for ingest, training and detection.

Each :class:`ScaleTier` names a plant-log size (sensors × days ×
samples per day) plus its chronological train/dev split.  Running a
tier generates the log, writes it to CSV, then measures four phases:

- ``ingest_resident`` — the in-memory load (whole file decoded at
  once), the residency baseline;
- ``ingest_chunked`` — the same file streamed through
  :func:`repro.datasets.io.iter_event_chunks` and
  :class:`repro.core.EventFrameBuilder`;
- ``fit`` — Algorithm 1 over the tier's training/development days;
- ``detect`` — batch Algorithm 2 over the tier's test days.

Every phase records wall seconds, the Python-heap peak observed by
``tracemalloc`` and events/second; the record also carries the
process-wide ``ru_maxrss`` high-water mark and the frame digest of
both ingest paths, with ``digest_match`` asserting bit-identity.
Records serialise as ``repro-scale-v1`` into ``BENCH_scale.json``
(append-or-replace keyed on ``(tier, chunk_size, seed)``), so scaling
behaviour is tracked across PRs the same way detection quality is
tracked in ``BENCH_scenarios.json``.
"""

from __future__ import annotations

import json
import os
import resource
import tempfile
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..lang.events import MultivariateEventLog
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..pipeline.framework import AnalyticsFramework
from ..scenarios.harness import harness_framework_config

__all__ = [
    "SCALE_SCHEMA",
    "SCALE_TIERS",
    "ScaleTier",
    "append_scale_record",
    "load_scale_bench",
    "run_scale_ladder",
    "run_scale_tier",
]

logger = get_logger(__name__)

SCALE_SCHEMA = "repro-scale-v1"

#: Rows per chunk used by the ladder's chunked-ingest phase.
DEFAULT_SCALE_CHUNK = 256


@dataclass(frozen=True)
class ScaleTier:
    """One rung of the ladder: a plant-log size and its split."""

    name: str
    num_sensors: int
    days: int
    samples_per_day: int
    train_days: int
    dev_days: int
    num_components: int
    seed: int = 7

    def __post_init__(self) -> None:
        if self.train_days + self.dev_days >= self.days:
            raise ValueError(
                f"tier {self.name!r}: train+dev days "
                f"({self.train_days}+{self.dev_days}) leave no test days "
                f"of {self.days}"
            )

    @property
    def total_samples(self) -> int:
        return self.days * self.samples_per_day

    @property
    def total_events(self) -> int:
        """Cells in the event matrix — the unit of throughput."""
        return self.num_sensors * self.total_samples

    def plant_config(self, seed: int | None = None):
        """The tier as a :class:`~repro.datasets.plant.PlantConfig`.

        Anomalies land on the last day and precursors on the one
        before, so every tier's test period contains ground truth.
        """
        from ..datasets.plant import PlantConfig

        return PlantConfig(
            num_sensors=self.num_sensors,
            days=self.days,
            samples_per_day=self.samples_per_day,
            anomaly_days=(self.days,),
            precursor_days=(self.days - 1,),
            num_components=self.num_components,
            seed=self.seed if seed is None else seed,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_sensors": self.num_sensors,
            "days": self.days,
            "samples_per_day": self.samples_per_day,
            "train_days": self.train_days,
            "dev_days": self.dev_days,
            "num_components": self.num_components,
        }


#: The ladder, smallest to largest.  Sized so the full ladder stays
#: CPU-friendly (the large tier is ~110k events) while each rung is
#: roughly 3-5x the previous one, enough spread to expose super-linear
#: scaling in any phase.
SCALE_TIERS: dict[str, ScaleTier] = {
    tier.name: tier
    for tier in (
        ScaleTier("tiny", num_sensors=8, days=6, samples_per_day=48,
                  train_days=2, dev_days=1, num_components=3),
        ScaleTier("small", num_sensors=12, days=10, samples_per_day=96,
                  train_days=3, dev_days=2, num_components=4),
        ScaleTier("medium", num_sensors=16, days=15, samples_per_day=144,
                  train_days=5, dev_days=3, num_components=4),
        ScaleTier("large", num_sensors=24, days=24, samples_per_day=192,
                  train_days=8, dev_days=4, num_components=6),
    )
}


def _measure(task: Callable[[], object]) -> tuple[object, float, int]:
    """Run ``task`` returning ``(result, wall seconds, heap peak bytes)``.

    The peak is ``tracemalloc``'s traced high-water mark for the call
    alone (the tracer starts and stops around it), covering Python
    objects and NumPy buffers but not untraced C allocations —
    ``ru_maxrss`` in the tier record covers the whole process.
    """
    tracemalloc.start()
    try:
        watch = Stopwatch()
        result = task()
        seconds = watch.elapsed
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, seconds, peak


def _phase_dict(seconds: float, peak: int, events: int) -> dict:
    return {
        "seconds": seconds,
        "peak_bytes": int(peak),
        "events_per_second": (events / seconds) if seconds > 0 else None,
    }


def run_scale_tier(
    tier: "ScaleTier | str",
    chunk_size: int = DEFAULT_SCALE_CHUNK,
    seed: int | None = None,
    workdir: "str | Path | None" = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Run one rung: generate, ingest twice, fit, detect; return the record.

    ``workdir`` receives the tier's ``events-<tier>.csv`` (a temporary
    directory is used and cleaned up when omitted); ``seed`` overrides
    the tier's generator seed.  Raises ``RuntimeError`` if the chunked
    and resident ingest digests ever diverge — the ladder doubles as
    the bit-identity regression check.
    """
    from ..datasets.plant import generate_plant_dataset

    if isinstance(tier, str):
        try:
            tier = SCALE_TIERS[tier]
        except KeyError:
            raise KeyError(
                f"unknown scale tier {tier!r}; choose from {sorted(SCALE_TIERS)}"
            ) from None
    config = tier.plant_config(seed)

    cleanup: tempfile.TemporaryDirectory | None = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix=f"repro-scale-{tier.name}-")
        workdir = cleanup.name
    try:
        directory = Path(workdir)
        directory.mkdir(parents=True, exist_ok=True)
        dataset = generate_plant_dataset(config)
        csv_path = directory / f"events-{tier.name}.csv"
        dataset.log.to_csv(csv_path)
        del dataset  # only the CSV feeds the measured phases

        logger.info(
            "scale tier %s: %d sensors x %d samples (%d events), chunk_size=%d",
            tier.name, tier.num_sensors, tier.total_samples,
            tier.total_events, chunk_size,
        )

        resident_log, resident_seconds, resident_peak = _measure(
            lambda: MultivariateEventLog.from_csv(csv_path)
        )
        resident_digest = resident_log.frame.digest()
        del resident_log  # free the baseline before the chunked pass

        chunked_log, chunked_seconds, chunked_peak = _measure(
            lambda: MultivariateEventLog.from_csv(csv_path, chunk_size=chunk_size)
        )
        chunked_digest = chunked_log.frame.digest()
        if chunked_digest != resident_digest:
            raise RuntimeError(
                f"scale tier {tier.name!r}: chunked ingest digest "
                f"{chunked_digest} != resident digest {resident_digest}"
            )

        per_day = tier.samples_per_day
        train = chunked_log.slice(0, tier.train_days * per_day)
        dev = chunked_log.slice(
            tier.train_days * per_day, (tier.train_days + tier.dev_days) * per_day
        )
        test = chunked_log.slice(
            (tier.train_days + tier.dev_days) * per_day, tier.total_samples
        )

        framework = AnalyticsFramework(harness_framework_config())
        _, fit_seconds, fit_peak = _measure(lambda: framework.fit(train, dev))
        result, detect_seconds, detect_peak = _measure(lambda: framework.detect(test))
        if metrics is not None:
            metrics.merge(framework.metrics)
            metrics.counter("bench.scale_tiers").inc()
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    train_events = tier.num_sensors * train.num_samples
    test_events = tier.num_sensors * test.num_samples
    record = {
        "schema": SCALE_SCHEMA,
        "tier": tier.name,
        "chunk_size": chunk_size,
        "seed": config.seed,
        "params": tier.to_dict(),
        "total_events": tier.total_events,
        "digest": chunked_digest,
        "digest_match": True,
        "phases": {
            "ingest_resident": _phase_dict(
                resident_seconds, resident_peak, tier.total_events
            ),
            "ingest_chunked": _phase_dict(
                chunked_seconds, chunked_peak, tier.total_events
            ),
            "fit": _phase_dict(fit_seconds, fit_peak, train_events),
            "detect": _phase_dict(detect_seconds, detect_peak, test_events),
        },
        "num_windows": int(result.anomaly_scores.shape[0]),
        "ru_maxrss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    }
    logger.info(
        "scale tier %s: ingest chunked %.0f bytes peak vs resident %.0f "
        "(%.1f%%), fit %.2fs, detect %.2fs",
        tier.name, chunked_peak, resident_peak,
        100.0 * chunked_peak / resident_peak if resident_peak else 0.0,
        fit_seconds, detect_seconds,
    )
    return record


def run_scale_ladder(
    tiers: Sequence[str] | None = None,
    chunk_size: int = DEFAULT_SCALE_CHUNK,
    seed: int | None = None,
    bench_path: "str | Path | None" = None,
    metrics: MetricsRegistry | None = None,
) -> list[dict]:
    """Run several rungs, logging each record as it completes.

    ``tiers=None`` runs the whole ladder smallest-first; with
    ``bench_path`` each record is appended (or replaced, keyed on
    ``(tier, chunk_size, seed)``) so an interrupted ladder keeps its
    finished rungs.
    """
    names = list(tiers) if tiers is not None else list(SCALE_TIERS)
    unknown = [name for name in names if name not in SCALE_TIERS]
    if unknown:
        raise KeyError(
            f"unknown scale tiers {unknown}; choose from {sorted(SCALE_TIERS)}"
        )
    records: list[dict] = []
    for name in names:
        record = run_scale_tier(
            name, chunk_size=chunk_size, seed=seed, metrics=metrics
        )
        records.append(record)
        if bench_path is not None:
            append_scale_record(record, bench_path)
    return records


# ----------------------------------------------------------------------
# Benchmark log (BENCH_scale.json)
# ----------------------------------------------------------------------
def load_scale_bench(path: "str | Path") -> dict:
    """Read a scale benchmark file, or an empty shell when missing."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCALE_SCHEMA, "records": []}
    payload = json.loads(path.read_text())
    if payload.get("schema") != SCALE_SCHEMA:
        raise ValueError(
            f"{path} carries schema {payload.get('schema')!r}, "
            f"expected {SCALE_SCHEMA!r}"
        )
    return payload


def append_scale_record(record: dict, path: "str | Path") -> dict:
    """Append-or-replace one record keyed by ``(tier, chunk_size, seed)``.

    The write is atomic (temp file + rename), matching the scenario
    benchmark log's crash behaviour.
    """
    path = Path(path)
    payload = load_scale_bench(path)
    key = (record["tier"], record["chunk_size"], record["seed"])
    payload["records"] = [
        existing
        for existing in payload["records"]
        if (existing["tier"], existing["chunk_size"], existing["seed"]) != key
    ] + [record]
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return payload
