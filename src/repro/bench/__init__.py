"""Scaling benchmarks: how the system behaves as the data grows.

:mod:`repro.bench.scale` runs the size-tiered ladder — generate a
plant log of a tier's size, ingest it both chunked and fully resident,
fit the framework, and detect — recording wall seconds, Python-heap
peaks and per-stage event throughput as ``repro-scale-v1`` records in
``BENCH_scale.json``.  The ladder is the regression harness for the
chunked streaming ingest core: every run re-asserts that chunked and
in-memory ingest produce bit-identical frame digests and that chunked
ingest peaks below full-log residency.

:mod:`repro.bench.online` measures the serving path: multi-tenant
chunk streams through the sharded
:class:`~repro.service.StreamingDetectionService`, swept across shard
counts, recording events/second and p99 ingest-to-emit window latency
as ``repro-online-v1`` records in ``BENCH_online.json`` — with every
record also asserting a fully cached warm start and exact merged-feed
parity against batch detection.
"""

from .online import (
    DEFAULT_SHARD_COUNTS,
    ONLINE_SCHEMA,
    append_online_record,
    load_online_bench,
    run_online_bench,
)
from .scale import (
    SCALE_SCHEMA,
    SCALE_TIERS,
    ScaleTier,
    append_scale_record,
    load_scale_bench,
    run_scale_ladder,
    run_scale_tier,
)

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "ONLINE_SCHEMA",
    "SCALE_SCHEMA",
    "SCALE_TIERS",
    "ScaleTier",
    "append_online_record",
    "append_scale_record",
    "load_online_bench",
    "load_scale_bench",
    "run_online_bench",
    "run_scale_ladder",
    "run_scale_tier",
]
