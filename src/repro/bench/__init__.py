"""Scaling benchmarks: how the system behaves as the data grows.

:mod:`repro.bench.scale` runs the size-tiered ladder — generate a
plant log of a tier's size, ingest it both chunked and fully resident,
fit the framework, and detect — recording wall seconds, Python-heap
peaks and per-stage event throughput as ``repro-scale-v1`` records in
``BENCH_scale.json``.  The ladder is the regression harness for the
chunked streaming ingest core: every run re-asserts that chunked and
in-memory ingest produce bit-identical frame digests and that chunked
ingest peaks below full-log residency.
"""

from .scale import (
    SCALE_SCHEMA,
    SCALE_TIERS,
    ScaleTier,
    append_scale_record,
    load_scale_bench,
    run_scale_ladder,
    run_scale_tier,
)

__all__ = [
    "SCALE_SCHEMA",
    "SCALE_TIERS",
    "ScaleTier",
    "append_scale_record",
    "load_scale_bench",
    "run_scale_ladder",
    "run_scale_tier",
]
