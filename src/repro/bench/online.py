"""Streaming-service throughput and latency benchmark.

Measures the serving path the batch ladder in :mod:`repro.bench.scale`
cannot see: chunks flowing through the sharded
:class:`~repro.service.StreamingDetectionService`.  One run fits a
scenario model cold into a content-addressed artifact store, proves the
service's warm start rebuilds it without retraining a single pair, then
drives the same multi-tenant chunk stream through the service at each
requested shard count, recording

- ``events_per_second`` — total event cells ingested over wall time;
- ``p99_latency_seconds`` (and p50) — ingest-to-emit window latency
  from each :class:`~repro.service.FleetWindow`;
- ``parity`` — every tenant's merged-feed subsequence compared
  window-for-window against the batch
  :class:`~repro.detection.AnomalyDetector` on the same log.

Records serialise as ``repro-online-v1`` into ``BENCH_online.json``
(append-or-replace keyed on ``(shards, tenants, seed)``), mirroring the
other benchmark logs.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

import numpy as np

from ..detection.anomaly import AnomalyDetector
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..pipeline.artifacts import ArtifactStore
from ..pipeline.framework import AnalyticsFramework
from ..scenarios import generate_scenario, harness_framework_config
from ..service import StreamingDetectionService, warm_start_graph

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "ONLINE_SCHEMA",
    "append_online_record",
    "load_online_bench",
    "run_online_bench",
]

logger = get_logger(__name__)

ONLINE_SCHEMA = "repro-online-v1"

#: Shard counts swept by default — enough to show the scaling shape.
DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)

#: Samples per submitted chunk.
DEFAULT_ONLINE_CHUNK = 32


def _chunks(test, chunk_size: int):
    """The test log as a list of ``{sensor: column}`` blocks."""
    blocks = []
    for start in range(0, test.num_samples, chunk_size):
        stop = min(start + chunk_size, test.num_samples)
        blocks.append(
            {name: test[name].events[start:stop] for name in test.sensors}
        )
    return blocks


def _check_parity(service, tenants, batch) -> bool:
    """Every tenant's feed must equal the batch scores window-for-window."""
    feed = service.merged_feed()
    expected = batch.anomaly_scores
    for tenant in tenants:
        windows = [fw.window for fw in feed if fw.tenant == tenant]
        if len(windows) != len(expected):
            return False
        for window in windows:
            if window.window_index >= len(expected):
                return False
            if abs(window.anomaly_score - expected[window.window_index]) > 1e-12:
                return False
            if set(window.broken_pairs) != set(
                batch.broken_pairs(window.window_index)
            ):
                return False
    return True


def run_online_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    num_tenants: int = 4,
    scenario: str = "cascade",
    tier: str = "tiny",
    seed: int = 11,
    chunk_size: int = DEFAULT_ONLINE_CHUNK,
    queue_depth: int = 16,
    backpressure: str = "block",
    bench_path: "str | Path | None" = None,
    metrics: MetricsRegistry | None = None,
) -> list[dict]:
    """Sweep the service over shard counts; return one record per count.

    All shard counts replay the *same* streams: ``num_tenants`` copies
    of the scenario's test log, chunked ``chunk_size`` samples at a
    time, against one pooled graph — so throughput differences isolate
    the sharding, not the workload.  Each record also proves two
    service invariants: ``warm_start.trained == 0`` (the serving graph
    came entirely from the artifact cache) and ``parity`` (the merged
    feed matches batch detection exactly).
    """
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
    data = generate_scenario(scenario, tier=tier, seed=seed)
    train, dev, test, _ = data.split()
    tenants = [f"tenant-{index:02d}" for index in range(num_tenants)]
    blocks = _chunks(test, chunk_size)
    total_events = len(test.sensors) * test.num_samples * num_tenants

    with tempfile.TemporaryDirectory(prefix="repro-online-bench-") as cache:
        store = ArtifactStore(cache)
        config = harness_framework_config()
        cold = AnalyticsFramework(config).fit(train, dev, cache_dir=store)
        cold_report = cold.build_report.to_dict()
        del cold  # the service must stand on the warm-started graph alone

        warm_watch = Stopwatch()
        graph = warm_start_graph(config, train, dev, store)
        warm_seconds = warm_watch.elapsed
    warm_report = graph.build_report.to_dict()
    if warm_report["trained"]:
        raise RuntimeError(
            f"warm start retrained {warm_report['trained']} pair(s); "
            "the artifact cache should have served every model"
        )
    batch = AnomalyDetector(graph).detect(test)

    records: list[dict] = []
    for shards in shard_counts:
        registry = MetricsRegistry()
        service = StreamingDetectionService(
            graph,
            tenants,
            num_shards=int(shards),
            queue_depth=queue_depth,
            backpressure=backpressure,
            metrics=registry,
        )
        watch = Stopwatch()
        for block in blocks:
            for tenant in tenants:
                service.submit(tenant, block)
        service.join()
        seconds = watch.elapsed
        feed = service.merged_feed()
        parity = _check_parity(service, tenants, batch)
        service.close()
        if metrics is not None:
            metrics.merge(registry)
            metrics.counter("bench.online_runs").inc()

        latencies = np.array([fw.latency_seconds for fw in feed])
        record = {
            "schema": ONLINE_SCHEMA,
            "shards": int(shards),
            "tenants": num_tenants,
            "seed": seed,
            "scenario": scenario,
            "tier": tier,
            "chunk_size": chunk_size,
            "queue_depth": queue_depth,
            "backpressure": backpressure,
            "total_events": total_events,
            "windows": len(feed),
            "seconds": seconds,
            "events_per_second": (total_events / seconds) if seconds > 0 else None,
            "p50_latency_seconds": float(np.percentile(latencies, 50))
            if len(latencies)
            else None,
            "p99_latency_seconds": float(np.percentile(latencies, 99))
            if len(latencies)
            else None,
            "parity": parity,
            "warm_start": {
                "seconds": warm_seconds,
                "trained": warm_report["trained"],
                "cached": warm_report["cached"],
                "cold_trained": cold_report["trained"],
            },
        }
        records.append(record)
        logger.info(
            "online bench: %d shard(s), %d tenant(s): %.0f events/s, "
            "p99 latency %.4fs, parity=%s",
            shards,
            num_tenants,
            record["events_per_second"] or 0.0,
            record["p99_latency_seconds"] or 0.0,
            parity,
        )
        if bench_path is not None:
            append_online_record(record, bench_path)
    return records


# ----------------------------------------------------------------------
# Benchmark log (BENCH_online.json)
# ----------------------------------------------------------------------
def load_online_bench(path: "str | Path") -> dict:
    """Read an online benchmark file, or an empty shell when missing."""
    path = Path(path)
    if not path.exists():
        return {"schema": ONLINE_SCHEMA, "records": []}
    payload = json.loads(path.read_text())
    if payload.get("schema") != ONLINE_SCHEMA:
        raise ValueError(
            f"{path} carries schema {payload.get('schema')!r}, "
            f"expected {ONLINE_SCHEMA!r}"
        )
    return payload


def append_online_record(record: dict, path: "str | Path") -> dict:
    """Append-or-replace one record keyed by ``(shards, tenants, seed)``.

    Atomic (temp file + rename), like the other benchmark logs.
    """
    path = Path(path)
    payload = load_online_bench(path)
    key = (record["shards"], record["tenants"], record["seed"])
    payload["records"] = [
        existing
        for existing in payload["records"]
        if (existing["shards"], existing["tenants"], existing["seed"]) != key
    ] + [record]
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return payload
