"""ASCII rendering of anomaly-score timelines (Figure 8 style)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_timeline", "render_bar"]


def render_bar(value: float, width: int = 30, fill: str = "#") -> str:
    """A fixed-width bar for a value in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"value must be in [0, 1], got {value}")
    return (fill * int(round(width * value))).ljust(width)


def render_timeline(
    scores: Mapping[int, float],
    labels: Mapping[int, str] | None = None,
    width: int = 30,
    key_name: str = "day",
) -> str:
    """Render keyed scores as an aligned bar chart.

    Parameters
    ----------
    scores:
        Key (day/window index) → score in [0, 1].
    labels:
        Optional key → annotation (e.g. ``"ANOMALY"``).
    width:
        Bar width in characters.
    key_name:
        Row prefix (``day`` or ``window``).
    """
    labels = labels or {}
    lines = []
    for key in sorted(scores):
        score = scores[key]
        annotation = labels.get(key, "")
        lines.append(
            f"{key_name} {key:>3}: {score:4.2f} {render_bar(score, width)} {annotation}".rstrip()
        )
    return "\n".join(lines)
