"""Reporting helpers: figure data series and text tables."""

from .series import cdf_at, cdf_series, histogram_series
from .tables import ascii_table, format_row
from .timeline import render_bar, render_timeline

__all__ = [
    "ascii_table",
    "cdf_at",
    "cdf_series",
    "format_row",
    "histogram_series",
    "render_bar",
    "render_timeline",
]
