"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_table", "format_row"]


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """Join cells with ``|`` separators, left-padded to column widths."""
    return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def ascii_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render dict rows as an aligned text table.

    Column order follows the first row's key order; missing cells
    render empty.  Benchmarks print these tables so the paper's tables
    can be compared side by side with the reproduction.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    matrix = [[str(row.get(column, "")) for column in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[index]) for line in matrix))
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers, widths))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(line, widths) for line in matrix)
    return "\n".join(lines)
