"""Numeric series builders for the paper's figures (CDFs, histograms)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["cdf_series", "histogram_series", "cdf_at"]


def cdf_series(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as ``(sorted values, cumulative fractions)``.

    The returned series reproduces the paper's CDF plots (Figures 3,
    4a, 5) as data rather than images.
    """
    array = np.asarray(sorted(values), dtype=np.float64)
    if array.size == 0:
        return array, array
    fractions = np.arange(1, array.size + 1, dtype=np.float64) / array.size
    return array, fractions


def cdf_at(values: Sequence[float], point: float) -> float:
    """Fraction of values <= ``point``."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float((array <= point).mean())


def histogram_series(
    values: Sequence[float],
    bins: "int | Sequence[float]" = 10,
    value_range: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram as ``(bin edges, counts)`` (Figure 4b's BLEU histogram)."""
    counts, edges = np.histogram(np.asarray(values, dtype=np.float64), bins=bins, range=value_range)
    return edges, counts
