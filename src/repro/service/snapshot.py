"""Service snapshot files (``repro-service-snapshot-v1``).

A snapshot directory holds one JSON file per shard (the per-tenant
detector state dicts) plus a ``manifest.json`` naming the schema, the
router, the tenant → shard placement, each tenant's stream fingerprint
and the shard files.  Every file is written atomically (temp file +
rename) and the manifest is written *last*, so a crash mid-snapshot
leaves either the previous complete snapshot or none — never a torn
one: :func:`read_snapshot` trusts only what the manifest names.

The format is deliberately plain JSON: detector state is integer code
buffers and three clocks (see
:meth:`repro.detection.OnlineAnomalyDetector.state_dict`), so snapshots
stay inspectable with a text editor and diffable in version control.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

__all__ = [
    "MANIFEST_NAME",
    "SERVICE_SNAPSHOT_SCHEMA",
    "has_snapshot",
    "read_snapshot",
    "write_snapshot",
]

#: Format tag embedded in the manifest and every shard file.
SERVICE_SNAPSHOT_SCHEMA = "repro-service-snapshot-v1"

#: The snapshot's commit point; written last, read first.
MANIFEST_NAME = "manifest.json"


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise


def has_snapshot(directory: "str | Path") -> bool:
    """Whether ``directory`` holds a committed service snapshot."""
    return (Path(directory) / MANIFEST_NAME).is_file()


def write_snapshot(
    directory: "str | Path",
    manifest: Mapping,
    shard_states: Mapping[int, Mapping],
) -> Path:
    """Write shard states then commit the manifest; returns the directory.

    ``manifest`` carries service-level fields (router, tenants,
    fingerprints); the schema tag and the shard-file index are added
    here.  Shard files land first so the manifest — the commit point —
    never names a file that does not exist.
    """
    directory = Path(directory)
    shard_files: dict[str, str] = {}
    for shard_id, state in sorted(shard_states.items()):
        name = f"shard-{int(shard_id):04d}.json"
        _atomic_write_json(
            directory / name,
            {"schema": SERVICE_SNAPSHOT_SCHEMA, **dict(state)},
        )
        shard_files[str(int(shard_id))] = name
    payload = {
        "schema": SERVICE_SNAPSHOT_SCHEMA,
        **dict(manifest),
        "shard_files": shard_files,
    }
    _atomic_write_json(directory / MANIFEST_NAME, payload)
    return directory


def read_snapshot(directory: "str | Path") -> tuple[dict, dict[int, dict]]:
    """Load ``(manifest, {shard_id: state})`` from a snapshot directory.

    Raises ``FileNotFoundError`` when no manifest is committed and
    ``ValueError`` on schema mismatches or missing shard files.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no service snapshot committed in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("schema") != SERVICE_SNAPSHOT_SCHEMA:
        raise ValueError(
            f"{manifest_path} carries schema {manifest.get('schema')!r}, "
            f"expected {SERVICE_SNAPSHOT_SCHEMA!r}"
        )
    shard_states: dict[int, dict] = {}
    for shard_id, name in dict(manifest.get("shard_files", {})).items():
        shard_path = directory / name
        if not shard_path.is_file():
            raise ValueError(
                f"snapshot manifest names missing shard file {name!r}"
            )
        state = json.loads(shard_path.read_text(encoding="utf-8"))
        if state.get("schema") != SERVICE_SNAPSHOT_SCHEMA:
            raise ValueError(
                f"{shard_path} carries schema {state.get('schema')!r}, "
                f"expected {SERVICE_SNAPSHOT_SCHEMA!r}"
            )
        shard_states[int(shard_id)] = state
    return manifest, shard_states
