"""Fleet-level streaming detection.

:class:`StreamingDetectionService` is the tentpole assembly: a
:class:`~repro.service.router.ShardRouter` places tenant streams onto
shards, each :class:`~repro.service.shard.DetectorShard` scores its
tenants on a worker thread, and every emitted window lands in one
merged fleet feed with shard/tenant identity attached.

Two model layouts are supported:

- **Pooled fleet model** — pass one trained graph; every shard serves
  tenants against the same object.  Translation models are read-only
  after fitting, so sharing is thread-safe and costs no extra memory
  (the paper's single-plant model watching many production lines).
- **Per-shard models** — pass a sequence/mapping of graphs, one per
  shard (e.g. one model per drive cohort in the Backblaze setting).

The merged feed has two views.  :meth:`StreamingDetectionService.poll`
drains windows in completion order — the live view a dashboard tails.
:meth:`StreamingDetectionService.merged_feed` waits for quiescence and
returns the whole feed in canonical stream order
``(start_sample, window_index, shard_id, tenant)``, which is
deterministic regardless of thread interleaving — the view tests and
the parity benchmark compare against batch detection.
"""

from __future__ import annotations

import queue as _queue_module
import threading
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import DETECTION_RANGE, ScoreRange
from ..obs import MetricsRegistry, get_logger
from .router import ShardRouter
from .shard import DEFAULT_QUEUE_DEPTH, DetectorShard, FleetWindow
from .snapshot import read_snapshot, write_snapshot

__all__ = ["StreamingDetectionService", "warm_start_graph"]

logger = get_logger(__name__)


def warm_start_graph(
    config,
    training_log,
    development_log,
    store,
) -> MultivariateRelationshipGraph:
    """Rebuild a service's graph from the artifact cache.

    A restarting service must not retrain its pair models from scratch:
    with the content-addressed :class:`~repro.pipeline.artifacts.ArtifactStore`
    a re-``fit`` over unchanged logs resolves every pair from cache
    (``build_report.cached == pairs``, ``trained == 0``), so warm-up
    cost is deserialisation, not training.  Returns the rebuilt graph.
    """
    from ..pipeline.framework import AnalyticsFramework

    framework = AnalyticsFramework(config).fit(
        training_log, development_log, cache_dir=store
    )
    report = framework.build_report
    if report is not None and report.num_trained:
        logger.warning(
            "warm start trained %d pair(s) from scratch (cache miss); "
            "expected a fully cached rebuild",
            report.num_trained,
            extra={
                "trained": report.num_trained,
                "cached": len(report.cached),
            },
        )
    return framework.graph


class StreamingDetectionService:
    """Sharded, multi-tenant online detection with one merged feed.

    Parameters
    ----------
    graph:
        One trained graph (replicated across shards — the pooled fleet
        model), or a sequence of ``num_shards`` graphs, or a
        ``{shard_id: graph}`` mapping.
    tenants:
        Stream keys to serve (sensor groups, drive serials).  Each is
        routed to a shard and given its own online detector.
    num_shards, router:
        Either a shard count (a fresh stable-hash router is built) or a
        pre-configured :class:`ShardRouter`; a router wins when both are
        given and must agree with the graphs' shard count.
    queue_depth, backpressure:
        Per-shard ingest queue bound and full-queue policy, forwarded
        to :class:`DetectorShard`.
    score_range, threshold, quantile, margin:
        Detector configuration, forwarded to every tenant's
        :class:`~repro.detection.OnlineAnomalyDetector`.
    metrics:
        Shared registry for ``online.*`` and ``service.*`` series; a
        private one is created when omitted.
    autostart:
        Start the shard worker threads immediately (default).  Pass
        ``False`` to restore a snapshot before the first sample.
    """

    def __init__(
        self,
        graph: "MultivariateRelationshipGraph | Sequence | Mapping",
        tenants: Iterable[str],
        *,
        num_shards: int = 1,
        router: ShardRouter | None = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        backpressure: str = "block",
        score_range: ScoreRange = DETECTION_RANGE,
        threshold: str = "dev-quantile",
        quantile: float = 0.05,
        margin: float = 0.0,
        metrics: MetricsRegistry | None = None,
        autostart: bool = True,
    ) -> None:
        self.router = router if router is not None else ShardRouter(num_shards)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        graphs = self._resolve_graphs(graph, self.router.num_shards)
        self.tenants = [str(tenant) for tenant in tenants]
        if len(set(self.tenants)) != len(self.tenants):
            raise ValueError(f"duplicate tenant keys: {self.tenants}")
        if not self.tenants:
            raise ValueError("a service needs at least one tenant stream")
        self._feed: "_queue_module.SimpleQueue[FleetWindow]" = (
            _queue_module.SimpleQueue()
        )
        self._feed_lock = threading.Lock()
        self._drained: list[FleetWindow] = []
        self.shards: dict[int, DetectorShard] = {
            shard_id: DetectorShard(
                shard_id,
                graphs[shard_id],
                score_range=score_range,
                threshold=threshold,
                quantile=quantile,
                margin=margin,
                queue_depth=queue_depth,
                backpressure=backpressure,
                emit=self._feed.put,
                metrics=self.metrics,
            )
            for shard_id in range(self.router.num_shards)
        }
        self.placement = self.router.partition(self.tenants)
        for shard_id, keys in self.placement.items():
            for tenant in keys:
                self.shards[shard_id].add_tenant(tenant)
        self.metrics.gauge("service.shards").set(len(self.shards))
        self.metrics.gauge("service.tenants").set(len(self.tenants))
        for name in ("service.dropped", "service.errors", "service.windows_emitted"):
            self.metrics.counter(name)
        self._closed = False
        if autostart:
            self.start()

    @staticmethod
    def _resolve_graphs(graph, num_shards: int) -> dict[int, MultivariateRelationshipGraph]:
        if isinstance(graph, MultivariateRelationshipGraph):
            return {shard: graph for shard in range(num_shards)}
        if isinstance(graph, Mapping):
            graphs = {int(shard): g for shard, g in graph.items()}
        else:
            graphs = {shard: g for shard, g in enumerate(graph)}
        if sorted(graphs) != list(range(num_shards)):
            raise ValueError(
                f"need one graph per shard 0..{num_shards - 1}, "
                f"got shard ids {sorted(graphs)}"
            )
        return graphs

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every shard's worker thread (idempotent)."""
        if self._closed:
            raise RuntimeError("service is closed")
        for shard in self.shards.values():
            shard.start()

    @property
    def running(self) -> bool:
        """Whether every shard worker is alive."""
        return all(shard.running for shard in self.shards.values())

    def submit(self, tenant: str, chunk: "Mapping[str, Sequence[str]]") -> bool:
        """Route one chunk to its tenant's shard; returns acceptance.

        ``False`` only under ``"reject"`` backpressure with that shard's
        queue full (the chunk was dropped and counted under
        ``service.dropped``).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        return self.shards[self.router.shard_of(tenant)].submit(tenant, chunk)

    def join(self) -> None:
        """Block until every accepted chunk has been scored."""
        for shard in self.shards.values():
            shard.join()

    def close(self) -> None:
        """Drain outstanding work and stop all shard workers (idempotent)."""
        for shard in self.shards.values():
            shard.stop()
        self._closed = True

    def __enter__(self) -> "StreamingDetectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Merged fleet feed
    # ------------------------------------------------------------------
    def poll(self) -> list[FleetWindow]:
        """Drain newly emitted windows in completion order (the live view).

        Completion order interleaves shards as their workers finish
        windows; it is *not* deterministic across runs.  Use
        :meth:`merged_feed` for the canonical ordering.
        """
        drained: list[FleetWindow] = []
        while True:
            try:
                drained.append(self._feed.get_nowait())
            except _queue_module.Empty:
                break
        with self._feed_lock:
            self._drained.extend(drained)
        return drained

    def merged_feed(self) -> list[FleetWindow]:
        """The full fleet feed in canonical stream order.

        Waits for quiescence (:meth:`join`), then returns every window
        emitted so far — including those already seen via :meth:`poll`
        — sorted by ``(start_sample, window_index, shard_id, tenant)``.
        The ordering is a pure function of the submitted streams, so
        two runs over the same chunks produce identical feeds no matter
        how the shard threads interleaved.
        """
        self.join()
        self.poll()
        with self._feed_lock:
            feed = list(self._drained)
        feed.sort(
            key=lambda fw: (
                fw.window.start_sample,
                fw.window.window_index,
                fw.shard_id,
                fw.tenant,
            )
        )
        return feed

    def feed_for(self, tenant: str) -> "list[FleetWindow]":
        """One tenant's subsequence of :meth:`merged_feed`, stream-ordered."""
        return [fw for fw in self.merged_feed() if fw.tenant == tenant]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_samples(self) -> dict[str, int]:
        """Residual buffered samples per tenant across the fleet."""
        pending: dict[str, int] = {}
        for shard in self.shards.values():
            pending.update(shard.pending_samples())
        return pending

    def flush(self) -> dict[str, int]:
        """Discard every tenant's residual tail; call on a quiescent service.

        Returns ``{tenant: samples_dropped}`` for tenants that had a
        tail (see :meth:`~repro.detection.OnlineAnomalyDetector.flush`).
        """
        self.join()
        dropped: dict[str, int] = {}
        for shard in self.shards.values():
            for tenant, detector in shard.detectors.items():
                count = detector.flush()
                if count:
                    dropped[tenant] = count
        return dropped

    @property
    def errors(self) -> dict[str, BaseException]:
        """Quarantined tenants and the error that poisoned each."""
        merged: dict[str, BaseException] = {}
        for shard in self.shards.values():
            merged.update(shard.errors)
        return merged

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, directory: "str | Path") -> Path:
        """Write a ``repro-service-snapshot-v1`` directory; returns it.

        The service is joined first so no accepted chunk is half-scored;
        the snapshot then captures every tenant's exact stream position.
        """
        self.join()
        manifest = {
            "router": self.router.to_dict(),
            "tenants": {
                tenant: self.router.shard_of(tenant) for tenant in self.tenants
            },
            "fingerprints": {
                tenant: detector.stream_fingerprint()
                for shard in self.shards.values()
                for tenant, detector in shard.detectors.items()
            },
        }
        states = {
            shard_id: shard.snapshot_state()
            for shard_id, shard in self.shards.items()
        }
        return write_snapshot(directory, manifest, states)

    def restore(self, directory: "str | Path") -> None:
        """Load a snapshot onto this service, resuming every stream.

        Restore is *tenant-keyed*: each tenant's state is delivered to
        whichever shard serves it now, so a service restarted with a
        different shard count still resumes every stream exactly — the
        shard layout is an execution detail, not part of stream state.
        Tenants present here but absent from the snapshot start fresh;
        snapshot tenants this service does not serve raise.
        """
        manifest, shard_states = read_snapshot(directory)
        tenant_states: dict[str, Mapping] = {}
        for state in shard_states.values():
            tenant_states.update(dict(state.get("tenants", {})))
        unknown = sorted(set(tenant_states) - set(self.tenants))
        if unknown:
            raise ValueError(
                f"snapshot contains tenants this service does not serve: "
                f"{unknown}"
            )
        for tenant, tenant_state in tenant_states.items():
            shard = self.shards[self.router.shard_of(tenant)]
            shard.detectors[tenant].load_state_dict(tenant_state)
        logger.info(
            "restored %d tenant stream(s) from %s",
            len(tenant_states),
            directory,
            extra={"tenants": len(tenant_states)},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingDetectionService({len(self.shards)} shard(s), "
            f"{len(self.tenants)} tenant(s))"
        )
