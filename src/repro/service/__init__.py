"""Sharded streaming detection service.

Promotes :class:`~repro.detection.OnlineAnomalyDetector` from a library
class to a long-running, multi-tenant service: a :class:`ShardRouter`
partitions tenant streams (sensor groups, drives) across shards, each
:class:`DetectorShard` owns one relationship graph plus the online
detectors of its tenants and drains a bounded ingest queue on its own
worker thread, and :class:`StreamingDetectionService` merges every
shard's :class:`~repro.detection.WindowScore` emissions into a single
fleet-level feed with shard/tenant identity attached.  Shard state
snapshots to disk (``repro-service-snapshot-v1``) and restores onto a
fresh service so a restart resumes mid-stream without re-scoring or
skipping windows.  See ``docs/service.md``.
"""

from .router import ShardRouter
from .shard import DEFAULT_QUEUE_DEPTH, DetectorShard, FleetWindow
from .service import StreamingDetectionService, warm_start_graph
from .snapshot import (
    SERVICE_SNAPSHOT_SCHEMA,
    has_snapshot,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DetectorShard",
    "FleetWindow",
    "SERVICE_SNAPSHOT_SCHEMA",
    "ShardRouter",
    "StreamingDetectionService",
    "has_snapshot",
    "read_snapshot",
    "warm_start_graph",
    "write_snapshot",
]
