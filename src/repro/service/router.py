"""Tenant → shard routing.

A :class:`ShardRouter` assigns every tenant key (a sensor group, a
drive serial, a production line) to one of ``num_shards`` shards.  The
default placement is a *stable* content hash — the same key always
lands on the same shard, across processes and Python versions (the
built-in ``hash`` is salted per process and would scatter a restarted
fleet) — and explicit :meth:`ShardRouter.assign` overrides pin hot
tenants wherever capacity planning wants them.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

__all__ = ["ShardRouter"]


def _stable_hash(key: str) -> int:
    """Process-independent 64-bit hash of a tenant key."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRouter:
    """Deterministic partitioning of tenant keys across shards.

    Parameters
    ----------
    num_shards:
        Number of shards to spread tenants over (>= 1).
    assignments:
        Optional explicit ``{tenant: shard}`` placements; keys not
        listed fall back to the stable hash.  Assignments survive
        :meth:`to_dict`/:meth:`from_dict` round trips, so a restored
        service routes exactly as the snapshotted one did.
    """

    def __init__(
        self,
        num_shards: int,
        assignments: "Mapping[str, int] | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._num_shards = int(num_shards)
        self._assignments: dict[str, int] = {}
        for key, shard in dict(assignments or {}).items():
            self.assign(key, shard)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards this router spreads keys over."""
        return self._num_shards

    @property
    def assignments(self) -> dict[str, int]:
        """A copy of the explicit ``{tenant: shard}`` overrides."""
        return dict(self._assignments)

    def assign(self, key: str, shard: int) -> None:
        """Pin ``key`` to ``shard``, overriding the hash placement."""
        shard = int(shard)
        if not 0 <= shard < self._num_shards:
            raise ValueError(
                f"shard {shard} out of range for {self._num_shards} shard(s)"
            )
        self._assignments[str(key)] = shard

    def shard_of(self, key: str) -> int:
        """The shard ``key`` routes to (explicit assignment wins)."""
        key = str(key)
        assigned = self._assignments.get(key)
        if assigned is not None:
            return assigned
        return _stable_hash(key) % self._num_shards

    def partition(self, keys: Iterable[str]) -> dict[int, list[str]]:
        """Group ``keys`` by shard; every shard id appears in the result.

        Keys keep their input order within a shard, so partitioning is
        deterministic in (keys, assignments).
        """
        groups: dict[int, list[str]] = {shard: [] for shard in range(self._num_shards)}
        for key in keys:
            groups[self.shard_of(key)].append(str(key))
        return groups

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (for service snapshots)."""
        return {
            "num_shards": self._num_shards,
            "assignments": dict(self._assignments),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardRouter":
        """Rebuild a router from :meth:`to_dict` output."""
        return cls(
            int(payload["num_shards"]),
            {str(k): int(v) for k, v in dict(payload.get("assignments", {})).items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardRouter({self._num_shards} shards, "
            f"{len(self._assignments)} pinned)"
        )
