"""One shard of the streaming detection service.

A :class:`DetectorShard` owns one trained relationship graph and the
per-tenant :class:`~repro.detection.OnlineAnomalyDetector` streams
routed to it.  Ingest runs thread-per-shard: producers enqueue
``(tenant, chunk)`` work items onto a *bounded* queue and the shard's
worker drains it, scoring completed windows and handing each one to the
service's merged feed as a :class:`FleetWindow` with shard/tenant
identity and ingest-to-emit latency attached.

Backpressure is explicit: the queue depth is bounded, and a full queue
either blocks the producer (``backpressure="block"``, lossless) or
rejects the chunk (``backpressure="reject"``, bounded-latency), with
rejections counted under ``service.dropped`` and the observed depth
tracked by ``service.queue_depth``.

A tenant whose scoring raises is quarantined — the error is recorded,
subsequent chunks for that tenant are dropped, and the shard's other
tenants keep streaming.  Because the online detector's ingest is
failure-atomic, the quarantined tenant's state is exactly its state
before the poisoned chunk, so an operator can resubmit it after fixing
the cause.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..detection.online import OnlineAnomalyDetector, WindowScore
from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import DETECTION_RANGE, ScoreRange
from ..obs import MetricsRegistry, get_logger

__all__ = ["DEFAULT_QUEUE_DEPTH", "DetectorShard", "FleetWindow"]

logger = get_logger(__name__)

#: Default bound on a shard's ingest queue (work items, not samples).
DEFAULT_QUEUE_DEPTH = 64

#: Queue sentinel asking the worker thread to exit.
_STOP = None

_BACKPRESSURE_POLICIES = ("block", "reject")


@dataclass(frozen=True)
class FleetWindow:
    """One merged-feed entry: a window score with fleet identity.

    ``latency_seconds`` measures ingest-to-emit latency — the time from
    the producing chunk's enqueue to the window's emission — which is
    the serving-path number the ``repro-online-v1`` benchmark reports
    as p99 window latency.
    """

    shard_id: int
    tenant: str
    window: WindowScore
    latency_seconds: float


class DetectorShard:
    """One ingest worker: a graph, its tenants' detectors, a bounded queue.

    Parameters
    ----------
    shard_id:
        This shard's index in the service.
    graph:
        Trained relationship graph every tenant on this shard is scored
        against.  Translation models are read-only after fitting, so
        shards may share one graph object (the pooled fleet-model
        deployment) or own distinct graphs (per-group models).
    score_range, threshold, quantile, margin:
        Forwarded to each tenant's
        :class:`~repro.detection.OnlineAnomalyDetector`.
    queue_depth:
        Bound on the ingest queue, in work items.
    backpressure:
        ``"block"`` (default) makes :meth:`submit` wait for queue space;
        ``"reject"`` makes it drop the chunk and return ``False``.
    emit:
        Callback receiving each :class:`FleetWindow` (the service's
        merged feed).
    metrics:
        Shared :class:`~repro.obs.MetricsRegistry`; per-tenant detector
        counters (``online.*``) and service counters (``service.*``)
        accumulate here.
    """

    def __init__(
        self,
        shard_id: int,
        graph: MultivariateRelationshipGraph,
        *,
        score_range: ScoreRange = DETECTION_RANGE,
        threshold: str = "dev-quantile",
        quantile: float = 0.05,
        margin: float = 0.0,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        backpressure: str = "block",
        emit: Callable[[FleetWindow], None],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose from {_BACKPRESSURE_POLICIES}"
            )
        self.shard_id = int(shard_id)
        self.graph = graph
        self.queue_depth = int(queue_depth)
        self.backpressure = backpressure
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._detector_kwargs = {
            "score_range": score_range,
            "threshold": threshold,
            "quantile": quantile,
            "margin": margin,
        }
        self._emit = emit
        self.detectors: dict[str, OnlineAnomalyDetector] = {}
        self.errors: dict[str, BaseException] = {}
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_depth)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def tenants(self) -> list[str]:
        """Tenant keys this shard serves, in registration order."""
        return list(self.detectors)

    def add_tenant(self, tenant: str) -> OnlineAnomalyDetector:
        """Register a tenant stream; returns its fresh detector.

        Call before :meth:`start` (tenant registration is not
        synchronised with the worker thread).
        """
        tenant = str(tenant)
        if tenant in self.detectors:
            raise ValueError(
                f"tenant {tenant!r} already registered on shard {self.shard_id}"
            )
        detector = OnlineAnomalyDetector(
            self.graph, metrics=self.metrics, **self._detector_kwargs
        )
        self.detectors[tenant] = detector
        return detector

    # ------------------------------------------------------------------
    # Ingest loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{self.shard_id}", daemon=True
        )
        self._thread.start()

    @property
    def running(self) -> bool:
        """Whether the worker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def submit(self, tenant: str, chunk: "Mapping[str, Sequence[str]]") -> bool:
        """Enqueue one chunk for ``tenant``; returns acceptance.

        Under ``"block"`` backpressure the call waits for queue space
        and always returns ``True``; under ``"reject"`` a full queue
        drops the chunk, bumps ``service.dropped`` and returns
        ``False`` so the producer can shed load or retry later.
        """
        if tenant not in self.detectors:
            raise KeyError(
                f"unknown tenant {tenant!r} on shard {self.shard_id}; "
                f"registered: {self.tenants}"
            )
        item = (tenant, chunk, time.perf_counter())
        if self.backpressure == "block":
            self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.metrics.counter("service.dropped").inc()
                logger.debug(
                    "shard %d rejected a chunk for tenant %s (queue full)",
                    self.shard_id,
                    tenant,
                    extra={"shard": self.shard_id, "tenant": tenant},
                )
                return False
        self.metrics.gauge("service.queue_depth").set(self._queue.qsize())
        return True

    def join(self) -> None:
        """Block until every accepted work item has been processed."""
        self._queue.join()

    def stop(self) -> None:
        """Drain outstanding work, then stop the worker (idempotent)."""
        if self._thread is None:
            return
        self._queue.put(_STOP)
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                tenant, chunk, enqueued = item
                if tenant in self.errors:
                    # Quarantined stream: scoring already failed once;
                    # dropping keeps the tenant's state at the last
                    # cleanly-scored sample (see class docstring).
                    self.metrics.counter("service.quarantined_chunks").inc()
                    continue
                detector = self.detectors[tenant]
                try:
                    windows = detector.push_chunk(chunk)
                except BaseException as error:  # noqa: BLE001 - quarantine, don't die
                    self.errors[tenant] = error
                    self.metrics.counter("service.errors").inc()
                    logger.warning(
                        "shard %d quarantined tenant %s after a scoring "
                        "error: %s",
                        self.shard_id,
                        tenant,
                        error,
                        extra={"shard": self.shard_id, "tenant": tenant},
                    )
                    continue
                latency = time.perf_counter() - enqueued
                self._publish(tenant, windows, latency)
            finally:
                self._queue.task_done()

    def _publish(
        self, tenant: str, windows: "list[WindowScore]", latency: float
    ) -> None:
        if not windows:
            return
        for window in windows:
            self._emit(
                FleetWindow(
                    shard_id=self.shard_id,
                    tenant=tenant,
                    window=window,
                    latency_seconds=latency,
                )
            )
        self.metrics.counter("service.windows_emitted").inc(len(windows))
        latency_metric = self.metrics.histogram("service.latency_seconds")
        for _ in windows:
            latency_metric.observe(latency)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def pending_samples(self) -> dict[str, int]:
        """Residual buffered samples per tenant (see the online detector)."""
        return {
            tenant: detector.pending_samples
            for tenant, detector in self.detectors.items()
        }

    def snapshot_state(self) -> dict:
        """Serialisable per-tenant stream state; call on a quiescent shard."""
        return {
            "shard_id": self.shard_id,
            "tenants": {
                tenant: detector.state_dict()
                for tenant, detector in self.detectors.items()
            },
        }

    def restore_state(self, state: Mapping) -> None:
        """Load :meth:`snapshot_state` output onto this shard's tenants."""
        tenants = dict(state.get("tenants", {}))
        unknown = [tenant for tenant in tenants if tenant not in self.detectors]
        if unknown:
            raise ValueError(
                f"snapshot names tenants unknown to shard {self.shard_id}: "
                f"{unknown}"
            )
        for tenant, tenant_state in tenants.items():
            self.detectors[tenant].load_state_dict(tenant_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectorShard({self.shard_id}, {len(self.detectors)} tenant(s), "
            f"backpressure={self.backpressure!r})"
        )
