"""End-to-end framework: configuration, pipeline and persistence."""

from .config import FrameworkConfig
from .framework import AnalyticsFramework
from .hdd import HDDCaseStudy, HDDSplit
from .persistence import load_framework, save_framework
from .plant import DayScore, PlantCaseStudy, window_start_sample
from .reporting import generate_report, write_report

__all__ = [
    "AnalyticsFramework",
    "DayScore",
    "FrameworkConfig",
    "HDDCaseStudy",
    "HDDSplit",
    "PlantCaseStudy",
    "generate_report",
    "load_framework",
    "save_framework",
    "window_start_sample",
    "write_report",
]
