"""End-to-end framework: configuration, pipeline and persistence."""

from .config import FrameworkConfig
from .executor import BuildReport, PairExecutor, PairTask, SkippedPair
from .framework import AnalyticsFramework
from .hdd import HDDCaseStudy, HDDSplit
from .persistence import PairCheckpointStore, load_framework, save_framework
from .plant import DayScore, PlantCaseStudy, window_start_sample
from .reporting import generate_report, write_report

__all__ = [
    "AnalyticsFramework",
    "BuildReport",
    "DayScore",
    "FrameworkConfig",
    "HDDCaseStudy",
    "HDDSplit",
    "PairCheckpointStore",
    "PairExecutor",
    "PairTask",
    "PlantCaseStudy",
    "SkippedPair",
    "generate_report",
    "load_framework",
    "save_framework",
    "window_start_sample",
    "write_report",
]
