"""End-to-end framework: configuration, stage-graph pipeline, persistence.

Re-exports resolve lazily (PEP 562) so that importing a neutral
submodule such as :mod:`repro.pipeline.types` from the graph layer does
not drag in the full framework — this is what breaks the historical
``pipeline <-> graph`` import cycle for real instead of hiding it
behind ``TYPE_CHECKING`` guards.
"""

from typing import Any

_EXPORTS = {
    "AnalyticsFramework": ".framework",
    "ArtifactKey": ".artifacts",
    "ArtifactStore": ".artifacts",
    "BuildReport": ".executor",
    "DayScore": ".plant",
    "FrameworkConfig": ".config",
    "HDDCaseStudy": ".hdd",
    "HDDSplit": ".hdd",
    "PairCheckpointStore": ".persistence",
    "PairExecutor": ".executor",
    "PairStore": ".types",
    "PairTask": ".executor",
    "PickleJournal": ".artifacts",
    "PlantCaseStudy": ".plant",
    "SkippedPair": ".executor",
    "StageContext": ".stages",
    "StageGraph": ".stages",
    "generate_report": ".reporting",
    "load_framework": ".persistence",
    "save_framework": ".persistence",
    "window_start_sample": ".plant",
    "write_report": ".reporting",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
