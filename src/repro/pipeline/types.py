"""Neutral structural types shared across the pipeline and graph layers.

This module imports nothing from :mod:`repro.graph` or the rest of
:mod:`repro.pipeline`, so both sides can import it at module level
without re-creating the ``pipeline <-> graph`` import cycle that used
to be papered over with ``TYPE_CHECKING`` guards.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable

__all__ = ["PairStore"]


@runtime_checkable
class PairStore(Protocol):
    """Structural interface of a pair-level checkpoint journal.

    :class:`~repro.pipeline.persistence.PairCheckpointStore` is the
    canonical implementation; the graph layer and the executor depend
    only on this protocol.  ``load`` maps ``(source, target)`` pairs to
    restored :class:`~repro.graph.PairwiseRelationship` objects (typed
    as ``Any`` here to stay neutral); ``append`` records one completed
    relationship as it finishes.
    """

    def exists(self) -> bool: ...

    def clear(self) -> None: ...

    def load(self) -> Mapping[tuple[str, str], Any]: ...

    def append(self, relationship: Any) -> None: ...
