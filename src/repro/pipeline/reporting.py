"""Markdown report generation for a fitted framework.

``generate_report`` renders everything an operator or reviewer wants
from a trained relationship graph — the graph summary, the Table-I
partition, popular sensors, clusters, and (optionally) a detection
timeline — as a self-contained markdown document.  Exposed on the CLI
via ``inspect --report FILE``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..detection.anomaly import DetectionResult
from ..graph.metrics import summarize_graph
from .framework import AnalyticsFramework

__all__ = ["generate_report", "write_report"]


def _markdown_table(rows: list[dict[str, object]]) -> str:
    if not rows:
        return "*(no rows)*"
    headers = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(h, "")) for h in headers) + " |")
    return "\n".join(lines)


def generate_report(
    framework: AnalyticsFramework,
    detection: DetectionResult | None = None,
    title: str = "Relationship-graph report",
) -> str:
    """Render a fitted framework (and optional detection run) to markdown."""
    graph = framework.graph
    if graph is None:
        raise ValueError("framework has not been fitted")

    sections: list[str] = [f"# {title}", ""]

    summary = summarize_graph(graph)
    sections += ["## Graph summary", "", _markdown_table([summary.as_row()]), ""]

    sections += [
        "## Global subgraph statistics (Table I)",
        "",
        _markdown_table([s.as_row() for s in framework.subgraph_statistics()]),
        "",
    ]

    popular = framework.popular_sensors()
    sections += [
        "## Popular sensors",
        "",
        (", ".join(f"`{s}`" for s in popular) if popular else "*(none at this threshold)*"),
        "",
    ]

    clusters = framework.clusters()
    sections += ["## Local-subgraph clusters", ""]
    if clusters:
        for index, cluster in enumerate(clusters, start=1):
            sections.append(
                f"- cluster {index} ({len(cluster)} sensors): "
                + ", ".join(f"`{s}`" for s in sorted(cluster))
            )
    else:
        sections.append("*(no clusters at this range)*")
    sections.append("")

    strongest = sorted(graph.scores().items(), key=lambda kv: -kv[1])[:10]
    sections += [
        "## Strongest relationships",
        "",
        _markdown_table(
            [
                {"source": s, "target": t, "BLEU": f"{score:.1f}"}
                for (s, t), score in strongest
            ]
        ),
        "",
    ]

    if detection is not None:
        scores = detection.anomaly_scores
        sections += [
            "## Detection run",
            "",
            _markdown_table(
                [
                    {
                        "windows": detection.num_windows,
                        "valid pairs": detection.num_valid_pairs,
                        "max score": f"{scores.max():.2f}",
                        "mean score": f"{scores.mean():.2f}",
                        "windows ≥ 0.5": len(detection.anomalous_windows(0.5)),
                    }
                ]
            ),
            "",
        ]
        peak = int(np.argmax(scores))
        broken = detection.broken_pairs(peak)
        sections += [
            f"Peak window {peak} (score {scores[peak]:.2f}) broke "
            f"{len(broken)} relationships"
            + (
                ": " + ", ".join(f"`{s}`→`{t}`" for s, t in broken[:8])
                + (" …" if len(broken) > 8 else "")
                if broken
                else "."
            ),
            "",
        ]

    return "\n".join(sections)


def write_report(
    framework: AnalyticsFramework,
    path: str | Path,
    detection: DetectionResult | None = None,
    title: str = "Relationship-graph report",
) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(framework, detection, title))
    return path
