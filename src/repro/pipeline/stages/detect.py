"""Algorithm 2 as a pipeline stage with memoized detectors and corpora."""

from __future__ import annotations

from typing import Any

from ...detection.anomaly import AnomalyDetector, DetectionResult
from ...graph.ranges import ScoreRange
from ...obs import MetricsRegistry
from ..artifacts import fingerprint_log
from .base import Stage, StageContext

__all__ = ["DetectStage"]


class DetectStage(Stage):
    """Score test logs against a fitted graph (Algorithm 2).

    The stage is bound to one fitted graph and detection config and is
    kept alive across ``detect`` calls so that

    - the :class:`~repro.detection.AnomalyDetector` for each score
      range is built once and memoized, and
    - the encrypted test corpus (per-sensor sentence lists) is shared
      across ranges: re-detecting the same test log under a different
      score range re-encrypts nothing, and a log change is recognised
      by content fingerprint rather than object identity.
    """

    name = "detect"
    version = "1"
    inputs = ("test_log", "score_range")
    outputs = ("detection_result",)

    def __init__(
        self, graph, config, metrics: MetricsRegistry | None = None
    ) -> None:
        self.graph = graph
        self.config = config
        self.metrics = metrics
        self._detectors: dict[ScoreRange, AnomalyDetector] = {}
        self._log_digest: str | None = None
        self._sentences: dict[str, list] = {}

    # ------------------------------------------------------------------
    def detector_for(self, score_range: ScoreRange | None = None) -> AnomalyDetector:
        """The (memoized) detector for a score range (default: config's)."""
        key = self.config.detection_range if score_range is None else score_range
        detector = self._detectors.get(key)
        if detector is None:
            detector = AnomalyDetector(
                self.graph,
                key,
                margin=self.config.margin,
                threshold=self.config.threshold_strategy,
                quantile=self.config.threshold_quantile,
                metrics=getattr(self, "metrics", None),
            )
            self._detectors[key] = detector
        return detector

    def compute(self, context: StageContext) -> dict[str, Any]:
        test_log = context["test_log"]
        detector = self.detector_for(context["score_range"])
        digest = fingerprint_log(test_log)
        if digest != self._log_digest:
            self._log_digest = digest
            self._sentences = {}
        result = detector.detect(test_log, sentence_cache=self._sentences)
        return {"detection_result": result}

    # ------------------------------------------------------------------
    def detect(
        self, test_log, score_range: ScoreRange | None = None
    ) -> DetectionResult:
        """Convenience wrapper: run this stage on a fresh context."""
        context = StageContext(
            {"test_log": test_log, "score_range": score_range},
            metrics=getattr(self, "metrics", None),
        )
        self.run(context)
        return context["detection_result"]
