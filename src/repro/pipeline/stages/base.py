"""Stage-graph substrate: typed stages, a shared context, a validated DAG.

A :class:`Stage` declares the context keys it consumes (``inputs``)
and produces (``outputs``) and computes the latter from the former.  A
:class:`StageGraph` validates at construction time that every stage's
inputs are produced by an earlier stage or seeded into the context, so
a mis-wired pipeline fails before any work runs.

Caching is structural: a stage that returns a fingerprint (a digest of
its input data, its configuration and its ``version``) has its output
dict stored in the run's :class:`~repro.pipeline.artifacts.ArtifactStore`
under ``(stage name, fingerprint)`` and restored instead of recomputed
on the next run with the same fingerprint.  Stages that need finer
caching than whole-output (e.g. per-pair model training) return
``None`` from :meth:`Stage.fingerprint` and talk to ``context.store``
themselves.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, ClassVar, Iterator, Sequence

from ...obs import MetricsRegistry, get_logger
from ..artifacts import ArtifactKey, ArtifactStore

__all__ = ["Stage", "StageContext", "StageGraph", "StageResult"]

logger = get_logger(__name__)


class StageContext:
    """Shared blackboard for one pipeline run.

    Holds the named values stages read and write, the optional artifact
    store, the run's :class:`~repro.obs.MetricsRegistry` (every stage
    reports its wall time and cache outcome there; a fresh registry is
    created when none is passed) and the per-stage :class:`StageResult`
    log.  A store without a registry of its own is pointed at the
    context's, so artifact hit/miss/stale counts land in the same
    snapshot as the stage timings.
    """

    def __init__(
        self,
        values: dict[str, Any] | None = None,
        store: ArtifactStore | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._values: dict[str, Any] = dict(values or {})
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if store is not None and store.metrics is None:
            store.metrics = self.metrics
        self.results: list[StageResult] = []

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise KeyError(f"stage context has no value {key!r}") from None

    def __setitem__(self, key: str, value: Any) -> None:
        self._values[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def update(self, values: dict[str, Any]) -> None:
        self._values.update(values)

    def keys(self) -> Iterator[str]:
        return iter(self._values)


@dataclass
class StageResult:
    """What one stage execution did: cache hit or computed, and how long."""

    stage: str
    cache_hit: bool
    seconds: float
    key: ArtifactKey | None = None


class Stage(abc.ABC):
    """One named, versioned unit of pipeline work.

    Subclasses set ``name`` (also the artifact kind for whole-stage
    caching), bump ``version`` whenever the computation changes in a
    way that must invalidate cached artifacts, and declare ``inputs`` /
    ``outputs`` so :class:`StageGraph` can validate the wiring.
    """

    name: ClassVar[str]
    version: ClassVar[str] = "1"
    inputs: ClassVar[tuple[str, ...]] = ()
    outputs: ClassVar[tuple[str, ...]] = ()
    #: Inputs that fall back to a fixed value when neither seeded nor
    #: produced upstream; they participate in fingerprints like any
    #: other input, so changing a default's seeded value re-keys the
    #: stage while old pipelines keep wiring unchanged.
    defaults: ClassVar[dict[str, Any]] = {}

    def fingerprint(self, context: StageContext) -> str | None:
        """Digest of this stage's inputs, or ``None`` when not cacheable."""
        return None

    @abc.abstractmethod
    def compute(self, context: StageContext) -> dict[str, Any]:
        """Produce the declared outputs from the context."""

    # ------------------------------------------------------------------
    def run(self, context: StageContext) -> StageResult:
        """Execute the stage through the cache and record the outcome."""
        missing = [
            key
            for key in self.inputs
            if key not in context and key not in self.defaults
        ]
        if missing:
            raise KeyError(f"stage {self.name!r} is missing inputs: {missing}")
        for key, value in self.defaults.items():
            if key not in context:
                context[key] = value
        start = time.perf_counter()
        key: ArtifactKey | None = None
        produced: dict[str, Any] | None = None
        cache_hit = False
        if context.store is not None:
            digest = self.fingerprint(context)
            if digest is not None:
                key = ArtifactKey(self.name, digest)
                cached = context.store.get(key)
                if isinstance(cached, dict) and set(cached) == set(self.outputs):
                    produced = cached
                    cache_hit = True
        if produced is None:
            produced = self.compute(context)
            unexpected = set(produced) - set(self.outputs)
            absent = set(self.outputs) - set(produced)
            if unexpected or absent:
                raise RuntimeError(
                    f"stage {self.name!r} produced {sorted(produced)} but "
                    f"declares outputs {sorted(self.outputs)}"
                )
            if key is not None:
                context.store.save(key, produced)
        context.update(produced)
        result = StageResult(
            stage=self.name,
            cache_hit=cache_hit,
            seconds=time.perf_counter() - start,
            key=key,
        )
        context.results.append(result)
        metrics = context.metrics
        metrics.counter(f"stage.{self.name}.runs").inc()
        metrics.histogram(f"stage.{self.name}.seconds").observe(result.seconds)
        if key is not None:
            outcome = "cache_hits" if cache_hit else "cache_misses"
            metrics.counter(f"stage.{self.name}.{outcome}").inc()
        logger.debug(
            "stage %s %s in %.4fs",
            self.name,
            "restored from cache" if cache_hit else "computed",
            result.seconds,
            extra={
                "stage": self.name,
                "cache_hit": cache_hit,
                "seconds": result.seconds,
            },
        )
        return result


class StageGraph:
    """An ordered, validated pipeline of stages.

    Construction checks that stage names are unique, that no two stages
    produce the same context key, and that every stage's inputs are
    satisfied by the seed keys or an earlier stage's outputs — the
    stage list is a topological order of the implied dependency DAG.
    """

    def __init__(self, stages: Sequence[Stage], seeds: Sequence[str] = ()) -> None:
        self.stages = list(stages)
        self.seeds = tuple(seeds)
        available = set(self.seeds)
        producers: dict[str, str] = {}
        names: set[str] = set()
        for stage in self.stages:
            if stage.name in names:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            names.add(stage.name)
            unsatisfied = [
                key
                for key in stage.inputs
                if key not in available and key not in stage.defaults
            ]
            if unsatisfied:
                raise ValueError(
                    f"stage {stage.name!r} consumes {unsatisfied} which no "
                    "earlier stage produces and the context does not seed"
                )
            for key in stage.outputs:
                if key in producers:
                    raise ValueError(
                        f"context key {key!r} produced by both "
                        f"{producers[key]!r} and {stage.name!r}"
                    )
                producers[key] = stage.name
                available.add(key)

    def run(self, context: StageContext) -> StageContext:
        """Run every stage in order against ``context``."""
        missing = [key for key in self.seeds if key not in context]
        if missing:
            raise KeyError(f"context is missing seed values: {missing}")
        for stage in self.stages:
            stage.run(context)
        return context
