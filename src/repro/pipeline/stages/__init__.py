"""The stage-graph pipeline: explicit, cacheable, swappable stages.

The paper's Figure 1 cascade — sensor encryption → language generation
→ pair prescreen → pairwise NMT (Algorithm 1) → graph assembly →
detection (Algorithm 2) — is expressed as typed stages wired through a
:class:`~repro.pipeline.stages.base.StageGraph` and backed by a shared
content-addressed :class:`~repro.pipeline.artifacts.ArtifactStore`.
See ``docs/architecture.md`` for the diagram, the artifact-key scheme
and the cache-invalidation rules.
"""

from .base import Stage, StageContext, StageGraph, StageResult
from .corpus import CorpusStage
from .detect import DetectStage
from .encrypt import EncryptStage
from .graph_assemble import GraphAssembleStage
from .pair_train import PairTrainStage, spec_fingerprint
from .prescreen import PrescreenStage

__all__ = [
    "CorpusStage",
    "DetectStage",
    "EncryptStage",
    "GraphAssembleStage",
    "PairTrainStage",
    "PrescreenStage",
    "Stage",
    "StageContext",
    "StageGraph",
    "StageResult",
    "spec_fingerprint",
]
