"""Language generation as a pipeline stage (Section II-A2)."""

from __future__ import annotations

from typing import Any

from ...lang.corpus import MultiLanguageCorpus
from ..artifacts import combine_fingerprints, fingerprint_log, fingerprint_obj
from .base import Stage, StageContext

__all__ = ["CorpusStage"]


class CorpusStage(Stage):
    """Stream the fitted encoders into languages and dev sentences.

    Consumes the :class:`~repro.pipeline.stages.encrypt.EncryptStage`
    outputs plus the raw logs and the windowing config; produces the
    training ``corpus`` (one :class:`~repro.lang.SensorLanguage` per
    surviving sensor, generated lazily sensor-by-sensor rather than in
    one eager pass) and the per-sensor development ``dev_sentences``.
    Structural problems — fewer than two usable sensors, or a
    development log missing sensors — abort the build here, before any
    pair is scheduled.
    """

    name = "corpus"
    # 2: sentences default to packed integer word keys; the sentence
    # representation is part of the fingerprint so "codes" and
    # "strings" corpora never alias in the store.
    # 3: chunked streaming ingest — log fingerprints now come from the
    # frame's rolling digest cache; identical bytes for chunked and
    # in-memory ingest, but the bump fences off pre-streaming caches.
    version = "3"
    inputs = (
        "training_log",
        "development_log",
        "language_config",
        "representation",
        "encoders",
        "discarded_sensors",
    )
    outputs = ("corpus", "dev_sentences")
    defaults = {"representation": "codes"}

    def fingerprint(self, context: StageContext) -> str:
        return combine_fingerprints(
            self.version,
            fingerprint_log(context["training_log"]),
            fingerprint_log(context["development_log"]),
            fingerprint_obj(context["language_config"]),
            context["representation"],
        )

    def compute(self, context: StageContext) -> dict[str, Any]:
        training_log = context["training_log"]
        development_log = context["development_log"]
        corpus = MultiLanguageCorpus.from_encoders(
            context["encoders"],
            training_log,
            context["language_config"],
            context["discarded_sensors"],
            context["representation"],
        )
        sensors = corpus.sensors
        if len(sensors) < 2:
            raise ValueError(
                "need at least two non-constant sensors to build pairwise "
                f"relationships; got {len(sensors)} after filtering "
                f"(discarded: {corpus.discarded_sensors})"
            )
        dev_sentences = {
            name: corpus[name].sentences_for(development_log[name])
            for name in sensors
            if name in development_log
        }
        missing = [name for name in sensors if name not in dev_sentences]
        if missing:
            raise KeyError(f"development log is missing sensors: {missing}")
        return {"corpus": corpus, "dev_sentences": dev_sentences}
