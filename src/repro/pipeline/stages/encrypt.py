"""Sensor encryption as a pipeline stage (Section II-A1)."""

from __future__ import annotations

from typing import Any

from ...lang.corpus import filter_constant_sensors
from ...lang.encryption import SensorEncoder
from ..artifacts import combine_fingerprints, fingerprint_log
from .base import Stage, StageContext

__all__ = ["EncryptStage"]


class EncryptStage(Stage):
    """Filter constant sensors and fit one state→character codebook each.

    Consumes the raw training log; produces the fitted ``encoders``
    (sensor → :class:`~repro.lang.encryption.SensorEncoder`, in log
    order) and the ``discarded_sensors`` list.  The fingerprint covers
    only the training data, so unchanged logs restore the codebooks
    from the artifact store.
    """

    name = "encrypt"
    # 2: fingerprints hash the interned columnar codes (same codebooks,
    # new digests), so caches written by version 1 are never reused.
    # 3: chunked streaming ingest — logs may arrive through
    # EventFrameBuilder with pre-seeded rolling digests; the digest
    # bytes are unchanged (chunked and in-memory ingest of the same
    # data produce identical keys), but the bump fences off caches
    # written before the growable-interning code path existed.
    version = "3"
    inputs = ("training_log",)
    outputs = ("encoders", "discarded_sensors")

    def fingerprint(self, context: StageContext) -> str:
        return combine_fingerprints(
            self.version, fingerprint_log(context["training_log"])
        )

    def compute(self, context: StageContext) -> dict[str, Any]:
        filtered, discarded = filter_constant_sensors(context["training_log"])
        encoders = {
            sequence.sensor: SensorEncoder.fit(sequence) for sequence in filtered
        }
        return {"encoders": encoders, "discarded_sensors": discarded}
