"""Pair-affinity prescreen as a pipeline stage (see ``docs/prescreen.md``)."""

from __future__ import annotations

from typing import Any

from ...graph.prescreen import PrescreenConfig, prescreen_pairs
from ..artifacts import combine_fingerprints, fingerprint_log, fingerprint_obj
from .base import Stage, StageContext

__all__ = ["PrescreenStage"]


class PrescreenStage(Stage):
    """Prune hopeless sensor pairs before any translation model trains.

    Sits between :class:`~repro.pipeline.stages.corpus.CorpusStage` and
    :class:`~repro.pipeline.stages.pair_train.PairTrainStage`: it
    consumes the seeded ``pairs`` request (``None`` meaning the full
    ``N(N-1)`` grid) and re-emits it with low-affinity unordered pairs
    removed, alongside the full
    :class:`~repro.graph.prescreen.PrescreenResult` for reporting.
    With ``prescreen_config`` unset (prescreen off) the stage is a pure
    passthrough — the pair list, every downstream artifact key and all
    scores are bit-identical to a pipeline without the stage.

    The stage has its own artifact key: the fingerprint covers the
    training log, the windowing config, the sentence representation
    and the prescreen config, so a rebuild with unchanged inputs
    restores the affinity matrix and pruning decisions without
    rescoring.  The off state is deliberately uncached (there is
    nothing to store).
    """

    name = "prescreen"
    version = "1"
    inputs = (
        "training_log",
        "language_config",
        "representation",
        "corpus",
        "pairs",
        "prescreen_config",
    )
    outputs = ("pairs", "prescreen")
    defaults = {"prescreen_config": None, "representation": "codes"}

    def fingerprint(self, context: StageContext) -> str | None:
        config = context["prescreen_config"]
        if config is None:
            return None
        pairs = context["pairs"]
        return combine_fingerprints(
            self.version,
            fingerprint_log(context["training_log"]),
            fingerprint_obj(context["language_config"]),
            context["representation"],
            fingerprint_obj(config),
            fingerprint_obj(None if pairs is None else [list(p) for p in pairs]),
        )

    def compute(self, context: StageContext) -> dict[str, Any]:
        config: PrescreenConfig | None = context["prescreen_config"]
        pairs = context["pairs"]
        if config is None:
            return {"pairs": pairs, "prescreen": None}
        result = prescreen_pairs(context["corpus"], config, pairs)
        metrics = context.metrics
        scored = len(result.kept_pairs) + len(result.pruned_pairs)
        metrics.counter("prescreen.pairs_scored").inc(scored)
        metrics.counter("prescreen.pairs_kept").inc(len(result.kept_pairs))
        metrics.counter("prescreen.pairs_pruned").inc(len(result.pruned_pairs))
        metrics.histogram("prescreen.seconds").observe(result.seconds)
        return {"pairs": result.kept_pairs, "prescreen": result}
