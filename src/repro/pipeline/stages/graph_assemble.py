"""Relationship-graph assembly as the terminal fit stage."""

from __future__ import annotations

from typing import Any

from .base import Stage, StageContext

__all__ = ["GraphAssembleStage"]


class GraphAssembleStage(Stage):
    """Fold the trained relationships into the relationship graph ``G``.

    Assembly is cheap and the relationship objects are already in
    memory, so this stage is deliberately uncached; it exists to keep
    graph construction an explicit, swappable step (later PRs shard or
    merge graphs here) and to attach the build report.
    """

    name = "graph-assemble"
    version = "1"
    inputs = ("corpus", "relationships", "build_report", "prescreen")
    outputs = ("graph",)
    # "prescreen" defaults to None so pipelines without a
    # PrescreenStage keep working unchanged.
    defaults = {"prescreen": None}

    def compute(self, context: StageContext) -> dict[str, Any]:
        from ...graph.mvrg import MultivariateRelationshipGraph

        graph = MultivariateRelationshipGraph(
            context["corpus"], context["relationships"]
        )
        graph.build_report = context["build_report"]
        graph.prescreen = context["prescreen"]
        return {"graph": graph}
