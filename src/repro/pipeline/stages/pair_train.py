"""Algorithm 1's pair-training loop as an incrementally cached stage."""

from __future__ import annotations

import itertools
from typing import Any

from ..artifacts import (
    ArtifactKey,
    combine_fingerprints,
    fingerprint_obj,
    fingerprint_sequence,
)
from ..executor import FactorySpec, PairExecutor, PairTask
from .base import Stage, StageContext

__all__ = ["PairTrainStage", "spec_fingerprint"]


def spec_fingerprint(spec: FactorySpec) -> str | None:
    """Fingerprint an engine/factory spec, or ``None`` when uncacheable.

    Engine specs (engine name plus optional NMT config) are always
    fingerprintable.  A custom ``model_factory`` callable is opaque, so
    its pairs are only cacheable when the factory carries an explicit
    ``cache_token`` attribute vouching for its identity.
    """
    if spec[0] == "engine":
        return fingerprint_obj(["engine", spec[1], spec[2]])
    token = getattr(spec[1], "cache_token", None)
    if token is None:
        return None
    return fingerprint_obj(["factory", str(token)])


class PairTrainStage(Stage):
    """Train and score every ordered sensor pair, reusing stored models.

    Each pair's artifact key fingerprints exactly the inputs that shape
    its model: the two sensors' training and development event data,
    the windowing config, the engine spec and the stage version.  Pairs
    whose key is already in the store are restored without training
    (``build_report.cached``); the remainder go through the existing
    :class:`~repro.pipeline.executor.PairExecutor` (parallelism, retry
    and the PR 1 checkpoint journal all behave exactly as before) and
    freshly trained pairs are written back to the store.  Perturbing
    one sensor therefore retrains only the ``2(N-1)`` pairs whose
    fingerprint covers it.
    """

    name = "pair-train"
    # 2: pair fingerprints hash interned code matrices and cover the
    # sentence representation, invalidating version-1 pair artifacts.
    version = "2"
    inputs = (
        "training_log",
        "development_log",
        "language_config",
        "representation",
        "corpus",
        "dev_sentences",
        "factory_spec",
        "pairs",
        "prescreen",
        "executor_options",
    )
    outputs = ("relationships", "build_report")
    # "prescreen" defaults to None so pipelines without a
    # PrescreenStage keep their wiring (and artifact keys) unchanged.
    defaults = {"representation": "codes", "prescreen": None}

    def pair_key(
        self,
        spec_digest: str,
        config_digest: str,
        source_train: str,
        target_train: str,
        source_dev: str,
        target_dev: str,
    ) -> ArtifactKey:
        """The content address of one directed pair's fitted relationship."""
        return ArtifactKey(
            "pair",
            combine_fingerprints(
                self.version,
                spec_digest,
                config_digest,
                source_train,
                target_train,
                source_dev,
                target_dev,
            ),
        )

    def compute(self, context: StageContext) -> dict[str, Any]:
        corpus = context["corpus"]
        dev_sentences = context["dev_sentences"]
        spec: FactorySpec = context["factory_spec"]
        options = context["executor_options"]
        progress = options.get("progress")

        pairs = context["pairs"]
        if pairs is None:
            pair_list = list(itertools.permutations(corpus.sensors, 2))
        else:
            pair_list = list(pairs)

        # Structural problems abort the build up front; only per-pair
        # model failures degrade to skipped edges below.
        short = sorted(
            {
                name
                for pair in pair_list
                for name in pair
                if name in dev_sentences and not dev_sentences[name]
            }
        )
        if short:
            raise ValueError(
                "development log too short to produce a sentence for "
                f"sensors: {short}"
            )

        tasks = [
            PairTask(
                source=source,
                target=target,
                corpus=corpus.parallel(source, target),
                dev_source=dev_sentences[source],
                dev_target=dev_sentences[target],
            )
            for source, target in pair_list
        ]

        cached: dict[tuple[str, str], Any] = {}
        keys: dict[tuple[str, str], ArtifactKey] = {}
        pending = tasks
        store = context.store
        spec_digest = spec_fingerprint(spec) if store is not None else None
        if store is not None and spec_digest is not None:
            training_log = context["training_log"]
            development_log = context["development_log"]
            config_digest = fingerprint_obj(
                [context["language_config"], context["representation"]]
            )
            involved = sorted({name for pair in pair_list for name in pair})
            train_digests = {
                name: fingerprint_sequence(training_log[name]) for name in involved
            }
            dev_digests = {
                name: fingerprint_sequence(development_log[name]) for name in involved
            }
            pending = []
            for task in tasks:
                key = self.pair_key(
                    spec_digest,
                    config_digest,
                    train_digests[task.source],
                    train_digests[task.target],
                    dev_digests[task.source],
                    dev_digests[task.target],
                )
                keys[task.pair] = key
                relationship = store.get(key)
                if relationship is not None:
                    cached[task.pair] = relationship
                    if progress is not None:
                        progress(task.source, task.target, relationship.score)
                else:
                    pending.append(task)

        executor = PairExecutor(
            n_jobs=options.get("n_jobs", 1),
            backend=options.get("backend", "auto"),
            retries=options.get("retries", 1),
            progress=progress,
            checkpoint=options.get("checkpoint"),
            metrics=context.metrics,
            cohort_size=options.get("cohort_size"),
        )
        results, report = executor.run(pending, spec)
        report.cached = [task.pair for task in tasks if task.pair in cached]
        prescreen = context["prescreen"]
        if prescreen is not None:
            report.pruned = [tuple(pair) for pair in prescreen.pruned_pairs]
        context.metrics.counter("pair_train.cached").inc(len(report.cached))
        if store is not None:
            for pair in report.completed:
                key = keys.get(pair)
                if key is not None:
                    store.save(key, results[pair])

        if tasks and not results and not cached:
            first = report.skipped[0]
            raise RuntimeError(
                f"all {len(tasks)} pair models failed; first error for "
                f"({first.source!r}, {first.target!r}): {first.error}"
            )

        # Assemble in the original pair order so serial, parallel and
        # cached builds produce byte-identical relationship/score dicts.
        merged = {**cached, **results}
        relationships = {
            task.pair: merged[task.pair] for task in tasks if task.pair in merged
        }
        return {"relationships": relationships, "build_report": report}
