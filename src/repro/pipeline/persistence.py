"""Saving/loading fitted frameworks and pair-level build checkpoints.

Pickle is appropriate here: the object graph is plain Python plus numpy
arrays, produced and consumed by the same library version.  A format
tag guards against loading foreign pickles by accident.

:class:`PairCheckpointStore` is the executor's crash journal: one
pickled record per completed ``(source, target)`` pair, appended as
pairs finish, so an interrupted Algorithm 1 build resumes without
retraining finished pairs.  A truncated trailing record (the write the
crash interrupted) is discarded on load.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from ..graph.mvrg import PairwiseRelationship
from .artifacts import PickleJournal
from .framework import AnalyticsFramework

__all__ = ["save_framework", "load_framework", "PairCheckpointStore"]

_FORMAT_TAG = "repro-analytics-framework-v1"
_CHECKPOINT_TAG = "repro-pair-checkpoint-v1"


def save_framework(framework: AnalyticsFramework, path: str | Path) -> Path:
    """Serialise a (fitted or unfitted) framework to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump({"format": _FORMAT_TAG, "framework": framework}, handle)
    return path


def load_framework(path: str | Path) -> AnalyticsFramework:
    """Load a framework saved by :func:`save_framework`."""
    with Path(path).open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT_TAG:
        raise ValueError(f"{path} is not a saved analytics framework")
    framework = payload["framework"]
    if not isinstance(framework, AnalyticsFramework):
        raise ValueError(f"{path} does not contain an AnalyticsFramework")
    return framework


class PairCheckpointStore:
    """Append-only journal of completed Algorithm 1 pairs.

    A thin schema adapter over the generic
    :class:`~repro.pipeline.artifacts.PickleJournal`: a header record
    followed by one ``{"pair": (source, target), "relationship":
    PairwiseRelationship}`` record per finished pair (score, dev
    sentence scores, runtime and the fitted model travel inside the
    relationship).  The on-disk format is byte-identical to the PR 1
    journal, so existing checkpoint files remain readable.  Appends
    flush eagerly so a killed build loses at most the in-flight record.
    """

    def __init__(self, path: str | Path) -> None:
        self._journal = PickleJournal(
            path, _CHECKPOINT_TAG, description="pair checkpoint journal"
        )

    @property
    def path(self) -> Path:
        return self._journal.path

    def exists(self) -> bool:
        return self._journal.exists()

    def clear(self) -> None:
        """Delete the journal (start the next build from scratch).

        Refuses to delete a file that is not a pair journal, so a
        mistyped ``--checkpoint`` path can never destroy user data.
        """
        self._journal.clear()

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    def load(self) -> dict[tuple[str, str], PairwiseRelationship]:
        """All completed pairs recorded so far (empty if no journal)."""
        return {
            tuple(record["pair"]): record["relationship"]
            for record in self._journal.records()
        }

    def append(self, relationship: PairwiseRelationship) -> None:
        """Record one completed pair (called as each pair finishes)."""
        self._journal.append(
            {
                "pair": (relationship.source, relationship.target),
                "relationship": relationship,
            }
        )
