"""Saving/loading fitted frameworks.

Pickle is appropriate here: the object graph is plain Python plus numpy
arrays, produced and consumed by the same library version.  A format
tag guards against loading foreign pickles by accident.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from .framework import AnalyticsFramework

__all__ = ["save_framework", "load_framework"]

_FORMAT_TAG = "repro-analytics-framework-v1"


def save_framework(framework: AnalyticsFramework, path: str | Path) -> Path:
    """Serialise a (fitted or unfitted) framework to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump({"format": _FORMAT_TAG, "framework": framework}, handle)
    return path


def load_framework(path: str | Path) -> AnalyticsFramework:
    """Load a framework saved by :func:`save_framework`."""
    with Path(path).open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT_TAG:
        raise ValueError(f"{path} is not a saved analytics framework")
    framework = payload["framework"]
    if not isinstance(framework, AnalyticsFramework):
        raise ValueError(f"{path} does not contain an AnalyticsFramework")
    return framework
