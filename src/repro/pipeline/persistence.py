"""Saving/loading fitted frameworks and pair-level build checkpoints.

Pickle is appropriate here: the object graph is plain Python plus numpy
arrays, produced and consumed by the same library version.  A format
tag guards against loading foreign pickles by accident.

:class:`PairCheckpointStore` is the executor's crash journal: one
pickled record per completed ``(source, target)`` pair, appended as
pairs finish, so an interrupted Algorithm 1 build resumes without
retraining finished pairs.  A truncated trailing record (the write the
crash interrupted) is discarded on load.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING

from .framework import AnalyticsFramework

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph.mvrg import PairwiseRelationship

__all__ = ["save_framework", "load_framework", "PairCheckpointStore"]

_FORMAT_TAG = "repro-analytics-framework-v1"
_CHECKPOINT_TAG = "repro-pair-checkpoint-v1"


def save_framework(framework: AnalyticsFramework, path: str | Path) -> Path:
    """Serialise a (fitted or unfitted) framework to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump({"format": _FORMAT_TAG, "framework": framework}, handle)
    return path


def load_framework(path: str | Path) -> AnalyticsFramework:
    """Load a framework saved by :func:`save_framework`."""
    with Path(path).open("rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT_TAG:
        raise ValueError(f"{path} is not a saved analytics framework")
    framework = payload["framework"]
    if not isinstance(framework, AnalyticsFramework):
        raise ValueError(f"{path} does not contain an AnalyticsFramework")
    return framework


class PairCheckpointStore:
    """Append-only journal of completed Algorithm 1 pairs.

    The file is a pickle stream: a header record followed by one
    ``{"pair": (source, target), "relationship": PairwiseRelationship}``
    record per finished pair (score, dev sentence scores, runtime and
    the fitted model travel inside the relationship).  Appends flush
    eagerly so a killed build loses at most the in-flight record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal (start the next build from scratch).

        Refuses to delete a file that is not a pair journal, so a
        mistyped ``--checkpoint`` path can never destroy user data.
        """
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as handle:
                self._check_header(handle)
        self.path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    def load(self) -> dict[tuple[str, str], "PairwiseRelationship"]:
        """All completed pairs recorded so far (empty if no journal)."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return {}
        rows: dict[tuple[str, str], "PairwiseRelationship"] = {}
        with self.path.open("rb") as handle:
            self._check_header(handle)
            while True:
                try:
                    record = pickle.load(handle)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, ValueError):
                    # Truncated trailing record from an interrupted
                    # write; everything before it is intact.
                    break
                rows[tuple(record["pair"])] = record["relationship"]
        return rows

    def _check_header(self, handle) -> None:
        """Raise unless ``handle`` starts with this journal's header.

        A file that is not a pickle stream at all (e.g. a CSV passed to
        ``--checkpoint`` by mistake) must be rejected here — only a
        *trailing* record may be tolerated as truncation, never the
        header — otherwise ``append`` would write pickle records into a
        foreign file.
        """
        try:
            header = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, AttributeError, ValueError, IndexError):
            raise ValueError(f"{self.path} is not a pair checkpoint journal") from None
        if not isinstance(header, dict) or header.get("format") != _CHECKPOINT_TAG:
            raise ValueError(f"{self.path} is not a pair checkpoint journal")

    def append(self, relationship: "PairwiseRelationship") -> None:
        """Record one completed pair (called as each pair finishes)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        new_file = not self.path.exists() or self.path.stat().st_size == 0
        if not new_file:
            with self.path.open("rb") as handle:
                self._check_header(handle)
        with self.path.open("ab") as handle:
            if new_file:
                pickle.dump({"format": _CHECKPOINT_TAG}, handle)
            pickle.dump(
                {
                    "pair": (relationship.source, relationship.target),
                    "relationship": relationship,
                },
                handle,
            )
            handle.flush()
