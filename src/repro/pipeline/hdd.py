"""HDD case-study orchestration (Section IV).

Adapts the framework to SMART traces: each of the 16 framework
attributes becomes a "sensor"; values are discretized with the
Figure 10 schemes; drives' last four months are split 2/1/1 into
train/development/test; training windows are pooled across drives (the
paper aggregates data over all disks to acquire more anomalies) to
build one relationship graph; detection then runs per drive, and the
sharp-increase rule of Figure 12 turns trajectories into failure
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.backblaze import BackblazeDataset, DriveTrace
from ..datasets.discretize import Discretizer, discretize_records, fit_discretizers
from ..datasets.smart import framework_attribute_names
from ..detection.disk import DiskEvaluation, evaluate_drives
from ..graph.ranges import ScoreRange
from ..lang.events import EventSequence, MultivariateEventLog
from .config import FrameworkConfig
from .framework import AnalyticsFramework

__all__ = ["HDDCaseStudy", "HDDSplit"]


@dataclass(frozen=True)
class HDDSplit:
    """Day counts for each drive's final window (paper: 2/1/1 months)."""

    train_days: int = 60
    dev_days: int = 30
    test_days: int = 30

    @property
    def total_days(self) -> int:
        return self.train_days + self.dev_days + self.test_days


def _concat_logs(logs: list[MultivariateEventLog]) -> MultivariateEventLog:
    """Concatenate time-aligned logs (same sensors) end to end."""
    if not logs:
        raise ValueError("no logs to concatenate")
    sensors = logs[0].sensors
    merged: dict[str, list[str]] = {name: [] for name in sensors}
    for log in logs:
        if log.sensors != sensors:
            raise ValueError("logs disagree on sensors")
        for name in sensors:
            merged[name].extend(log[name].events)
    return MultivariateEventLog(
        EventSequence(name, events) for name, events in merged.items()
    )


@dataclass
class HDDCaseStudy:
    """Disk-failure detection on a Backblaze-style dataset.

    ``pooled=True`` (default, the paper's choice: "we aggregate the
    data for all disks") trains one relationship graph on concatenated
    healthy months; ``pooled=False`` trains an independent graph per
    drive — the ablation in
    ``benchmarks/test_ablation_hdd_pooling.py`` compares the two.
    """

    dataset: BackblazeDataset
    config: FrameworkConfig = field(default_factory=FrameworkConfig.backblaze)
    split: HDDSplit = field(default_factory=HDDSplit)
    min_history_days: int = 120
    pooled: bool = True
    framework: AnalyticsFramework | None = None
    discretizers: dict[str, Discretizer] | None = None
    _drives: list[DriveTrace] = field(default_factory=list)
    _per_drive: dict[str, AnalyticsFramework] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def eligible_drives(self) -> list[DriveTrace]:
        """Drives with enough history for the full split window."""
        needed = max(self.min_history_days, self.split.total_days)
        return [d for d in self.dataset.drives if d.days_observed >= needed]

    def _drive_window(self, drive: DriveTrace) -> dict[str, np.ndarray]:
        """The drive's final ``split.total_days`` of framework features."""
        window = drive.last_days(self.split.total_days)
        return {name: window[name] for name in framework_attribute_names()}

    def fit(self) -> "HDDCaseStudy":
        """Fit discretizers and the pooled relationship graph."""
        self._drives = self.eligible_drives()
        if len(self._drives) < 2:
            raise ValueError("need at least two drives with sufficient history")

        # Pool training values across drives for stable discretization.
        train_days = self.split.train_days
        pooled: dict[str, list[float]] = {n: [] for n in framework_attribute_names()}
        for drive in self._drives:
            window = self._drive_window(drive)
            for name in pooled:
                pooled[name].extend(window[name][:train_days].tolist())
        self.discretizers = fit_discretizers(pooled)

        train_logs: list[MultivariateEventLog] = []
        dev_logs: list[MultivariateEventLog] = []
        dev_end = train_days + self.split.dev_days
        for drive in self._drives:
            window = self._drive_window(drive)
            train_logs.append(
                discretize_records(
                    {n: v[:train_days] for n, v in window.items()}, self.discretizers
                )
            )
            dev_logs.append(
                discretize_records(
                    {n: v[train_days:dev_end] for n, v in window.items()},
                    self.discretizers,
                )
            )
        if self.pooled:
            self.framework = AnalyticsFramework(self.config).fit(
                _concat_logs(train_logs), _concat_logs(dev_logs)
            )
        else:
            self._per_drive = {}
            for drive, train_log, dev_log in zip(self._drives, train_logs, dev_logs):
                self._per_drive[drive.serial] = AnalyticsFramework(self.config).fit(
                    train_log, dev_log
                )
        return self

    def _require(self) -> AnalyticsFramework:
        if self.discretizers is None or (self.pooled and self.framework is None):
            raise RuntimeError("case study has not been fitted")
        if not self.pooled and not self._per_drive:
            raise RuntimeError("case study has not been fitted")
        return self.framework if self.pooled else next(iter(self._per_drive.values()))

    def _framework_for(self, serial: str) -> AnalyticsFramework:
        if self.pooled:
            return self._require()
        framework = self._per_drive.get(serial)
        if framework is None:
            raise KeyError(f"no per-drive framework for {serial!r}")
        return framework

    # ------------------------------------------------------------------
    def drive_test_log(self, drive: DriveTrace) -> MultivariateEventLog:
        """The drive's test month as a discretized event log."""
        assert self.discretizers is not None
        window = self._drive_window(drive)
        start = self.split.train_days + self.split.dev_days
        return discretize_records(
            {n: v[start:] for n, v in window.items()}, self.discretizers
        )

    def trajectories(
        self, score_range: ScoreRange | None = None
    ) -> dict[str, np.ndarray]:
        """Per-drive anomaly-score trajectories over the test month."""
        self._require()
        output: dict[str, np.ndarray] = {}
        for drive in self._drives:
            framework = self._framework_for(drive.serial)
            try:
                result = framework.detect(self.drive_test_log(drive), score_range)
            except ValueError:
                # Per-drive graphs can lack valid pairs in the chosen
                # range (too little data per drive — one argument for
                # the paper's pooling).  Such drives are unmonitorable:
                # a flat-zero trajectory, never detected.
                windows = framework.windows_per_sample_count(self.split.test_days)
                output[drive.serial] = np.zeros(max(windows, 1))
                continue
            output[drive.serial] = result.anomaly_scores
        return output

    def evaluate(
        self,
        score_range: ScoreRange | None = None,
        jump: float = 0.5,
        tail_windows: int | None = None,
        horizon: int = 3,
    ) -> DiskEvaluation:
        """Sharp-increase detection and recall over the drive population.

        ``horizon=3`` because the HDD language uses overlapping
        sentence windows (stride 1), which smear a one-day jump across
        adjacent windows (see :func:`repro.detection.sharp_increases`).
        """
        trajectories = self.trajectories(score_range)
        failed = {d.serial for d in self._drives if d.failed}
        return evaluate_drives(
            trajectories, failed, jump=jump, tail_windows=tail_windows, horizon=horizon
        )

    def feature_ranking(self, top: int | None = None) -> list[tuple[str, int, int]]:
        """Features ranked by in-degree in the detection-range subgraph
        (the Figure 11a / Table III analysis)."""
        from ..graph.centrality import rank_by_in_degree

        return rank_by_in_degree(self._require().global_subgraph(), top=top)
