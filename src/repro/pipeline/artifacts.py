"""Content-addressed artifact store backing the stage-graph pipeline.

Every cacheable stage output is stored under an :class:`ArtifactKey`
``(kind, digest)`` where the digest is a SHA-256 fingerprint of the
stage's inputs: the event data consumed, the configuration that shapes
the computation, and the stage version.  Because the key is derived
from *content* rather than file names or timestamps, incremental
rebuilds fall out structurally: rerunning a build with unchanged logs
and config resolves every key to an existing artifact and trains
nothing, while perturbing one sensor's events changes only the keys
whose fingerprint covers that sensor.

The module also hosts :class:`PickleJournal`, the append-only pickle
stream underlying :class:`~repro.pipeline.persistence.PairCheckpointStore`
— kept byte-compatible with the PR 1 journal format so existing
checkpoint files remain readable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, TYPE_CHECKING

from ..obs import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime import
    from ..lang.events import EventSequence, MultivariateEventLog
    from ..obs import MetricsRegistry

logger = get_logger(__name__)

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "PickleJournal",
    "StoreStats",
    "combine_fingerprints",
    "fingerprint_bytes",
    "fingerprint_log",
    "fingerprint_obj",
    "fingerprint_sequence",
]

_FORMAT_TAG = "repro-artifact-v1"
_KIND_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{16,64}$")


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def fingerprint_bytes(data: bytes) -> str:
    """SHA-256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def _jsonify(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__, **dataclasses.asdict(obj)}
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def fingerprint_obj(obj: Any) -> str:
    """Fingerprint a JSON-representable object (incl. dataclasses).

    The rendering is canonical — sorted keys, no whitespace — so two
    equal configurations always fingerprint identically regardless of
    construction order.
    """
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonify)
    return fingerprint_bytes(text.encode("utf-8"))


def fingerprint_sequence(sequence: "EventSequence") -> str:
    """Fingerprint one sensor's event data (name, states and codes).

    Hashes the interned columnar representation — the sorted state
    table plus the raw ``uint16`` code bytes — in the exact layout of
    :meth:`repro.core.EventFrame.row_digest`, so a sequence and the
    frame row it views produce the same digest in one pass over packed
    memory instead of re-rendering every event string.
    """
    import numpy as np

    hasher = hashlib.sha256()
    hasher.update(sequence.sensor.encode("utf-8"))
    hasher.update(b"\x00")
    for state in sequence.table.states:
        hasher.update(state.encode("utf-8"))
        hasher.update(b"\x1f")
    hasher.update(b"\x00")
    hasher.update(np.ascontiguousarray(sequence.codes, dtype="<u2").tobytes())
    return hasher.hexdigest()


def fingerprint_log(log: "MultivariateEventLog") -> str:
    """Fingerprint a whole event log (sensor order is significant).

    Delegates to :meth:`repro.core.EventFrame.digest`, which folds the
    per-row digests with the same separator
    :func:`combine_fingerprints` uses — the value is identical to
    combining :func:`fingerprint_sequence` over the log's sequences,
    but reuses the frame's digest cache (pre-seeded by the chunked
    ingest builder) instead of rescanning the code matrix.
    """
    return log.frame.digest()


def combine_fingerprints(*parts: str) -> str:
    """Fold any number of fingerprints/tokens into one digest."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactKey:
    """Address of one stored artifact: an artifact kind plus a digest."""

    kind: str
    digest: str

    def __post_init__(self) -> None:
        if not _KIND_RE.match(self.kind):
            raise ValueError(f"invalid artifact kind {self.kind!r}")
        if not _DIGEST_RE.match(self.digest):
            raise ValueError(f"invalid artifact digest {self.digest!r}")

    def __str__(self) -> str:
        return f"{self.kind}/{self.digest}"


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a store: per-kind artifact counts and bytes."""

    kinds: dict[str, tuple[int, int]]

    @property
    def num_artifacts(self) -> int:
        return sum(count for count, _ in self.kinds.values())

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.kinds.values())

    def as_rows(self) -> list[dict[str, object]]:
        return [
            {"kind": kind, "artifacts": count, "bytes": size}
            for kind, (count, size) in sorted(self.kinds.items())
        ]


class ArtifactStore:
    """Content-addressed on-disk cache of pipeline artifacts.

    Layout: ``root/objects/<kind>/<digest[:2]>/<digest>.pkl``; each
    file is a pickled record tagged with the format version and its own
    key, so a hash collision with a foreign file or a record moved
    between kinds is detected on load.  Writes go through a temp file
    and ``os.replace`` so a crashed writer can never leave a truncated
    artifact behind.

    When :attr:`metrics` is set (the pipeline points a store at its
    run's registry automatically), :meth:`get` counts ``store.hits``,
    ``store.misses`` and ``store.stale`` (present but corrupt/foreign —
    also logged as a warning) and :meth:`save` counts ``store.writes``.
    """

    def __init__(
        self, root: str | Path, metrics: "MetricsRegistry | None" = None
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"

    # ------------------------------------------------------------------
    def path_for(self, key: ArtifactKey) -> Path:
        return self.root / "objects" / key.kind / key.digest[:2] / f"{key.digest}.pkl"

    def contains(self, key: ArtifactKey) -> bool:
        return self.path_for(key).exists()

    __contains__ = contains

    def save(self, key: ArtifactKey, payload: Any) -> Path:
        """Store ``payload`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": _FORMAT_TAG,
            "kind": key.kind,
            "digest": key.digest,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("store.writes")
        return path

    def load(self, key: ArtifactKey) -> Any:
        """Load the payload stored under ``key``.

        Raises ``KeyError`` when absent and ``ValueError`` when the
        file exists but is not an artifact written for this key.
        """
        path = self.path_for(key)
        if not path.exists():
            raise KeyError(str(key))
        try:
            with path.open("rb") as handle:
                record = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as error:
            raise ValueError(f"corrupt artifact at {path}: {error}") from None
        if (
            not isinstance(record, dict)
            or record.get("format") != _FORMAT_TAG
            or record.get("kind") != key.kind
            or record.get("digest") != key.digest
        ):
            raise ValueError(f"{path} is not the artifact for {key}")
        return record["payload"]

    def get(self, key: ArtifactKey, default: Any = None) -> Any:
        """Like :meth:`load` but treats missing/corrupt artifacts as a miss."""
        try:
            payload = self.load(key)
        except KeyError:
            self._count("store.misses")
            return default
        except ValueError as error:
            # Present but unreadable or written for another key: a
            # *stale* entry, distinct from a plain miss.
            self._count("store.stale")
            logger.warning("stale artifact for %s: %s", key, error)
            return default
        self._count("store.hits")
        return payload

    def delete(self, key: ArtifactKey) -> bool:
        path = self.path_for(key)
        if not path.exists():
            return False
        path.unlink()
        return True

    # ------------------------------------------------------------------
    def keys(self, kind: str | None = None) -> Iterator[ArtifactKey]:
        """Iterate stored keys, optionally restricted to one kind."""
        objects = self.root / "objects"
        if not objects.exists():
            return
        kinds = [kind] if kind is not None else sorted(
            p.name for p in objects.iterdir() if p.is_dir()
        )
        for name in kinds:
            for path in sorted((objects / name).glob("*/*.pkl")):
                yield ArtifactKey(name, path.stem)

    def stats(self) -> StoreStats:
        """Per-kind artifact counts and byte totals."""
        kinds: dict[str, tuple[int, int]] = {}
        for key in self.keys():
            count, size = kinds.get(key.kind, (0, 0))
            kinds[key.kind] = (count + 1, size + self.path_for(key).stat().st_size)
        return StoreStats(kinds)

    def gc(self, max_age_seconds: float, now: float | None = None) -> int:
        """Delete artifacts last touched more than ``max_age_seconds`` ago."""
        if max_age_seconds < 0:
            raise ValueError("max_age_seconds must be non-negative")
        cutoff = (time.time() if now is None else now) - max_age_seconds
        removed = 0
        for key in list(self.keys()):
            path = self.path_for(key)
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except FileNotFoundError:  # pragma: no cover - concurrent gc
                continue
        return removed

    def purge(self) -> int:
        """Delete every artifact in the store."""
        removed = 0
        for key in list(self.keys()):
            removed += self.delete(key)
        return removed


# ----------------------------------------------------------------------
# Append-only journal (PR 1 checkpoint substrate)
# ----------------------------------------------------------------------
class PickleJournal:
    """Append-only pickle stream with a header tag.

    One header record (``{"format": tag}``) followed by arbitrary
    pickled records, flushed eagerly so a killed writer loses at most
    the in-flight record; a truncated *trailing* record is discarded on
    read, while a foreign header (e.g. a CSV passed by mistake) raises.
    This is the exact on-disk format of the PR 1 pair checkpoint
    journal, which is now a thin schema adapter over this class.
    """

    def __init__(self, path: str | Path, tag: str, description: str = "journal") -> None:
        self.path = Path(path)
        self.tag = tag
        self.description = description

    def exists(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal; refuses to delete a non-journal file."""
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as handle:
                self._check_header(handle)
        self.path.unlink(missing_ok=True)

    def _check_header(self, handle) -> None:
        try:
            header = pickle.load(handle)
        except (EOFError, pickle.UnpicklingError, AttributeError, ValueError, IndexError):
            raise ValueError(f"{self.path} is not a {self.description}") from None
        if not isinstance(header, dict) or header.get("format") != self.tag:
            raise ValueError(f"{self.path} is not a {self.description}")

    def records(self) -> Iterator[Any]:
        """Yield intact records; stops at a truncated trailing record."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with self.path.open("rb") as handle:
            self._check_header(handle)
            while True:
                try:
                    yield pickle.load(handle)
                except EOFError:
                    return
                except (pickle.UnpicklingError, AttributeError, ValueError):
                    # Truncated trailing record from an interrupted
                    # write; everything before it is intact.
                    return

    def append(self, record: Any) -> None:
        """Append one record, writing the header first on a fresh file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        new_file = not self.path.exists() or self.path.stat().st_size == 0
        if not new_file:
            with self.path.open("rb") as handle:
                self._check_header(handle)
        with self.path.open("ab") as handle:
            if new_file:
                pickle.dump({"format": self.tag}, handle)
            pickle.dump(record, handle)
            handle.flush()
