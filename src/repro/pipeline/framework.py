"""The end-to-end analytics framework (Figure 1).

``fit`` runs the stage-graph pipeline — sensor encryption, language
generation and Algorithm 1 — to build the multivariate relationship
graph, optionally through a content-addressed artifact cache so
unchanged inputs train nothing; ``detect`` runs Algorithm 2 over a
testing log via a memoized :class:`~repro.pipeline.stages.DetectStage`;
``diagnose`` traces broken relationships through the local subgraph
(Figure 9); the knowledge-discovery accessors expose global/local
subgraphs, popular sensors, clusters and Table I rows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import networkx as nx

from ..detection.anomaly import AnomalyDetector, DetectionResult
from ..detection.diagnosis import FaultDiagnosis, diagnose
from ..graph.community import connected_component_clusters, walktrap_communities
from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import ScoreRange
from ..graph.subgraphs import (
    SubgraphStats,
    global_subgraph,
    local_subgraph,
    popular_sensors,
    subgraph_statistics,
)
from ..lang.events import MultivariateEventLog
from ..lang.windows import num_windows
from ..obs import MetricsRegistry
from .artifacts import ArtifactStore
from .config import FrameworkConfig
from .stages.detect import DetectStage
from .types import PairStore

__all__ = ["AnalyticsFramework"]


class AnalyticsFramework:
    """Knowledge discovery and anomaly detection for discrete sequences."""

    def __init__(self, config: FrameworkConfig | None = None) -> None:
        self.config = config or FrameworkConfig()
        self.graph: MultivariateRelationshipGraph | None = None
        self._detect_stage: DetectStage | None = None
        self._metrics = MetricsRegistry()

    @property
    def metrics(self) -> MetricsRegistry:
        """The framework's metrics registry.

        Every ``fit`` and ``detect`` through this framework reports
        into the same registry — stage timings, cache hit/miss counts,
        pair-training counters and detection gauges — so one
        ``metrics.snapshot()`` (or ``metrics.write_json(path)``)
        describes the whole run.  Created lazily so frameworks pickled
        before the observability layer keep working after
        :func:`~repro.pipeline.persistence.load_framework`.
        """
        registry = self.__dict__.get("_metrics")
        if registry is None:
            registry = MetricsRegistry()
            self._metrics = registry
        return registry

    # ------------------------------------------------------------------
    # Training (Algorithm 1)
    # ------------------------------------------------------------------
    def fit(
        self,
        training_log: MultivariateEventLog,
        development_log: MultivariateEventLog,
        progress: Callable[[str, str, float], None] | None = None,
        n_jobs: int | str | None = None,
        backend: str | None = None,
        checkpoint: PairStore | str | None = None,
        cache_dir: "str | Path | ArtifactStore | bool | None" = None,
    ) -> "AnalyticsFramework":
        """Build the relationship graph from normal-operation logs.

        ``n_jobs``/``backend`` override the config's executor settings
        for this fit; ``checkpoint`` enables the pair-level journal so
        an interrupted fit resumes without retraining finished pairs.
        ``cache_dir`` overrides the config's artifact cache: a path or
        :class:`~repro.pipeline.artifacts.ArtifactStore` enables
        content-addressed incremental rebuilds, ``False`` disables
        caching even when the config names a cache directory.  The
        resulting :attr:`build_report` records completed, cached,
        resumed, skipped and (when ``config.prescreen`` is enabled)
        pruned pairs.
        """
        self.graph = MultivariateRelationshipGraph.build(
            training_log,
            development_log,
            config=self.config.language,
            engine=self.config.engine,
            nmt_config=self.config.nmt,
            progress=progress,
            n_jobs=self.config.n_jobs if n_jobs is None else n_jobs,
            backend=self.config.executor_backend if backend is None else backend,
            train_engine=getattr(self.config, "train_engine", "looped"),
            cohort_size=getattr(self.config, "train_cohort_size", None),
            checkpoint=checkpoint,
            store=self._resolve_store(cache_dir),
            representation=getattr(self.config, "representation", "codes"),
            metrics=self.metrics,
            prescreen=self._resolve_prescreen(),
        )
        self._detect_stage = DetectStage(self.graph, self.config, metrics=self.metrics)
        return self

    def _resolve_prescreen(self):
        """The config's prescreen selection as a build argument.

        ``getattr`` defaults keep frameworks pickled before the
        prescreen existed working; an explicit ``prescreen_floor``
        upgrades the method string to a full
        :class:`~repro.graph.prescreen.PrescreenConfig`.
        """
        method = getattr(self.config, "prescreen", "off")
        floor = getattr(self.config, "prescreen_floor", None)
        if method == "off" or floor is None:
            return method
        from ..graph.prescreen import PrescreenConfig

        return PrescreenConfig(method=method, floor=floor)

    def _resolve_store(
        self, cache_dir: "str | Path | ArtifactStore | bool | None"
    ) -> ArtifactStore | None:
        if cache_dir is False:
            return None
        if cache_dir is None or cache_dir is True:
            cache_dir = self.config.cache_dir
        if cache_dir is None:
            return None
        if isinstance(cache_dir, ArtifactStore):
            return cache_dir
        return ArtifactStore(cache_dir)

    @property
    def build_report(self):
        """The last fit's :class:`~repro.pipeline.executor.BuildReport`."""
        return None if self.graph is None else self.graph.build_report

    def _stage(self) -> DetectStage:
        """The detection stage bound to the fitted graph.

        Created lazily so frameworks pickled before the stage-graph
        refactor (which stored a bare detector) keep working after
        :func:`~repro.pipeline.persistence.load_framework`.
        """
        stage = getattr(self, "_detect_stage", None)
        if stage is None:
            stage = DetectStage(self._require_graph(), self.config, metrics=self.metrics)
            self._detect_stage = stage
        return stage

    def _require_graph(self) -> MultivariateRelationshipGraph:
        if self.graph is None:
            raise RuntimeError("framework has not been fitted")
        return self.graph

    # ------------------------------------------------------------------
    # Knowledge discovery (Section II-B)
    # ------------------------------------------------------------------
    def global_subgraph(self, score_range: ScoreRange | None = None) -> nx.DiGraph:
        """Edges in a BLEU range (default: the detection range)."""
        return global_subgraph(
            self._require_graph(), score_range or self.config.detection_range
        )

    def local_subgraph(self, score_range: ScoreRange | None = None) -> nx.DiGraph:
        """Global subgraph with popular sensors removed."""
        return local_subgraph(
            self.global_subgraph(score_range), self.config.popular_threshold
        )

    def popular_sensors(self, score_range: ScoreRange | None = None) -> list[str]:
        """Critical health-indicator sensors (high in-degree)."""
        return popular_sensors(
            self.global_subgraph(score_range), self.config.popular_threshold
        )

    def clusters(
        self, score_range: ScoreRange | None = None, method: str = "components"
    ) -> list[set[str]]:
        """Sensor clusters in the local subgraph.

        ``method="components"`` reads connected components (Figure 7);
        ``method="walktrap"`` runs random-walk community detection.
        """
        local = self.local_subgraph(score_range)
        if method == "components":
            return connected_component_clusters(local)
        if method == "walktrap":
            return walktrap_communities(local)
        raise ValueError(f"unknown clustering method {method!r}")

    def subgraph_statistics(self) -> list[SubgraphStats]:
        """Table I: per-range subgraph statistics."""
        return subgraph_statistics(
            self._require_graph(),
            self.config.score_ranges,
            self.config.popular_threshold,
        )

    # ------------------------------------------------------------------
    # Anomaly detection (Algorithm 2) and diagnosis
    # ------------------------------------------------------------------
    @property
    def detector(self) -> AnomalyDetector:
        if self.graph is None:
            raise RuntimeError("framework has not been fitted")
        return self._stage().detector_for()

    def detect(
        self, test_log: MultivariateEventLog, score_range: ScoreRange | None = None
    ) -> DetectionResult:
        """Anomaly scores ``a_t`` and alert matrix ``W_t`` for a test log.

        Detectors are memoized per score range and the encrypted test
        corpus is shared across ranges, so sweeping ``score_range``
        over the same log re-encrypts nothing.
        """
        self._require_graph()
        return self._stage().detect(test_log, score_range)

    def diagnose(
        self,
        result: DetectionResult,
        window: int,
        score_range: ScoreRange | None = None,
    ) -> FaultDiagnosis:
        """Fault diagnosis of one detection window on the local subgraph."""
        return diagnose(result, self.local_subgraph(score_range), window)

    # ------------------------------------------------------------------
    def windows_per_sample_count(self, num_samples: int) -> int:
        """How many detection windows a test log of ``num_samples`` yields."""
        lang = self.config.language
        words = num_windows(num_samples, lang.word_size, lang.word_stride)
        return num_windows(words, lang.sentence_length, lang.effective_sentence_stride)
