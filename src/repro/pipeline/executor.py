"""Parallel, checkpointed execution of Algorithm 1's pair-training loop.

Algorithm 1 trains ``N(N-1)`` independent directional translation
models — the paper's acknowledged bottleneck (Figure 4a: ~2.5 minutes
per NMT pair).  :class:`PairExecutor` fans the ordered-pair list out
over a ``concurrent.futures`` pool, streams progress callbacks back in
completion order, retries a failed pair once before recording it as a
skipped edge, and appends every finished pair to an optional
:class:`~repro.pipeline.persistence.PairCheckpointStore` so an
interrupted build resumes without retraining.

Determinism: every pair model is trained independently from a fresh
factory instance (seeded by its own configuration), so scheduling
order cannot change any score; the caller assembles the relationship
dict in the original pair order, making serial and parallel builds
byte-identical.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs import MetricsRegistry, Stopwatch, get_logger
from .types import PairStore

logger = get_logger(__name__)

if TYPE_CHECKING:  # pragma: no cover - heavy imports deferred to workers
    from ..graph.mvrg import PairwiseRelationship
    from ..lang.corpus import ParallelCorpus
    from ..translation.base import Sentence, TranslationModel

__all__ = ["PairExecutor", "PairTask", "SkippedPair", "BuildReport", "BACKENDS"]

BACKENDS = ("auto", "serial", "thread", "process", "batched")

#: Engine-or-factory description shipped to workers.  ``("engine",
#: name, nmt_config)`` is always picklable; ``("factory", callable)``
#: is used for custom factories and keeps work on threads by default.
FactorySpec = tuple


@dataclass(frozen=True)
class PairTask:
    """One unit of Algorithm 1 work: train and score ``source -> target``."""

    source: str
    target: str
    corpus: "ParallelCorpus"
    dev_source: list["Sentence"]
    dev_target: list["Sentence"]

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass(frozen=True)
class SkippedPair:
    """A pair whose model failed every attempt and was left out of the graph."""

    source: str
    target: str
    error: str
    attempts: int

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass
class BuildReport:
    """What happened during one Algorithm 1 build.

    ``completed`` lists pairs trained this run, ``cached`` pairs
    restored from the content-addressed artifact store, ``resumed``
    pairs restored from the checkpoint journal, ``skipped`` pairs that
    failed after retry (with their error strings), ``pruned`` pairs the
    affinity prescreen removed before any model was scheduled (see
    :mod:`repro.graph.prescreen`).  Every requested pair lands in
    exactly one of those buckets: for a full grid their sizes sum to
    ``N(N-1)``.  The build aborts only on structural errors; per-pair
    failures degrade to skipped edges.
    """

    n_jobs: int = 1
    backend: str = "serial"
    completed: list[tuple[str, str]] = field(default_factory=list)
    cached: list[tuple[str, str]] = field(default_factory=list)
    resumed: list[tuple[str, str]] = field(default_factory=list)
    skipped: list[SkippedPair] = field(default_factory=list)
    pruned: list[tuple[str, str]] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Number of lockstep tensor-program cohorts run (batched backend).
    cohorts: int = 0

    @property
    def ok(self) -> bool:
        return not self.skipped

    @property
    def num_trained(self) -> int:
        return len(self.completed)

    def summary(self) -> str:
        parts = [
            f"{len(self.completed)} pair(s) trained",
            f"{len(self.cached)} cached",
            f"{len(self.resumed)} resumed",
            f"{len(self.skipped)} skipped",
            f"{len(self.pruned)} pruned",
            f"n_jobs={self.n_jobs}",
            f"backend={self.backend}",
            f"{self.wall_seconds:.2f}s",
        ]
        if self.cohorts:
            parts.insert(5, f"{self.cohorts} cohort(s)")
        line = ", ".join(parts)
        for failure in self.skipped:
            line += f"\n  skipped {failure.source}->{failure.target}: {failure.error}"
        return line

    def to_dict(self) -> dict:
        """JSON-ready view of the report (consumed by CI cache checks)."""
        return {
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "trained": len(self.completed),
            "cached": len(self.cached),
            "resumed": len(self.resumed),
            "skipped": len(self.skipped),
            "pruned": len(self.pruned),
            "cohorts": self.cohorts,
            "wall_seconds": self.wall_seconds,
            "trained_pairs": [list(pair) for pair in self.completed],
            "cached_pairs": [list(pair) for pair in self.cached],
            "resumed_pairs": [list(pair) for pair in self.resumed],
            "pruned_pairs": [list(pair) for pair in self.pruned],
            "skipped_pairs": [
                {"pair": [failure.source, failure.target], "error": failure.error}
                for failure in self.skipped
            ],
        }


def _resolve_factory(spec: FactorySpec) -> Callable[[], "TranslationModel"]:
    kind = spec[0]
    if kind == "engine":
        from ..translation.factory import translator_factory

        return translator_factory(spec[1], spec[2])
    return spec[1]


def train_pair(task: PairTask, spec: FactorySpec) -> "PairwiseRelationship":
    """Train and score one directional pair (runs inside a worker).

    The train and dev-evaluation phases are timed separately inside the
    worker; the caller merges them into the build's metrics registry,
    so per-pair timings survive the process-pool boundary through the
    returned relationship.
    """
    from ..graph.mvrg import PairwiseRelationship
    from ..translation.bleu import corpus_bleu, sentence_bleu

    watch = Stopwatch()
    model = _resolve_factory(spec)()
    model.fit(task.corpus)
    train_seconds = watch.split()
    translations = model.translate(task.dev_source)
    score = corpus_bleu(translations, task.dev_target, smooth=True)
    sentence_scores = np.asarray(
        [
            sentence_bleu(candidate, reference)
            for candidate, reference in zip(translations, task.dev_target)
        ]
    )
    eval_seconds = watch.split()
    return PairwiseRelationship(
        source=task.source,
        target=task.target,
        model=model,
        score=score,
        dev_sentence_scores=sentence_scores,
        runtime_seconds=watch.elapsed,
        train_seconds=train_seconds,
        eval_seconds=eval_seconds,
    )


class PairExecutor:
    """Schedules Algorithm 1's pair-training tasks over a worker pool.

    Parameters
    ----------
    n_jobs:
        Worker count; ``"auto"`` uses the CPU count.  ``1`` runs
        serially in-process (no pool).
    backend:
        ``"thread"``, ``"process"``, ``"serial"``, ``"batched"``, or
        ``"auto"``.  ``"auto"`` picks threads for the GIL-light n-gram
        engine and custom factories, processes for the CPU-bound
        seq2seq engine.  ``"batched"`` trains shape-compatible seq2seq
        pairs in lockstep cohorts inside one tensor program (see
        :class:`~repro.translation.BatchedPairTrainer`); pairs whose
        corpora cannot be packed, or a whole cohort that fails, fall
        back to serial looped training.
    cohort_size:
        Maximum pairs per batched cohort (``None`` uses the trainer's
        default); only meaningful with the ``"batched"`` backend.
    retries:
        How many times a failed pair is retried (with a fresh model)
        before being recorded as a skipped edge.
    progress:
        ``(source, target, score)`` callback streamed in completion
        order, always from the calling thread.
    checkpoint:
        Optional :class:`PairCheckpointStore`; previously completed
        pairs are restored instead of retrained and new completions
        are appended as they finish.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  Each ``run``
        records into a private run-local registry — trained/resumed/
        skipped counts, retry attempts, and per-pair train/eval seconds
        measured inside the workers — and merges it into ``metrics`` on
        completion, so concurrent runs never interleave partial counts.
    """

    def __init__(
        self,
        n_jobs: int | str = 1,
        backend: str = "auto",
        retries: int = 1,
        progress: Callable[[str, str, float], None] | None = None,
        checkpoint: PairStore | None = None,
        metrics: MetricsRegistry | None = None,
        cohort_size: int | None = None,
    ) -> None:
        if n_jobs == "auto":
            n_jobs = os.cpu_count() or 1
        if not isinstance(n_jobs, int) or n_jobs < 1:
            raise ValueError(f"n_jobs must be a positive integer or 'auto', got {n_jobs!r}")
        if backend not in BACKENDS:
            raise ValueError(f"unknown executor backend {backend!r}; choose from {BACKENDS}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if cohort_size is not None and cohort_size < 1:
            raise ValueError("cohort_size must be >= 1")
        self.n_jobs = n_jobs
        self.backend = backend
        self.retries = retries
        self.progress = progress
        self.checkpoint = checkpoint
        self.metrics = metrics
        self.cohort_size = cohort_size

    # ------------------------------------------------------------------
    def resolve_backend(self, spec: FactorySpec) -> str:
        """The concrete backend used for a factory spec."""
        if self.backend == "batched":
            if spec[0] == "engine" and spec[1] == "seq2seq":
                return "batched"
            logger.warning(
                "batched backend requires the seq2seq engine; "
                "falling back to auto resolution"
            )
            return "serial" if self.n_jobs == 1 else "thread"
        if self.n_jobs == 1 or self.backend == "serial":
            return "serial"
        if self.backend != "auto":
            return self.backend
        if spec[0] == "engine" and spec[1] == "seq2seq":
            return "process"
        return "thread"

    def run(
        self, tasks: list[PairTask], spec: FactorySpec
    ) -> tuple[dict[tuple[str, str], "PairwiseRelationship"], BuildReport]:
        """Execute every task, returning ``pair -> relationship`` plus a report.

        Results are keyed by pair, not ordered by completion; skipped
        pairs are absent from the mapping and listed in the report.
        """
        backend = self.resolve_backend(spec)
        report = BuildReport(n_jobs=self.n_jobs, backend=backend)
        start = time.perf_counter()
        results: dict[tuple[str, str], "PairwiseRelationship"] = {}

        # Run-local registry: counters exist (at zero) even on an
        # all-cached build, and the merge into self.metrics at the end
        # is one atomic step per run.
        local = MetricsRegistry()
        for name in (
            "pair_train.trained",
            "pair_train.resumed",
            "pair_train.retries",
            "pair_train.skipped",
        ):
            local.counter(name)
        train_hist = local.histogram("pair_train.train_seconds")
        eval_hist = local.histogram("pair_train.eval_seconds")

        pending = list(tasks)
        if self.checkpoint is not None:
            restored = self.checkpoint.load()
            remaining = []
            for task in pending:
                relationship = restored.get(task.pair)
                if relationship is None:
                    remaining.append(task)
                else:
                    results[task.pair] = relationship
                    report.resumed.append(task.pair)
                    local.counter("pair_train.resumed").inc()
            pending = remaining

        def record(relationship: "PairwiseRelationship") -> None:
            pair = (relationship.source, relationship.target)
            results[pair] = relationship
            report.completed.append(pair)
            local.counter("pair_train.trained").inc()
            # Worker-side timings; pre-observability checkpoints and
            # custom factories may lack the split fields.
            train_seconds = getattr(relationship, "train_seconds", 0.0)
            eval_seconds = getattr(relationship, "eval_seconds", 0.0)
            if train_seconds or eval_seconds:
                train_hist.observe(train_seconds)
                eval_hist.observe(eval_seconds)
            if self.checkpoint is not None:
                self.checkpoint.append(relationship)
            if self.progress is not None:
                self.progress(relationship.source, relationship.target, relationship.score)

        if backend == "serial":
            self._run_serial(pending, spec, record, report, local)
        elif backend == "batched":
            self._run_batched(pending, spec, record, report, local)
        else:
            self._run_pool(pending, spec, record, report, backend, local)
        report.wall_seconds = time.perf_counter() - start
        local.histogram("pair_train.wall_seconds").observe(report.wall_seconds)
        if self.metrics is not None:
            self.metrics.merge(local)
        logger.debug(
            "pair executor finished: %s",
            report.summary().splitlines()[0],
            extra={
                "trained": len(report.completed),
                "resumed": len(report.resumed),
                "skipped": len(report.skipped),
                "backend": backend,
                "n_jobs": self.n_jobs,
                "wall_seconds": report.wall_seconds,
            },
        )
        return results, report

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: list[PairTask],
        spec: FactorySpec,
        record: Callable[["PairwiseRelationship"], None],
        report: BuildReport,
        metrics: MetricsRegistry,
    ) -> None:
        for task in pending:
            for attempt in range(1, self.retries + 2):
                try:
                    record(train_pair(task, spec))
                except Exception as error:  # noqa: BLE001 - degrade to a skipped edge
                    if attempt > self.retries:
                        self._record_skip(task, error, attempt, report, metrics)
                    else:
                        self._record_retry(task, error, attempt, metrics)
                else:
                    break

    def _run_batched(
        self,
        pending: list[PairTask],
        spec: FactorySpec,
        record: Callable[["PairwiseRelationship"], None],
        report: BuildReport,
        metrics: MetricsRegistry,
    ) -> None:
        """Train shape-compatible pairs in lockstep tensor-program cohorts.

        Ragged/empty corpora and whole cohorts that fail for any reason
        degrade to serial looped training, so the batched backend never
        loses pairs the looped backend could train.
        """
        from ..graph.mvrg import PairwiseRelationship
        from ..translation.batched import (
            DEFAULT_COHORT_SIZE,
            BatchedPairTrainer,
            group_cohorts,
        )

        metrics.counter("train.cohorts")
        metrics.counter("train.masked_steps")
        trainer = BatchedPairTrainer(config=spec[2], metrics=metrics)
        cohorts, leftovers = group_cohorts(
            pending, self.cohort_size or DEFAULT_COHORT_SIZE
        )
        for cohort in cohorts:
            try:
                cohort_results = trainer.train_cohort(cohort)
            except Exception as error:  # noqa: BLE001 - degrade to looped training
                logger.warning(
                    "cohort of %d pair(s) failed batched training, "
                    "falling back to looped: %s",
                    len(cohort),
                    error,
                    extra={"pairs": len(cohort)},
                )
                leftovers.extend(cohort)
                continue
            report.cohorts += 1
            metrics.counter("train.cohorts").inc()
            for result in cohort_results:
                record(
                    PairwiseRelationship(
                        source=result.source,
                        target=result.target,
                        model=result.model,
                        score=result.score,
                        dev_sentence_scores=result.dev_sentence_scores,
                        runtime_seconds=result.record.train_seconds
                        + result.record.eval_seconds,
                        train_seconds=result.record.train_seconds,
                        eval_seconds=result.record.eval_seconds,
                    )
                )
        if leftovers:
            logger.debug(
                "training %d pair(s) with the looped engine "
                "(incompatible or failed cohorts)",
                len(leftovers),
            )
            self._run_serial(leftovers, spec, record, report, metrics)

    def _run_pool(
        self,
        pending: list[PairTask],
        spec: FactorySpec,
        record: Callable[["PairwiseRelationship"], None],
        report: BuildReport,
        backend: str,
        metrics: MetricsRegistry,
    ) -> None:
        if not pending:
            return
        pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        workers = min(self.n_jobs, len(pending))
        with pool_cls(max_workers=workers) as pool:
            futures = {pool.submit(train_pair, task, spec): (task, 1) for task in pending}
            try:
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        task, attempt = futures.pop(future)
                        try:
                            relationship = future.result()
                        except Exception as error:  # noqa: BLE001 - retry, then skip
                            if attempt <= self.retries:
                                self._record_retry(task, error, attempt, metrics)
                                futures[pool.submit(train_pair, task, spec)] = (
                                    task,
                                    attempt + 1,
                                )
                            else:
                                self._record_skip(task, error, attempt, report, metrics)
                        else:
                            record(relationship)
            except BaseException:
                # Interrupt/kill: drop queued work so completed pairs
                # (already checkpointed) are preserved and exit fast.
                for future in futures:
                    future.cancel()
                raise

    # ------------------------------------------------------------------
    @staticmethod
    def _record_retry(
        task: PairTask, error: Exception, attempt: int, metrics: MetricsRegistry
    ) -> None:
        metrics.counter("pair_train.retries").inc()
        logger.warning(
            "pair %s->%s failed attempt %d, retrying: %s",
            task.source,
            task.target,
            attempt,
            error,
            extra={"source": task.source, "target": task.target, "attempt": attempt},
        )

    @staticmethod
    def _record_skip(
        task: PairTask,
        error: Exception,
        attempt: int,
        report: BuildReport,
        metrics: MetricsRegistry,
    ) -> None:
        report.skipped.append(SkippedPair(task.source, task.target, str(error), attempt))
        metrics.counter("pair_train.skipped").inc()
        logger.warning(
            "pair %s->%s skipped after %d attempt(s): %s",
            task.source,
            task.target,
            attempt,
            error,
            extra={"source": task.source, "target": task.target, "attempt": attempt},
        )
