"""Top-level configuration of the analytics framework."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.prescreen import PRESCREEN_METHODS
from ..graph.ranges import DEFAULT_RANGES, DETECTION_RANGE, ScoreRange
from ..graph.subgraphs import POPULAR_IN_DEGREE
from ..lang.corpus import REPRESENTATIONS, LanguageConfig
from ..translation.seq2seq import NMTConfig
from .executor import BACKENDS as EXECUTOR_BACKENDS

__all__ = ["FrameworkConfig", "TRAIN_ENGINES"]

#: Pair-training engines: ``"looped"`` trains each pair model on its
#: own; ``"batched"`` advances shape-compatible cohorts in lockstep
#: inside one tensor program (seq2seq only; see
#: :class:`~repro.translation.BatchedPairTrainer`).
TRAIN_ENGINES = ("looped", "batched")


@dataclass(frozen=True)
class FrameworkConfig:
    """Everything needed to train and run the framework.

    Defaults are the paper's plant settings with the fast n-gram
    engine; pass ``engine="seq2seq"`` (and optionally a small
    :class:`NMTConfig`) for the faithful neural pipeline.
    ``representation`` picks the sentence encoding: ``"codes"``
    (default; packed integer word keys over the columnar event core)
    or ``"strings"`` (legacy encrypted characters) — scores are
    bit-identical either way.
    ``n_jobs``/``executor_backend`` parallelise the Algorithm 1 pair
    loop (see :class:`~repro.pipeline.executor.PairExecutor`); results
    are bit-identical to the serial build.  ``train_engine`` selects
    the pair-training engine: ``"looped"`` (default) trains one model
    at a time, ``"batched"`` (seq2seq only) advances cohorts of up to
    ``train_cohort_size`` shape-compatible pair models in lockstep
    inside one tensor program — same valid-pair set and scores (see
    :class:`~repro.translation.BatchedPairTrainer` for the exact
    equivalence contract).  ``cache_dir`` names a
    content-addressed artifact store (see
    :class:`~repro.pipeline.artifacts.ArtifactStore`): fits through a
    cache restore unchanged pairs instead of retraining them.
    ``prescreen`` enables the pair-affinity prescreen (``"bleu"`` or
    ``"mi"``; see :mod:`repro.graph.prescreen` and
    ``docs/prescreen.md``), pruning hopeless pairs before any model
    trains; the default ``"off"`` is bit-identical to builds without
    the prescreen.  ``prescreen_floor`` overrides the method's
    calibrated affinity floor.
    """

    language: LanguageConfig = field(default_factory=LanguageConfig)
    representation: str = "codes"
    engine: str = "ngram"
    nmt: NMTConfig | None = None
    detection_range: ScoreRange = DETECTION_RANGE
    score_ranges: tuple[ScoreRange, ...] = DEFAULT_RANGES
    popular_threshold: int = POPULAR_IN_DEGREE
    margin: float = 0.0
    threshold_strategy: str = "dev-quantile"
    threshold_quantile: float = 0.05
    n_jobs: int | str = 1
    executor_backend: str = "auto"
    train_engine: str = "looped"
    train_cohort_size: int | None = None
    cache_dir: str | None = None
    prescreen: str = "off"
    prescreen_floor: float | None = None

    def __post_init__(self) -> None:
        if self.prescreen not in ("off", *PRESCREEN_METHODS):
            raise ValueError(
                f"unknown prescreen method {self.prescreen!r}; "
                f"choose from {('off', *PRESCREEN_METHODS)}"
            )
        if self.prescreen_floor is not None and not 0.0 <= self.prescreen_floor <= 100.0:
            raise ValueError("prescreen_floor must lie in [0, 100]")
        if self.representation not in REPRESENTATIONS:
            raise ValueError(
                f"unknown representation {self.representation!r}; "
                f"choose from {REPRESENTATIONS}"
            )
        if self.margin < 0:
            raise ValueError("margin must be non-negative")
        if self.popular_threshold < 1:
            raise ValueError("popular_threshold must be >= 1")
        if self.threshold_strategy not in ("train", "dev-min", "dev-quantile"):
            raise ValueError(f"unknown threshold strategy {self.threshold_strategy!r}")
        if self.n_jobs != "auto" and (
            not isinstance(self.n_jobs, int) or self.n_jobs < 1
        ):
            raise ValueError(
                f"n_jobs must be a positive integer or 'auto', got {self.n_jobs!r}"
            )
        if self.executor_backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {self.executor_backend!r}; "
                f"choose from {EXECUTOR_BACKENDS}"
            )
        if self.train_engine not in TRAIN_ENGINES:
            raise ValueError(
                f"unknown train engine {self.train_engine!r}; "
                f"choose from {TRAIN_ENGINES}"
            )
        if self.train_engine == "batched" and self.engine != "seq2seq":
            raise ValueError(
                "train_engine='batched' requires engine='seq2seq' "
                f"(got engine={self.engine!r})"
            )
        if self.train_cohort_size is not None and self.train_cohort_size < 1:
            raise ValueError("train_cohort_size must be >= 1")

    @classmethod
    def plant(cls, engine: str = "ngram", popular_threshold: int = POPULAR_IN_DEGREE) -> "FrameworkConfig":
        """Paper plant settings (word 10/1, sentence 20/20)."""
        return cls(language=LanguageConfig.plant(), engine=engine, popular_threshold=popular_threshold)

    @classmethod
    def backblaze(cls, engine: str = "ngram", popular_threshold: int = 10) -> "FrameworkConfig":
        """Paper HDD settings (word 5/1, sentence 7/1).

        With only 16 nodes the in-degree ≥ 100 rule cannot apply; the
        paper's Figure 11a instead labels the 5 most-connected features,
        so the popular threshold is scaled down.
        """
        return cls(language=LanguageConfig.backblaze(), engine=engine, popular_threshold=popular_threshold)
