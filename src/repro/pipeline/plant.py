"""Plant case-study orchestration (Section III).

Wraps the framework with the bookkeeping the paper's plant evaluation
needs: the 10/3/17-day chronological split, mapping detection windows
back to wall-clock days, and per-day score summaries used by the
Figure 8 timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.plant import PlantDataset
from ..detection.anomaly import DetectionResult
from ..graph.ranges import ScoreRange
from ..lang.corpus import LanguageConfig
from .config import FrameworkConfig
from .framework import AnalyticsFramework

__all__ = ["PlantCaseStudy", "DayScore", "window_start_sample"]


def window_start_sample(window: int, config: LanguageConfig) -> int:
    """First raw sample covered by detection window ``window``."""
    return window * config.effective_sentence_stride * config.word_stride


@dataclass(frozen=True)
class DayScore:
    """Anomaly-score summary of one test day."""

    day: int
    max_score: float
    mean_score: float
    is_anomaly: bool
    is_precursor: bool


@dataclass
class PlantCaseStudy:
    """Train/evaluate the framework on a plant dataset.

    Parameters
    ----------
    dataset:
        Output of :func:`repro.datasets.generate_plant_dataset`.
    config:
        Framework configuration (language windows sized for the
        dataset's sampling rate).
    train_days, dev_days:
        The paper's split: 10 training days, 3 development days, the
        remaining days for testing.
    """

    dataset: PlantDataset
    config: FrameworkConfig
    train_days: int = 10
    dev_days: int = 3
    framework: AnalyticsFramework | None = None

    def fit(self) -> "PlantCaseStudy":
        """Build the relationship graph from the normal-operation split."""
        train, dev, _ = self.dataset.split(self.train_days, self.dev_days)
        self.framework = AnalyticsFramework(self.config).fit(train, dev)
        return self

    def _require_framework(self) -> AnalyticsFramework:
        if self.framework is None:
            raise RuntimeError("case study has not been fitted")
        return self.framework

    # ------------------------------------------------------------------
    @property
    def first_test_day(self) -> int:
        return self.train_days + self.dev_days + 1

    def detect(self, score_range: ScoreRange | None = None) -> DetectionResult:
        """Algorithm 2 over the test period."""
        _, _, test = self.dataset.split(self.train_days, self.dev_days)
        return self._require_framework().detect(test, score_range)

    def calibrated_alarm_threshold(
        self, score_range: ScoreRange | None = None, slack: float = 0.05
    ) -> float:
        """An alarm threshold calibrated on normal operation.

        Runs detection over the (anomaly-free) development days and
        returns their peak window score plus ``slack`` — the lowest
        threshold guaranteed quiet on data like the calibration period.
        Operators tune exactly this way: raise the bar just above what
        normal days produce.
        """
        _, dev, _ = self.dataset.split(self.train_days, self.dev_days)
        result = self._require_framework().detect(dev, score_range)
        return float(result.anomaly_scores.max()) + slack

    def window_day(self, window: int) -> int:
        """1-indexed calendar day a detection window falls on."""
        start = window_start_sample(window, self.config.language)
        return self.first_test_day + start // self.dataset.config.samples_per_day

    def day_scores(self, result: DetectionResult) -> list[DayScore]:
        """Per-day max/mean anomaly scores (the Figure 8 series)."""
        per_day: dict[int, list[float]] = {}
        for window in range(result.num_windows):
            per_day.setdefault(self.window_day(window), []).append(
                float(result.anomaly_scores[window])
            )
        return [
            DayScore(
                day=day,
                max_score=max(scores),
                mean_score=float(np.mean(scores)),
                is_anomaly=day in self.dataset.anomaly_days,
                is_precursor=day in self.dataset.precursor_days,
            )
            for day, scores in sorted(per_day.items())
        ]

    def evaluate(
        self,
        result: DetectionResult,
        alarm_threshold: float = 0.5,
        early_warning_window: int = 2,
    ) -> "DayLevelEvaluation":
        """Day-level precision/recall with early-warning credit.

        Wraps :func:`repro.detection.evaluate_days` over this study's
        per-day max scores and ground-truth anomaly days.
        """
        from ..detection.evaluation import evaluate_days

        per_day = {s.day: s.max_score for s in self.day_scores(result)}
        return evaluate_days(
            per_day,
            list(self.dataset.anomaly_days),
            threshold=alarm_threshold,
            early_warning_window=early_warning_window,
        )

    def detection_quality(
        self, result: DetectionResult, alarm_threshold: float = 0.5
    ) -> dict[str, object]:
        """Summary of how well the timeline separates anomaly days.

        Returns detected/missed anomaly days and normal days whose peak
        exceeds the alarm threshold (false alarms; the paper observed
        that these cluster just before true anomalies — early warnings).
        """
        scores = self.day_scores(result)
        detected = [s.day for s in scores if s.is_anomaly and s.max_score >= alarm_threshold]
        missed = [s.day for s in scores if s.is_anomaly and s.max_score < alarm_threshold]
        false_alarms = [
            s.day for s in scores if not s.is_anomaly and s.max_score >= alarm_threshold
        ]
        normal_peak = max(
            (s.max_score for s in scores if not s.is_anomaly and not s.is_precursor),
            default=0.0,
        )
        anomaly_peak = min((s.max_score for s in scores if s.is_anomaly), default=0.0)
        return {
            "detected_days": detected,
            "missed_days": missed,
            "false_alarm_days": false_alarms,
            "normal_peak": normal_peak,
            "anomaly_peak": anomaly_peak,
        }
