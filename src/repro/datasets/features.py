"""Feature engineering for the baseline models (Section IV-B).

The baselines consume numeric matrices: the 20 raw SMART features plus
first-order differences of the 14 cumulative ones — 34 columns.  Each
row is one drive-day; the label marks failure days (the drive's last
day of operation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .backblaze import BackblazeDataset, DriveTrace
from .smart import cumulative_attribute_names, raw_attribute_names

__all__ = ["first_difference", "BaselineMatrix", "build_baseline_matrix", "baseline_feature_names"]


def first_difference(series: np.ndarray) -> np.ndarray:
    """Daily deltas with a leading zero (keeps row alignment)."""
    array = np.asarray(series, dtype=np.float64)
    if array.size == 0:
        return array.copy()
    deltas = np.empty_like(array)
    deltas[0] = 0.0
    deltas[1:] = np.diff(array)
    return deltas


def baseline_feature_names() -> list[str]:
    """The 34 baseline columns: 20 raw + 14 differenced cumulative."""
    return raw_attribute_names() + [f"{name}_diff" for name in cumulative_attribute_names()]


@dataclass
class BaselineMatrix:
    """A drive-day design matrix with labels and provenance."""

    features: np.ndarray  # (rows, 34)
    labels: np.ndarray  # (rows,) 1 on failure days
    drive_of_row: np.ndarray  # (rows,) drive index
    feature_names: list[str]

    @property
    def num_rows(self) -> int:
        return int(self.features.shape[0])

    def rows_for_drives(self, drive_indices: set[int]) -> "BaselineMatrix":
        """Subset the matrix to specific drives (for per-drive splits)."""
        mask = np.isin(self.drive_of_row, sorted(drive_indices))
        return BaselineMatrix(
            features=self.features[mask],
            labels=self.labels[mask],
            drive_of_row=self.drive_of_row[mask],
            feature_names=self.feature_names,
        )


def _drive_rows(drive: DriveTrace) -> np.ndarray:
    raw = np.column_stack([drive.values[name] for name in raw_attribute_names()])
    diffs = np.column_stack(
        [first_difference(drive.values[name]) for name in cumulative_attribute_names()]
    )
    return np.hstack([raw, diffs])


def build_baseline_matrix(dataset: BackblazeDataset) -> BaselineMatrix:
    """Assemble the full drive-day matrix for the RF / OC-SVM baselines."""
    blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    drive_ids: list[np.ndarray] = []
    for index, drive in enumerate(dataset.drives):
        rows = _drive_rows(drive)
        day_labels = np.zeros(rows.shape[0])
        if drive.failed and rows.shape[0] > 0:
            day_labels[-1] = 1.0  # last observed day is the failure day
        blocks.append(rows)
        labels.append(day_labels)
        drive_ids.append(np.full(rows.shape[0], index))
    return BaselineMatrix(
        features=np.vstack(blocks),
        labels=np.concatenate(labels),
        drive_of_row=np.concatenate(drive_ids),
        feature_names=baseline_feature_names(),
    )
