"""Feature discretization for continuous SMART values (Section IV-C).

Two schemes, selected per feature from the training distribution:

1. **Binary** — when most observations are zero (error counters), the
   feature becomes a zero/nonzero indicator (Figure 10a).
2. **Quintile** — otherwise the 20/40/60/80th training percentiles are
   category boundaries, giving five levels (Figure 10b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = [
    "BinaryDiscretizer",
    "QuantileDiscretizer",
    "Discretizer",
    "fit_discretizers",
    "discretize_records",
]

#: A feature is "mostly zero" when at least this fraction of training
#: observations equal zero.
ZERO_DOMINANCE = 0.5


@dataclass(frozen=True)
class BinaryDiscretizer:
    """Zero/nonzero indicator (Figure 10a)."""

    feature: str

    scheme = "binary"

    def transform(self, values: Sequence[float]) -> list[str]:
        array = np.asarray(values, dtype=np.float64)
        return ["nonzero" if value != 0 else "zero" for value in array]


@dataclass(frozen=True)
class QuantileDiscretizer:
    """Quintile categoriser with training-set boundaries (Figure 10b)."""

    feature: str
    boundaries: tuple[float, ...]

    scheme = "quantile"

    @classmethod
    def fit(cls, feature: str, values: Sequence[float]) -> "QuantileDiscretizer":
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError(f"cannot fit discretizer for {feature!r} on empty data")
        boundaries = tuple(float(q) for q in np.quantile(array, (0.2, 0.4, 0.6, 0.8)))
        return cls(feature=feature, boundaries=boundaries)

    def transform(self, values: Sequence[float]) -> list[str]:
        array = np.asarray(values, dtype=np.float64)
        bins = np.digitize(array, self.boundaries, right=False)
        return [f"q{int(bin_index) + 1}" for bin_index in bins]


Discretizer = BinaryDiscretizer | QuantileDiscretizer


def fit_discretizer(feature: str, training_values: Sequence[float]) -> Discretizer:
    """Choose and fit the appropriate scheme for one feature."""
    array = np.asarray(training_values, dtype=np.float64)
    if array.size == 0:
        raise ValueError(f"cannot fit discretizer for {feature!r} on empty data")
    zero_fraction = float((array == 0).mean())
    if zero_fraction >= ZERO_DOMINANCE:
        return BinaryDiscretizer(feature=feature)
    return QuantileDiscretizer.fit(feature, array)


def fit_discretizers(
    training: Mapping[str, Sequence[float]]
) -> dict[str, Discretizer]:
    """Fit one discretizer per feature from training values."""
    return {feature: fit_discretizer(feature, values) for feature, values in training.items()}


def discretize_records(
    records: Mapping[str, Sequence[float]],
    discretizers: Mapping[str, Discretizer],
) -> MultivariateEventLog:
    """Apply fitted discretizers and assemble an event log.

    Only features present in ``discretizers`` are emitted, so dropping
    quiet features (paper IV-C) happens by fitting discretizers for the
    16 framework features only.
    """
    sequences = []
    for feature, discretizer in discretizers.items():
        if feature not in records:
            raise KeyError(f"records are missing feature {feature!r}")
        sequences.append(EventSequence(feature, discretizer.transform(records[feature])))
    return MultivariateEventLog(sequences)
