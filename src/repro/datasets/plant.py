"""Synthetic physical-plant event log (substitute for the proprietary data).

The paper's first case study uses a proprietary log the authors cannot
release: 128 sensors, one-minute sampling, 30 days, with system
anomalies on days 21 and 28 (plus precursor disturbances on days 19,
20 and 27 that the framework flags as early warnings).  This module
simulates a plant with the same statistical structure:

- components (heat unit, turbine, condenser, pump loops, ...) each
  driven by a latent periodic/regime signal; sensors of one component
  derive their categorical state from the component driver (delays,
  inversions, thresholds), so intra-component relationships are strong;
- ~97% of sensors are binary; a few have cardinality up to 7; a few are
  constant (exercising the sequence-filtering step);
- "mostly-OFF" sensors whose languages are trivially predictable emerge
  as popular, high in-degree nodes, as observed in the paper;
- on anomaly days a subset of components is disturbed (phase shifts,
  state freezes, driver swaps) during a multi-hour window, which breaks
  cross-sensor relationships without making any single sequence look
  implausible — exactly the detection challenge of Figure 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = ["PlantConfig", "PlantDataset", "generate_plant_dataset"]


@dataclass(frozen=True)
class PlantConfig:
    """Configuration of the plant simulator.

    Defaults follow the paper's dataset: 128 sensors, 30 days of
    one-minute samples, anomalies on days 21 and 28 (1-indexed),
    precursor disturbances on days 19, 20 and 27.  Tests and CPU-bound
    benchmarks shrink ``num_sensors`` and ``samples_per_day``.
    """

    num_sensors: int = 128
    days: int = 30
    samples_per_day: int = 1440
    anomaly_days: tuple[int, ...] = (21, 28)
    precursor_days: tuple[int, ...] = (19, 20, 27)
    num_components: int = 8
    constant_fraction: float = 0.05
    mostly_off_fraction: float = 0.15
    rare_event_fraction: float = 0.1
    multistate_fraction: float = 0.05
    noise_rate: float = 0.002
    anomaly_start_fraction: float = 0.3
    anomaly_duration_fraction: float = 0.4
    precursor_duration_fraction: float = 0.15
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_sensors < 4:
            raise ValueError("need at least 4 sensors")
        if self.days < 1 or self.samples_per_day < 16:
            raise ValueError("days must be >= 1 and samples_per_day >= 16")
        for day in self.anomaly_days + self.precursor_days:
            if not 1 <= day <= self.days:
                raise ValueError(f"day {day} outside 1..{self.days}")

    @classmethod
    def small(cls, seed: int = 7) -> "PlantConfig":
        """A CPU-friendly configuration preserving the paper's shape."""
        return cls(
            num_sensors=20,
            days=30,
            samples_per_day=96,
            num_components=4,
            seed=seed,
        )

    @property
    def total_samples(self) -> int:
        return self.days * self.samples_per_day


@dataclass
class PlantDataset:
    """The generated log plus ground-truth metadata."""

    log: MultivariateEventLog
    config: PlantConfig
    component_of: dict[str, str]
    anomaly_days: tuple[int, ...]
    precursor_days: tuple[int, ...]
    disturbed_sensors: dict[int, tuple[str, ...]]

    # ------------------------------------------------------------------
    def day_slice(self, day: int) -> MultivariateEventLog:
        """Log restricted to 1-indexed ``day``."""
        start = (day - 1) * self.config.samples_per_day
        return self.log.slice(start, start + self.config.samples_per_day)

    def split(self, train_days: int, dev_days: int) -> tuple[
        MultivariateEventLog, MultivariateEventLog, MultivariateEventLog
    ]:
        """Chronological train/dev/test split (paper: 10/3/17 days)."""
        if train_days + dev_days >= self.config.days:
            raise ValueError("split leaves no test days")
        per_day = self.config.samples_per_day
        train = self.log.slice(0, train_days * per_day)
        dev = self.log.slice(train_days * per_day, (train_days + dev_days) * per_day)
        test = self.log.slice((train_days + dev_days) * per_day, self.config.total_samples)
        return train, dev, test

    def is_anomalous_day(self, day: int) -> bool:
        return day in self.anomaly_days

    def test_day_labels(self, train_days: int, dev_days: int) -> dict[int, bool]:
        """1-indexed day → anomaly flag for the test period."""
        first_test_day = train_days + dev_days + 1
        return {
            day: self.is_anomalous_day(day)
            for day in range(first_test_day, self.config.days + 1)
        }


# ----------------------------------------------------------------------
# Driver signals
# ----------------------------------------------------------------------
def _component_driver(
    rng: np.random.Generator,
    total: int,
    samples_per_day: int,
    global_driver: np.ndarray,
) -> np.ndarray:
    """Latent analogue driver for one component.

    Day-periodic by construction (the period divides a day and the
    phase is fixed) so that, absent disturbances, every day looks
    statistically like every other — matching the plant's steady
    normal operation.  A shared global driver is mixed in so that even
    cross-component sensor pairs are partially predictable, which
    reproduces the paper's observation that most pairwise BLEU scores
    exceed 60.
    """
    t = np.arange(total)
    divisor = int(rng.choice((4, 6, 8, 12, 16, 24)))
    period = max(8, samples_per_day // divisor)
    phase = rng.uniform(0, 2 * math.pi)
    local = np.sin(2 * math.pi * t / period + phase)
    return 0.55 * local + 0.45 * global_driver


def _global_driver(
    rng: np.random.Generator, total: int, samples_per_day: int
) -> np.ndarray:
    """Plant-wide duty cycle shared by all components (day-periodic)."""
    t = np.arange(total)
    period = max(8, samples_per_day // 3)
    phase = rng.uniform(0, 2 * math.pi)
    return np.sin(2 * math.pi * t / period + phase)


def _sensor_states(
    rng: np.random.Generator,
    driver: np.ndarray,
    kind: str,
    cardinality: int,
    noise_rate: float,
) -> list[str]:
    """Render one sensor's categorical stream from its component driver."""
    total = driver.shape[0]
    delay = int(rng.integers(0, 8))
    signal = np.roll(driver, delay)
    if rng.random() < 0.5:
        signal = -signal

    if kind == "constant":
        return ["OFF"] * total
    if kind == "rare_event":
        # A handful of isolated ON samples per month — the paper's
        # "stable for most of the time with only occasional changes"
        # sensors whose vocabularies stay tiny (Figure 3b's low tail).
        states = np.full(total, "OFF", dtype=object)
        count = max(2, rng.poisson(total / 4000))
        for position in rng.choice(total, size=min(count, total), replace=False):
            states[position] = "ON"
    elif kind == "mostly_off":
        # Rare ON blips when the driver is at an extreme.
        threshold = np.quantile(signal, 0.97)
        states = np.where(signal >= threshold, "ON", "OFF")
    elif kind == "multistate":
        quantiles = np.quantile(signal, np.linspace(0, 1, cardinality + 1)[1:-1])
        states_idx = np.digitize(signal, quantiles)
        states = np.asarray([f"status {int(i) + 1}" for i in states_idx])
    else:  # binary
        threshold = float(np.quantile(signal, rng.uniform(0.35, 0.65)))
        states = np.where(signal >= threshold, "ON", "OFF")

    if noise_rate > 0:
        flips = rng.random(total) < noise_rate
        if flips.any():
            states = states.copy()
            uniques = np.unique(states)
            if len(uniques) > 1:
                for position in np.nonzero(flips)[0]:
                    options = [u for u in uniques if u != states[position]]
                    states[position] = options[int(rng.integers(0, len(options)))]
    return [str(s) for s in states]


def _disagreement(first: list[str], second: list[str]) -> float:
    return sum(a != b for a, b in zip(first, second)) / max(1, len(first))


def _desynchronize(
    rng: np.random.Generator,
    states: list[str],
    start: int,
    stop: int,
    min_disagreement: float = 0.2,
) -> list[str]:
    """Break a sensor's joint behaviour inside ``[start, stop)``.

    The window's states are circularly shifted (or reversed), so the
    sensor keeps its vocabulary and marginal statistics — each sequence
    still looks plausible on its own, as in Figure 2 — but its
    alignment with every peer is destroyed.

    Periodic sensors make naive shifts unreliable: an offset near a
    multiple of the period is a no-op.  Candidate transformations are
    therefore screened and the first one changing at least
    ``min_disagreement`` of the window (or the most-changing one seen)
    is applied.
    """
    stop = min(stop, len(states))
    length = stop - start
    if length < 4:
        return states
    window = states[start:stop]

    candidates: list[list[str]] = [window[::-1]]
    offsets = list(rng.permutation(np.arange(1, length)))
    candidates.extend(window[offset:] + window[:offset] for offset in offsets[:16])
    rng.shuffle(candidates)

    best = max(candidates, key=lambda c: _disagreement(window, c))
    for candidate in candidates:
        if _disagreement(window, candidate) >= min_disagreement:
            best = candidate
            break
    return states[:start] + best + states[stop:]


def generate_plant_dataset(config: PlantConfig | None = None) -> PlantDataset:
    """Simulate the plant and return the log plus ground truth."""
    config = config or PlantConfig()
    rng = np.random.default_rng(config.seed)
    total = config.total_samples
    per_day = config.samples_per_day

    component_names = [f"component_{index}" for index in range(config.num_components)]
    global_driver = _global_driver(rng, total, per_day)
    drivers = {
        name: _component_driver(rng, total, per_day, global_driver)
        for name in component_names
    }

    # Assign sensor kinds by fixed proportions (at least one of each
    # special kind, so every dataset exercises constant-sequence
    # filtering and multi-state encryption), then shuffle.
    def kind_count(fraction: float) -> int:
        return max(1, int(round(fraction * config.num_sensors)))

    kinds = (
        ["constant"] * kind_count(config.constant_fraction)
        + ["mostly_off"] * kind_count(config.mostly_off_fraction)
        + ["rare_event"] * kind_count(config.rare_event_fraction)
        + ["multistate"] * kind_count(config.multistate_fraction)
    )
    kinds += ["binary"] * (config.num_sensors - len(kinds))
    rng.shuffle(kinds)

    # Render every sensor's categorical stream from its component driver.
    sensor_states: dict[str, list[str]] = {}
    component_of: dict[str, str] = {}
    for index in range(config.num_sensors):
        sensor = f"s{index}"
        component = component_names[index % config.num_components]
        component_of[sensor] = component
        kind = kinds[index]
        cardinality = int(rng.integers(3, 8)) if kind == "multistate" else 2
        sensor_states[sensor] = _sensor_states(
            rng, drivers[component], kind, cardinality, config.noise_rate
        )

    # Desynchronize a large sensor subset on anomaly days and a small
    # one on precursor days (the early-warning spikes of Figure 8a).
    sensor_names = list(sensor_states)
    disturbed: dict[int, tuple[str, ...]] = {}
    for day, fraction, duration in [
        *((day, 0.6, config.anomaly_duration_fraction) for day in config.anomaly_days),
        *((day, 0.2, config.precursor_duration_fraction) for day in config.precursor_days),
    ]:
        count = max(2, int(fraction * len(sensor_names)))
        chosen = tuple(rng.choice(sensor_names, size=count, replace=False))
        disturbed[day] = chosen
        start = (day - 1) * per_day + int(config.anomaly_start_fraction * per_day)
        stop = min(start + int(duration * per_day), total)
        for sensor in chosen:
            sensor_states[sensor] = _desynchronize(
                rng, sensor_states[sensor], start, stop
            )

    sequences = [EventSequence(name, states) for name, states in sensor_states.items()]
    return PlantDataset(
        log=MultivariateEventLog(sequences),
        config=config,
        component_of=component_of,
        anomaly_days=config.anomaly_days,
        precursor_days=config.precursor_days,
        disturbed_sensors=disturbed,
    )
