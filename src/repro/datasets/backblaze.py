"""Synthetic Backblaze-style SMART traces (offline substitute).

The real Backblaze dataset cannot be downloaded in this environment, so
this generator reproduces the properties the paper's pipeline relies
on:

- daily records of the 20 common raw SMART attributes per drive;
- cumulative counters that monotonically increase (power-on hours,
  cycle counts) and zero-inflated error counters that stay at zero on
  healthy drives;
- failing drives develop correlated degradation: in a ramp window
  before the failure date the five key error counters (Table III:
  192, 187, 198, 197, 5) begin incrementing together, temperatures
  drift, and seek/read error rates worsen — so cross-feature
  relationships learned on healthy data break right before failure;
- drives are marked failed on their last day of operation and report
  nothing afterwards, matching Backblaze semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .smart import SMART_ATTRIBUTES, SmartAttribute

__all__ = ["BackblazeConfig", "DriveTrace", "BackblazeDataset", "generate_backblaze_dataset"]


@dataclass(frozen=True)
class BackblazeConfig:
    """Configuration of the SMART trace generator.

    The paper analyses 24 Seagate enterprise drives with at least ten
    months of 2018 data, using each drive's last four months (2 train /
    1 development / 1 test).  Defaults mirror that scale with daily
    sampling.
    """

    num_drives: int = 24
    days: int = 360
    failure_fraction: float = 0.5
    silent_failure_fraction: float = 0.25
    ramp_days: int = 12
    incident_rate: float = 0.02
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_drives < 2:
            raise ValueError("need at least 2 drives")
        if self.days < 60:
            raise ValueError("need at least 60 days of history")
        if not 0.0 <= self.failure_fraction <= 1.0:
            raise ValueError("failure_fraction must be in [0, 1]")
        if not 0.0 <= self.silent_failure_fraction <= 1.0:
            raise ValueError("silent_failure_fraction must be in [0, 1]")
        if self.ramp_days < 3:
            raise ValueError("ramp_days must be >= 3")

    @classmethod
    def small(cls, seed: int = 11) -> "BackblazeConfig":
        """Reduced scale for tests."""
        return cls(
            num_drives=8,
            days=150,
            failure_fraction=0.5,
            silent_failure_fraction=0.25,
            ramp_days=12,
            seed=seed,
        )


@dataclass
class DriveTrace:
    """One drive's daily SMART history.

    Attributes
    ----------
    values:
        ``{column: float array of length days_observed}``.
    failed:
        Whether the drive fails; if so its record ends at the failure
        day (the last day of operation, as in Backblaze).
    """

    serial: str
    values: dict[str, np.ndarray]
    failed: bool
    failure_day: int | None

    @property
    def days_observed(self) -> int:
        return len(next(iter(self.values.values())))

    def window(self, start: int, stop: int) -> dict[str, np.ndarray]:
        """Daily values for days ``[start, stop)``."""
        return {name: series[start:stop] for name, series in self.values.items()}

    def last_days(self, count: int) -> dict[str, np.ndarray]:
        """The drive's final ``count`` days (paper: last 4 months)."""
        return self.window(max(0, self.days_observed - count), self.days_observed)


@dataclass
class BackblazeDataset:
    """A population of drive traces plus the generation config."""

    drives: list[DriveTrace]
    config: BackblazeConfig

    def __iter__(self) -> Iterator[DriveTrace]:
        return iter(self.drives)

    def __len__(self) -> int:
        return len(self.drives)

    @property
    def failed_serials(self) -> set[str]:
        return {drive.serial for drive in self.drives if drive.failed}

    def long_history_drives(self, min_days: int = 300) -> list[DriveTrace]:
        """Drives with substantial history (paper: over 10 months)."""
        return [drive for drive in self.drives if drive.days_observed >= min_days]


# ----------------------------------------------------------------------
def _activity_driver(rng: np.random.Generator, days: int) -> np.ndarray:
    """Shared datacenter workload level in [0, 1].

    Weekly seasonality plus slow drift — the latent factor that couples
    activity-driven SMART attributes on healthy drives, giving the
    cross-feature relationships the relationship graph learns.
    """
    t = np.arange(days)
    weekly = 0.5 + 0.35 * np.sin(2 * np.pi * t / 7.0 + rng.uniform(0, 2 * np.pi))
    drift = 0.1 * np.sin(2 * np.pi * t / 90.0 + rng.uniform(0, 2 * np.pi))
    noise = rng.normal(0, 0.015, size=days)
    return np.clip(weekly + drift + noise, 0.0, 1.0)


def _healthy_series(
    rng: np.random.Generator,
    attribute: SmartAttribute,
    days: int,
    activity: np.ndarray,
) -> np.ndarray:
    """Generate a healthy drive's series for one attribute.

    Activity-coupled attributes (load cycles, temperatures, seek/read
    error rates, CRC blips) all derive from the shared ``activity``
    driver, so their discretized categories are mutually predictable —
    the property Algorithm 1 quantifies with BLEU.
    """
    if attribute.smart_id == 9:  # power-on hours: +24 h/day with jitter
        increments = 24.0 - rng.integers(0, 2, size=days)
        return np.cumsum(increments).astype(np.float64)
    if attribute.smart_id in (4, 12):  # start/stop + power cycles: on quiet days
        increments = (rng.random(days) < 0.01 + 0.04 * (1.0 - activity)).astype(np.float64)
        return np.cumsum(increments) + rng.integers(5, 30)
    if attribute.smart_id == 193:  # load cycles track activity
        increments = rng.poisson(2.0 + 14.0 * activity).astype(np.float64)
        return np.cumsum(increments) + rng.integers(100, 1000)
    if attribute.smart_id in (190, 194):  # temperatures track activity
        base = rng.uniform(24, 28) + (1.5 if attribute.smart_id == 190 else 0.0)
        season = 6.0 * activity
        return np.clip(base + season + rng.normal(0, 0.1, size=days), 18, 45).round(1)
    if attribute.smart_id in (1, 7):  # vendor-scaled rates worsen under load
        base = rng.uniform(80, 86)
        return np.clip(base - 8.0 * activity + rng.normal(0, 0.15, size=days), 50, 100).round(2)
    if attribute.smart_id == 3:  # spin-up time: slight load dependence
        base = rng.uniform(92, 96)
        return (base - 2.0 * activity).round(1)
    if attribute.smart_id == 199:  # CRC blips during heavy transfer
        blips = rng.random(days) < 0.08 * activity
        return np.cumsum(blips.astype(np.float64))
    # Remaining error counters start at zero; correlated "benign
    # incident" bursts are layered on afterwards (see
    # :func:`_apply_benign_incidents`).
    return np.zeros(days)


#: Counters that react together to a physical incident (a shock, a
#: power event, a marginal sector) — Table III's key health indicators.
#: Values are per-column participation probabilities.
_INCIDENT_COLUMNS: dict[str, float] = {
    "smart_192": 0.9,
    "smart_187": 0.8,
    "smart_198": 0.8,
    "smart_197": 0.8,
    "smart_5": 0.6,
    "smart_188": 0.4,
}


def _apply_benign_incidents(
    rng: np.random.Generator,
    values: dict[str, np.ndarray],
    days: int,
    incident_rate: float,
) -> None:
    """Layer rare correlated error events onto a healthy drive.

    Each incident elevates a subset of the key counters for a few days.
    Because the counters react *together*, each one's discretized
    language is largely predictable from the others — which is what
    puts these features at the top of the in-degree ranking (Table III)
    — while the incident timing itself stays unpredictable, keeping the
    BLEU scores below the trivial [90, 100] band.

    The raw SMART values of some of these ids are cumulative lifetime
    counts; we render all five as episodic gauges (active during the
    incident, cleared afterwards) so that their *raw-value*
    discretization reproduces the zero-dominated binary scheme the
    paper applies to error counts (see DESIGN.md, "Substitutions").
    """
    incident_days = np.nonzero(rng.random(days) < incident_rate)[0]
    for day in incident_days:
        duration = int(rng.integers(2, 6))
        stop = min(days, day + duration)
        for column, probability in _INCIDENT_COLUMNS.items():
            if rng.random() < probability:
                values[column][day:stop] += float(rng.integers(1, 4))


def _apply_failure_ramp(
    rng: np.random.Generator,
    values: dict[str, np.ndarray],
    failure_day: int,
    ramp_days: int,
) -> None:
    """Degrade the key failure signals in the ramp before failure."""
    start = max(0, failure_day - ramp_days)
    length = failure_day - start
    ramp = np.linspace(0.0, 1.0, length) ** 2

    def bump_counter(column: str, scale: float, cumulative: bool) -> None:
        if column not in values:
            return
        increments = rng.poisson(scale * (0.5 + 3.0 * ramp))
        if cumulative:
            accumulated = np.cumsum(increments)
            values[column][start:failure_day] += accumulated
            if length:
                values[column][failure_day:] += accumulated[-1]
        else:
            values[column][start:failure_day] += increments

    bump_counter("smart_187", 2.0, False)  # reported uncorrectable
    bump_counter("smart_197", 3.0, False)  # pending sectors
    bump_counter("smart_198", 2.0, False)  # offline uncorrectable
    bump_counter("smart_5", 1.5, False)    # reallocated sectors
    bump_counter("smart_192", 1.0, False)  # power-off retracts
    bump_counter("smart_188", 0.8, False)  # command timeouts
    bump_counter("smart_199", 0.5, True)   # CRC errors

    # Analogue signals drift in the same window.
    if "smart_194" in values:
        values["smart_194"][start:failure_day] += 4.0 * ramp
    if "smart_190" in values:
        values["smart_190"][start:failure_day] += 3.0 * ramp
    for column in ("smart_1", "smart_7"):
        if column in values:
            values[column][start:failure_day] -= 10.0 * ramp


def generate_backblaze_dataset(config: BackblazeConfig | None = None) -> BackblazeDataset:
    """Generate the synthetic drive population."""
    config = config or BackblazeConfig()
    rng = np.random.default_rng(config.seed)
    drives: list[DriveTrace] = []
    num_failed = int(round(config.failure_fraction * config.num_drives))

    for index in range(config.num_drives):
        serial = f"Z{index:06d}"
        fails = index < num_failed
        silent = fails and index < num_failed * config.silent_failure_fraction
        drive_rng = np.random.default_rng(rng.integers(0, 2**63))
        activity = _activity_driver(drive_rng, config.days)
        values = {
            attribute.column: _healthy_series(drive_rng, attribute, config.days, activity)
            for attribute in SMART_ATTRIBUTES
        }
        _apply_benign_incidents(drive_rng, values, config.days, config.incident_rate)
        failure_day: int | None = None
        if fails:
            # Fail somewhere in the final sixth so every drive keeps a
            # long healthy history for training.
            failure_day = int(drive_rng.integers(int(config.days * 0.9), config.days))
            if not silent:
                # Silent failures (a substantial share of real HDD
                # failures) show no SMART degradation before dying —
                # these are the drives no SMART-based detector recalls.
                _apply_failure_ramp(drive_rng, values, failure_day, config.ramp_days)
            values = {name: series[:failure_day] for name, series in values.items()}
        drives.append(
            DriveTrace(serial=serial, values=values, failed=fails, failure_day=failure_day)
        )
    return BackblazeDataset(drives=drives, config=config)
