"""Dataset generators and preprocessing (plant + Backblaze substitutes)."""

from .backblaze import (
    BackblazeConfig,
    BackblazeDataset,
    DriveTrace,
    generate_backblaze_dataset,
)
from .discretize import (
    BinaryDiscretizer,
    Discretizer,
    QuantileDiscretizer,
    discretize_records,
    fit_discretizers,
)
from .features import (
    BaselineMatrix,
    baseline_feature_names,
    build_baseline_matrix,
    first_difference,
)
from .inject import (
    desynchronize,
    freeze,
    replace_events,
    swap_sensors,
    validate_windows,
)
from .io import (
    load_backblaze_dataset,
    load_plant_dataset,
    save_backblaze_dataset,
    save_plant_dataset,
)
from .plant import PlantConfig, PlantDataset, generate_plant_dataset
from .smart import (
    BARELY_CHANGING_ATTRIBUTES,
    KEY_FAILURE_ATTRIBUTES,
    SMART_ATTRIBUTES,
    SmartAttribute,
    cumulative_attribute_names,
    framework_attribute_names,
    raw_attribute_names,
)

__all__ = [
    "BARELY_CHANGING_ATTRIBUTES",
    "BackblazeConfig",
    "BackblazeDataset",
    "BaselineMatrix",
    "BinaryDiscretizer",
    "Discretizer",
    "DriveTrace",
    "KEY_FAILURE_ATTRIBUTES",
    "PlantConfig",
    "PlantDataset",
    "QuantileDiscretizer",
    "SMART_ATTRIBUTES",
    "SmartAttribute",
    "baseline_feature_names",
    "build_baseline_matrix",
    "cumulative_attribute_names",
    "desynchronize",
    "discretize_records",
    "first_difference",
    "fit_discretizers",
    "framework_attribute_names",
    "freeze",
    "generate_backblaze_dataset",
    "generate_plant_dataset",
    "load_backblaze_dataset",
    "load_plant_dataset",
    "raw_attribute_names",
    "replace_events",
    "save_backblaze_dataset",
    "save_plant_dataset",
    "swap_sensors",
    "validate_windows",
]
