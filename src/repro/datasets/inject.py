"""Anomaly injection on arbitrary event logs.

The plant simulator injects its own ground-truth anomalies; users
evaluating the framework on *their* data need the same capability.
Three injectors cover the interesting anomaly classes:

- :func:`desynchronize` — shift/reverse a sensor's timing within a
  window; marginals preserved, joint behaviour broken (the paper's
  Figure 2 class; invisible to univariate detectors);
- :func:`freeze` — hold the entry state for a window (stuck sensor);
- :func:`swap_sensors` — exchange two sensors' streams for a window
  (miswired instrumentation).

All injectors are pure: they return a new log.
"""

from __future__ import annotations

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = ["desynchronize", "freeze", "swap_sensors"]


def _check_window(log: MultivariateEventLog, start: int, stop: int) -> None:
    if not 0 <= start < stop <= log.num_samples:
        raise ValueError(
            f"invalid window [{start}, {stop}) for log of {log.num_samples} samples"
        )


def _replace(
    log: MultivariateEventLog, replacements: dict[str, list[str]]
) -> MultivariateEventLog:
    return MultivariateEventLog(
        EventSequence(seq.sensor, replacements.get(seq.sensor, list(seq.events)))
        for seq in log
    )


def desynchronize(
    log: MultivariateEventLog,
    sensors: list[str],
    start: int,
    stop: int,
    seed: int = 0,
) -> MultivariateEventLog:
    """Circularly shift (or reverse) each sensor's window content.

    The shifted sensor keeps its exact state multiset inside the
    window, so its marginal statistics are untouched.
    """
    _check_window(log, start, stop)
    rng = np.random.default_rng(seed)
    replacements: dict[str, list[str]] = {}
    for name in sensors:
        events = list(log[name].events)
        window = events[start:stop]
        if len(window) >= 4:
            if rng.random() < 0.5:
                offset = int(rng.integers(len(window) // 3, 2 * len(window) // 3 + 1))
                window = window[offset:] + window[:offset]
            else:
                window = window[::-1]
        events[start:stop] = window
        replacements[name] = events
    return _replace(log, replacements)


def freeze(
    log: MultivariateEventLog, sensors: list[str], start: int, stop: int
) -> MultivariateEventLog:
    """Hold each sensor at its window-entry state (a stuck sensor)."""
    _check_window(log, start, stop)
    replacements: dict[str, list[str]] = {}
    for name in sensors:
        events = list(log[name].events)
        events[start:stop] = [events[start]] * (stop - start)
        replacements[name] = events
    return _replace(log, replacements)


def swap_sensors(
    log: MultivariateEventLog, first: str, second: str, start: int, stop: int
) -> MultivariateEventLog:
    """Exchange two sensors' streams inside a window (miswiring)."""
    _check_window(log, start, stop)
    first_events = list(log[first].events)
    second_events = list(log[second].events)
    first_events[start:stop], second_events[start:stop] = (
        second_events[start:stop],
        first_events[start:stop],
    )
    return _replace(log, {first: first_events, second: second_events})
