"""Anomaly injection on arbitrary event logs.

The plant simulator injects its own ground-truth anomalies; users
evaluating the framework on *their* data need the same capability.
Three injectors cover the interesting anomaly classes:

- :func:`desynchronize` — shift/reverse a sensor's timing within a
  window; marginals preserved, joint behaviour broken (the paper's
  Figure 2 class; invisible to univariate detectors);
- :func:`freeze` — hold the entry state for a window (stuck sensor);
- :func:`swap_sensors` — exchange two sensors' streams for a window
  (miswired instrumentation).

Two helpers back them (and the scenario generators layered on top):

- :func:`validate_windows` — reject zero-length, inverted,
  out-of-range and mutually overlapping injection windows up front, so
  composed injections can never silently produce unlabeled overlaps;
- :func:`replace_events` — rebuild a log with some sensors' streams
  replaced.  Untouched sensors keep their interned code rows and
  :class:`~repro.core.StateTable` objects (no re-interning, no
  copy-vs-view aliasing risk: the new log stacks codes into its own
  :class:`~repro.core.EventFrame`), while replaced sensors are
  re-interned so their tables stay consistent with their new streams.

All injectors are pure: they return a new log.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = [
    "desynchronize",
    "freeze",
    "replace_events",
    "swap_sensors",
    "validate_windows",
]


def _check_window(log: MultivariateEventLog, start: int, stop: int) -> None:
    if start == stop:
        raise ValueError(
            f"zero-length injection window [{start}, {stop}); an injection "
            "must cover at least one sample (start < stop)"
        )
    if start > stop:
        raise ValueError(
            f"inverted injection window [{start}, {stop}); start must be "
            "strictly below stop"
        )
    if start < 0 or stop > log.num_samples:
        raise ValueError(
            f"injection window [{start}, {stop}) outside the log's "
            f"[0, {log.num_samples}) sample range"
        )


def validate_windows(
    log: MultivariateEventLog, windows: Iterable[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Validate a set of injection windows against ``log``.

    Every window must be non-empty, correctly ordered and inside the
    log; no two windows may overlap (overlapping injections would
    compose in application order and yield samples whose ground-truth
    label is ambiguous).  Returns the windows sorted by start.
    """
    ordered = sorted((int(start), int(stop)) for start, stop in windows)
    for start, stop in ordered:
        _check_window(log, start, stop)
    for (_, previous_stop), (start, stop) in zip(ordered, ordered[1:]):
        if start < previous_stop:
            raise ValueError(
                f"overlapping injection windows: [{start}, {stop}) starts "
                f"before a previous window ends at {previous_stop}; "
                "injection windows must be disjoint"
            )
    return ordered


def replace_events(
    log: MultivariateEventLog, replacements: Mapping[str, Sequence[str]]
) -> MultivariateEventLog:
    """Return a new log with the named sensors' streams replaced.

    Replaced sensors are re-interned from their new event strings, so
    their :class:`~repro.core.StateTable` always matches the stream
    they carry.  Untouched sensors reuse their existing code rows and
    table objects as-is — the new log copies the codes into its own
    frame at construction, so neither log can alias the other's data.
    """
    unknown = [name for name in replacements if name not in log]
    if unknown:
        raise KeyError(f"unknown sensors in replacements: {unknown}")
    for name, events in replacements.items():
        if len(events) != log.num_samples:
            raise ValueError(
                f"replacement for {name!r} has {len(events)} events; "
                f"the log is {log.num_samples} samples long"
            )
    return MultivariateEventLog(
        EventSequence(seq.sensor, replacements[seq.sensor])
        if seq.sensor in replacements
        else EventSequence.from_codes(seq.sensor, seq.codes, seq.table)
        for seq in log
    )


def desynchronize(
    log: MultivariateEventLog,
    sensors: list[str],
    start: int,
    stop: int,
    seed: int = 0,
) -> MultivariateEventLog:
    """Circularly shift (or reverse) each sensor's window content.

    The shifted sensor keeps its exact state multiset inside the
    window, so its marginal statistics are untouched.
    """
    _check_window(log, start, stop)
    rng = np.random.default_rng(seed)
    replacements: dict[str, list[str]] = {}
    for name in sensors:
        events = list(log[name].events)
        window = events[start:stop]
        if len(window) >= 4:
            if rng.random() < 0.5:
                offset = int(rng.integers(len(window) // 3, 2 * len(window) // 3 + 1))
                window = window[offset:] + window[:offset]
            else:
                window = window[::-1]
        events[start:stop] = window
        replacements[name] = events
    return replace_events(log, replacements)


def freeze(
    log: MultivariateEventLog, sensors: list[str], start: int, stop: int
) -> MultivariateEventLog:
    """Hold each sensor at its window-entry state (a stuck sensor)."""
    _check_window(log, start, stop)
    replacements: dict[str, list[str]] = {}
    for name in sensors:
        events = list(log[name].events)
        events[start:stop] = [events[start]] * (stop - start)
        replacements[name] = events
    return replace_events(log, replacements)


def swap_sensors(
    log: MultivariateEventLog, first: str, second: str, start: int, stop: int
) -> MultivariateEventLog:
    """Exchange two sensors' streams inside a window (miswiring)."""
    _check_window(log, start, stop)
    if first == second:
        raise ValueError(f"cannot swap sensor {first!r} with itself")
    first_events = list(log[first].events)
    second_events = list(log[second].events)
    first_events[start:stop], second_events[start:stop] = (
        second_events[start:stop],
        first_events[start:stop],
    )
    return replace_events(log, {first: first_events, second: second_events})
