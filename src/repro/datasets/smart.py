"""SMART attribute catalogue for the HDD case study (Section IV).

The paper restricts Backblaze to the 20 raw SMART features recorded by
all drive types, differences the 14 cumulative ones into daily deltas
(34 features for the baselines), and feeds the 20 raw features to the
framework after dropping 4 that barely change — leaving 16 graph nodes.
Table III identifies five error counters as the top health indicators.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SmartAttribute",
    "SMART_ATTRIBUTES",
    "KEY_FAILURE_ATTRIBUTES",
    "BARELY_CHANGING_ATTRIBUTES",
    "raw_attribute_names",
    "cumulative_attribute_names",
    "framework_attribute_names",
]


@dataclass(frozen=True)
class SmartAttribute:
    """One SMART attribute and how it behaves over a drive's life."""

    smart_id: int
    name: str
    cumulative: bool
    zero_inflated: bool
    description: str

    @property
    def column(self) -> str:
        return f"smart_{self.smart_id}"


#: The 20 raw attributes recorded for all drive types (paper, IV-B).
SMART_ATTRIBUTES: tuple[SmartAttribute, ...] = (
    SmartAttribute(1, "Read Error Rate", False, False, "Vendor-scaled read error rate."),
    SmartAttribute(3, "Spin-Up Time", False, False, "Average time to spin up the platters."),
    SmartAttribute(4, "Start/Stop Count", True, False, "Count of spindle start/stop cycles."),
    SmartAttribute(5, "Reallocated Sectors Count", True, True, "Bad sectors found and remapped."),
    SmartAttribute(7, "Seek Error Rate", False, False, "Vendor-scaled seek error rate."),
    SmartAttribute(9, "Power-On Hours", True, False, "Cumulative powered-on time."),
    SmartAttribute(10, "Spin Retry Count", True, True, "Retries needed to spin up."),
    SmartAttribute(12, "Power Cycle Count", True, False, "Count of full power cycles."),
    SmartAttribute(183, "SATA Downshift Errors", True, True, "Interface speed downshift events."),
    SmartAttribute(184, "End-to-End Errors", True, True, "Parity errors between cache and host."),
    SmartAttribute(187, "Reported Uncorrectable Errors", True, True, "Errors not recoverable by ECC."),
    SmartAttribute(188, "Command Timeout", True, True, "Aborted operations due to timeout."),
    SmartAttribute(189, "High Fly Writes", True, True, "Head flying outside normal range."),
    SmartAttribute(190, "Airflow Temperature", False, False, "Drive airflow temperature (°C)."),
    SmartAttribute(192, "Power-off Retract Count", True, True, "Power-off or emergency retract cycles."),
    SmartAttribute(193, "Load Cycle Count", True, False, "Head load/unload cycles."),
    SmartAttribute(194, "Temperature", False, False, "Internal drive temperature (°C)."),
    SmartAttribute(197, "Current Pending Sector Count", False, True, "Unstable sectors awaiting remap."),
    SmartAttribute(198, "Offline Uncorrectable Sector Count", True, True, "Uncorrectable sector reads/writes."),
    SmartAttribute(199, "UDMA CRC Error Count", True, True, "Interface CRC transfer errors."),
)

#: Table III's five critical health indicators.
KEY_FAILURE_ATTRIBUTES: tuple[int, ...] = (192, 187, 198, 197, 5)

#: Attributes whose values "are barely changed in the year" and are
#: removed before graph construction (paper IV-C): four quiet counters.
BARELY_CHANGING_ATTRIBUTES: tuple[int, ...] = (10, 184, 189, 183)


def raw_attribute_names() -> list[str]:
    """Column names of all 20 raw attributes."""
    return [attribute.column for attribute in SMART_ATTRIBUTES]


def cumulative_attribute_names() -> list[str]:
    """Columns of the 14 cumulative attributes (differenced for baselines)."""
    return [attribute.column for attribute in SMART_ATTRIBUTES if attribute.cumulative]


def framework_attribute_names() -> list[str]:
    """The 16 columns fed to the relationship graph (20 raw − 4 quiet)."""
    quiet = {f"smart_{smart_id}" for smart_id in BARELY_CHANGING_ATTRIBUTES}
    return [name for name in raw_attribute_names() if name not in quiet]
