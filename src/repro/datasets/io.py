"""Persisting generated datasets to disk.

Benchmarks regenerate datasets from seeds, but users adapting the
library to their own systems need file formats: the plant dataset saves
as the event-log CSV plus a ground-truth JSON sidecar; the drive
population saves as one SMART CSV per drive plus a manifest.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from .backblaze import BackblazeConfig, BackblazeDataset, DriveTrace
from .plant import PlantConfig, PlantDataset
from ..lang.events import MultivariateEventLog

__all__ = [
    "save_plant_dataset",
    "load_plant_dataset",
    "save_backblaze_dataset",
    "load_backblaze_dataset",
]


def save_plant_dataset(dataset: PlantDataset, directory: str | Path) -> Path:
    """Write ``events.csv`` and ``ground_truth.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dataset.log.to_csv(directory / "events.csv")
    ground_truth = {
        "config": {
            "num_sensors": dataset.config.num_sensors,
            "days": dataset.config.days,
            "samples_per_day": dataset.config.samples_per_day,
            "anomaly_days": list(dataset.config.anomaly_days),
            "precursor_days": list(dataset.config.precursor_days),
            "num_components": dataset.config.num_components,
            "seed": dataset.config.seed,
        },
        "component_of": dataset.component_of,
        "disturbed_sensors": {
            str(day): list(sensors)
            for day, sensors in dataset.disturbed_sensors.items()
        },
    }
    (directory / "ground_truth.json").write_text(json.dumps(ground_truth, indent=2))
    return directory


def load_plant_dataset(directory: str | Path) -> PlantDataset:
    """Load a dataset written by :func:`save_plant_dataset`."""
    directory = Path(directory)
    log = MultivariateEventLog.from_csv(directory / "events.csv")
    payload = json.loads((directory / "ground_truth.json").read_text())
    config_data = payload["config"]
    config = PlantConfig(
        num_sensors=config_data["num_sensors"],
        days=config_data["days"],
        samples_per_day=config_data["samples_per_day"],
        anomaly_days=tuple(config_data["anomaly_days"]),
        precursor_days=tuple(config_data["precursor_days"]),
        num_components=config_data["num_components"],
        seed=config_data["seed"],
    )
    return PlantDataset(
        log=log,
        config=config,
        component_of=payload["component_of"],
        anomaly_days=config.anomaly_days,
        precursor_days=config.precursor_days,
        disturbed_sensors={
            int(day): tuple(sensors)
            for day, sensors in payload["disturbed_sensors"].items()
        },
    )


def save_backblaze_dataset(dataset: BackblazeDataset, directory: str | Path) -> Path:
    """Write one ``<serial>.csv`` per drive plus ``manifest.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for drive in dataset.drives:
        columns = sorted(drive.values)
        with (directory / f"{drive.serial}.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["day"] + columns)
            for day in range(drive.days_observed):
                writer.writerow(
                    [day] + [repr(float(drive.values[c][day])) for c in columns]
                )
    manifest = {
        "config": {
            "num_drives": dataset.config.num_drives,
            "days": dataset.config.days,
            "failure_fraction": dataset.config.failure_fraction,
            "silent_failure_fraction": dataset.config.silent_failure_fraction,
            "ramp_days": dataset.config.ramp_days,
            "incident_rate": dataset.config.incident_rate,
            "seed": dataset.config.seed,
        },
        "drives": [
            {
                "serial": drive.serial,
                "failed": drive.failed,
                "failure_day": drive.failure_day,
            }
            for drive in dataset.drives
        ],
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_backblaze_dataset(directory: str | Path) -> BackblazeDataset:
    """Load a population written by :func:`save_backblaze_dataset`."""
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    config_data = manifest["config"]
    config = BackblazeConfig(
        num_drives=config_data["num_drives"],
        days=config_data["days"],
        failure_fraction=config_data["failure_fraction"],
        silent_failure_fraction=config_data["silent_failure_fraction"],
        ramp_days=config_data["ramp_days"],
        incident_rate=config_data["incident_rate"],
        seed=config_data["seed"],
    )
    drives = []
    for entry in manifest["drives"]:
        path = directory / f"{entry['serial']}.csv"
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            columns: dict[str, list[float]] = {name: [] for name in header[1:]}
            for row in reader:
                for name, value in zip(header[1:], row[1:]):
                    columns[name].append(float(value))
        drives.append(
            DriveTrace(
                serial=entry["serial"],
                values={name: np.asarray(values) for name, values in columns.items()},
                failed=entry["failed"],
                failure_day=entry["failure_day"],
            )
        )
    return BackblazeDataset(drives=drives, config=config)
