"""Persisting generated datasets to disk, and streaming them back.

Benchmarks regenerate datasets from seeds, but users adapting the
library to their own systems need file formats: the plant dataset saves
as the event-log CSV plus a ground-truth JSON sidecar; the drive
population saves as one SMART CSV per drive plus a manifest.

Loading is chunked and hardened.  :func:`iter_event_chunks` streams a
one-column-per-sensor event CSV as ``{sensor: [state, ...]}`` blocks
for :class:`~repro.core.EventFrameBuilder`, so a log is never resident
as Python strings all at once; :func:`iter_drive_traces` streams a
saved drive population one :class:`DriveTrace` at a time.  Messy input
is either repaired or rejected with a distinct, actionable error:

- a UTF-8 byte-order mark is stripped (files are opened with
  ``utf-8-sig``) — *repair*;
- completely blank lines are skipped — *repair*;
- ragged rows (wrong column count) raise :class:`RaggedRowError`
  naming the file, 1-based row number and expected/actual arity;
- duplicate header columns raise :class:`HeaderError`;
- a missing or empty header raises :class:`HeaderError`;
- per-drive SMART streams validate the ``day`` column: a repeated day
  raises :class:`TimestampError` ("duplicate"), a decreasing day
  raises :class:`TimestampError` ("out-of-order"), and non-numeric
  values raise :class:`TimestampError` naming the offending cell.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator

import numpy as np

from .backblaze import BackblazeConfig, BackblazeDataset, DriveTrace
from .plant import PlantConfig, PlantDataset
from ..lang.events import MultivariateEventLog

__all__ = [
    "HeaderError",
    "RaggedRowError",
    "TimestampError",
    "iter_event_chunks",
    "iter_drive_traces",
    "save_plant_dataset",
    "load_plant_dataset",
    "save_backblaze_dataset",
    "load_backblaze_dataset",
]

#: Default rows per chunk for the streaming readers.
DEFAULT_CHUNK_SIZE = 4096


class HeaderError(ValueError):
    """A CSV header is missing, empty, or names a sensor twice."""


class RaggedRowError(ValueError):
    """A CSV data row does not match the header's column count."""


class TimestampError(ValueError):
    """A per-drive SMART stream's day column is not strictly increasing."""


# ----------------------------------------------------------------------
# Chunked event-log reader
# ----------------------------------------------------------------------
def _read_header(reader: "csv.reader", path: Path) -> list[str]:
    header = next(reader, None)
    if header is None or not any(cell.strip() for cell in header):
        raise HeaderError(f"{path}: missing or empty CSV header row")
    duplicates = sorted({name for name in header if header.count(name) > 1})
    if duplicates:
        raise HeaderError(f"{path}: duplicate header column(s) {duplicates}")
    return header


def iter_event_chunks(
    path: "str | Path", chunk_size: int | None = DEFAULT_CHUNK_SIZE
) -> Iterator[dict[str, list[str]]]:
    """Stream an event CSV as ``{sensor: [state, ...]}`` chunks.

    Each yielded chunk covers up to ``chunk_size`` consecutive rows
    (``None`` means the whole file in one chunk); the first chunk is
    always yielded — possibly with empty columns — so a data-less file
    still communicates its sensor set.  See the module docstring for
    the repair/reject policy on messy input.
    """
    path = Path(path)
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    # utf-8-sig transparently strips a leading BOM (documented repair);
    # BOM-less files read identically.
    with path.open(newline="", encoding="utf-8-sig") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        columns: list[list[str]] = [[] for _ in header]
        filled = 0
        yielded = False
        for number, row in enumerate(reader, start=2):
            if not row:  # blank line (documented repair: skipped)
                continue
            if len(row) != len(header):
                raise RaggedRowError(
                    f"{path}: ragged CSV row {number}: expected "
                    f"{len(header)} column(s), got {len(row)}"
                )
            for column, value in zip(columns, row):
                column.append(value)
            filled += 1
            if chunk_size is not None and filled >= chunk_size:
                yield dict(zip(header, columns))
                columns = [[] for _ in header]
                filled = 0
                yielded = True
        if filled or not yielded:
            yield dict(zip(header, columns))


# ----------------------------------------------------------------------
# Plant dataset
# ----------------------------------------------------------------------
def save_plant_dataset(dataset: PlantDataset, directory: str | Path) -> Path:
    """Write ``events.csv`` and ``ground_truth.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dataset.log.to_csv(directory / "events.csv")
    ground_truth = {
        "config": {
            "num_sensors": dataset.config.num_sensors,
            "days": dataset.config.days,
            "samples_per_day": dataset.config.samples_per_day,
            "anomaly_days": list(dataset.config.anomaly_days),
            "precursor_days": list(dataset.config.precursor_days),
            "num_components": dataset.config.num_components,
            "seed": dataset.config.seed,
        },
        "component_of": dataset.component_of,
        "disturbed_sensors": {
            str(day): list(sensors)
            for day, sensors in dataset.disturbed_sensors.items()
        },
    }
    (directory / "ground_truth.json").write_text(json.dumps(ground_truth, indent=2))
    return directory


def load_plant_dataset(
    directory: str | Path, chunk_size: int | None = None
) -> PlantDataset:
    """Load a dataset written by :func:`save_plant_dataset`.

    ``chunk_size`` streams the event CSV through the chunked ingest
    path (bit-identical to the in-memory load).
    """
    directory = Path(directory)
    log = MultivariateEventLog.from_csv(directory / "events.csv", chunk_size=chunk_size)
    payload = json.loads((directory / "ground_truth.json").read_text())
    config_data = payload["config"]
    config = PlantConfig(
        num_sensors=config_data["num_sensors"],
        days=config_data["days"],
        samples_per_day=config_data["samples_per_day"],
        anomaly_days=tuple(config_data["anomaly_days"]),
        precursor_days=tuple(config_data["precursor_days"]),
        num_components=config_data["num_components"],
        seed=config_data["seed"],
    )
    return PlantDataset(
        log=log,
        config=config,
        component_of=payload["component_of"],
        anomaly_days=config.anomaly_days,
        precursor_days=config.precursor_days,
        disturbed_sensors={
            int(day): tuple(sensors)
            for day, sensors in payload["disturbed_sensors"].items()
        },
    )


# ----------------------------------------------------------------------
# Backblaze drive population
# ----------------------------------------------------------------------
def _save_drive_csv(drive: DriveTrace, directory: Path) -> Path:
    """Write one drive's SMART history as ``<serial>.csv``."""
    columns = sorted(drive.values)
    path = directory / f"{drive.serial}.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["day"] + columns)
        for day in range(drive.days_observed):
            writer.writerow(
                [day] + [repr(float(drive.values[c][day])) for c in columns]
            )
    return path


def save_backblaze_dataset(dataset: BackblazeDataset, directory: str | Path) -> Path:
    """Write one ``<serial>.csv`` per drive plus ``manifest.json``.

    Drives are written strictly one at a time — each trace's rows are
    rendered and flushed before the next drive is touched — so saving a
    lazily generated population never needs every trace list resident.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries: list[dict] = []
    for drive in dataset:
        _save_drive_csv(drive, directory)
        entries.append(
            {
                "serial": drive.serial,
                "failed": drive.failed,
                "failure_day": drive.failure_day,
            }
        )
    manifest = {
        "config": {
            "num_drives": dataset.config.num_drives,
            "days": dataset.config.days,
            "failure_fraction": dataset.config.failure_fraction,
            "silent_failure_fraction": dataset.config.silent_failure_fraction,
            "ramp_days": dataset.config.ramp_days,
            "incident_rate": dataset.config.incident_rate,
            "seed": dataset.config.seed,
        },
        "drives": entries,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def _read_drive_csv(path: Path) -> dict[str, np.ndarray]:
    """Stream one per-drive SMART CSV into float arrays.

    Validates row arity (:class:`RaggedRowError`) and the ``day``
    column's strict monotonicity (:class:`TimestampError` with distinct
    duplicate/out-of-order messages); blank lines and a BOM are
    repaired as in :func:`iter_event_chunks`.
    """
    with path.open(newline="", encoding="utf-8-sig") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        if header[0] != "day":
            raise HeaderError(
                f"{path}: first column must be 'day', got {header[0]!r}"
            )
        names = header[1:]
        columns: dict[str, list[float]] = {name: [] for name in names}
        previous_day: int | None = None
        for number, row in enumerate(reader, start=2):
            if not row:  # blank line (documented repair: skipped)
                continue
            if len(row) != len(header):
                raise RaggedRowError(
                    f"{path}: ragged CSV row {number}: expected "
                    f"{len(header)} column(s), got {len(row)}"
                )
            try:
                day = int(row[0])
            except ValueError as error:
                raise TimestampError(
                    f"{path}: row {number}: day {row[0]!r} is not an integer"
                ) from error
            if previous_day is not None:
                if day == previous_day:
                    raise TimestampError(
                        f"{path}: row {number}: duplicate timestamp day {day}"
                    )
                if day < previous_day:
                    raise TimestampError(
                        f"{path}: row {number}: out-of-order timestamp day "
                        f"{day} after day {previous_day}"
                    )
            previous_day = day
            for name, value in zip(names, row[1:]):
                try:
                    columns[name].append(float(value))
                except ValueError as error:
                    raise ValueError(
                        f"{path}: row {number}: column {name!r} value "
                        f"{value!r} is not a number"
                    ) from error
    return {name: np.asarray(values, dtype=np.float64) for name, values in columns.items()}


def iter_drive_traces(directory: str | Path) -> Iterator[DriveTrace]:
    """Stream a saved population one :class:`DriveTrace` at a time.

    Reads ``manifest.json`` once, then parses each drive's CSV lazily,
    so consumers that process drives independently (the per-drive HDD
    pipeline, fleet sharding) never hold more than one trace's arrays.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    for entry in manifest["drives"]:
        values = _read_drive_csv(directory / f"{entry['serial']}.csv")
        yield DriveTrace(
            serial=entry["serial"],
            values=values,
            failed=entry["failed"],
            failure_day=entry["failure_day"],
        )


def load_backblaze_dataset(directory: str | Path) -> BackblazeDataset:
    """Load a population written by :func:`save_backblaze_dataset`.

    Materialises the full :class:`BackblazeDataset`; use
    :func:`iter_drive_traces` to stream drives without holding every
    trace list in memory.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    config_data = manifest["config"]
    config = BackblazeConfig(
        num_drives=config_data["num_drives"],
        days=config_data["days"],
        failure_fraction=config_data["failure_fraction"],
        silent_failure_fraction=config_data["silent_failure_fraction"],
        ramp_days=config_data["ramp_days"],
        incident_rate=config_data["incident_rate"],
        seed=config_data["seed"],
    )
    return BackblazeDataset(drives=list(iter_drive_traces(directory)), config=config)
