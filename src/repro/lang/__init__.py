"""Sensor "language" construction (Section II-A of the paper).

Transforms multivariate discrete event sequences into per-sensor
languages: constant sequences are filtered, events are encrypted into
characters, characters are windowed into words, and words into
sentences; aligned sentence pairs form parallel corpora for the
translation models.
"""

from ..core import EventFrame, StateTable
from .corpus import (
    REPRESENTATIONS,
    LanguageConfig,
    MultiLanguageCorpus,
    ParallelCorpus,
    SensorLanguage,
    filter_constant_sensors,
)
from .encryption import ALPHABET, UNKNOWN_CHAR, SensorEncoder
from .events import EventSequence, MultivariateEventLog
from .statistics import (
    LanguageStatistics,
    language_statistics,
    type_token_ratio,
    word_entropy,
)
from .vocabulary import BOS, EOS, PAD, UNK, Vocabulary
from .windows import (
    ShortSequenceWarning,
    generate_code_sentences,
    generate_sentences,
    generate_word_codes,
    generate_words,
    num_windows,
    sliding_windows,
)

__all__ = [
    "ALPHABET",
    "BOS",
    "EOS",
    "EventFrame",
    "EventSequence",
    "LanguageConfig",
    "LanguageStatistics",
    "MultiLanguageCorpus",
    "MultivariateEventLog",
    "PAD",
    "ParallelCorpus",
    "REPRESENTATIONS",
    "SensorEncoder",
    "SensorLanguage",
    "ShortSequenceWarning",
    "StateTable",
    "UNK",
    "UNKNOWN_CHAR",
    "Vocabulary",
    "filter_constant_sensors",
    "generate_code_sentences",
    "generate_sentences",
    "generate_word_codes",
    "generate_words",
    "language_statistics",
    "num_windows",
    "sliding_windows",
    "type_token_ratio",
    "word_entropy",
]
