"""Sensor languages and parallel corpora.

Ties the encryption and windowing steps together: a
:class:`SensorLanguage` is one sensor's corpus of sentences plus its
fitted encoder and vocabulary; a :class:`MultiLanguageCorpus` holds one
language per (non-constant) sensor; a :class:`ParallelCorpus` aligns two
languages' sentences by time index so an NMT model can be trained on
(source sentence, target sentence) pairs.

Languages carry a *representation*:

- ``"codes"`` (default) — the columnar path: sentences are tuples of
  packed integer word keys computed from the interned ``uint16`` code
  arrays with zero-copy sliding windows.  Word keys are bijective with
  the legacy word strings, so vocabularies, translation models and
  BLEU scores are bit-identical to the string path — just faster.
- ``"strings"`` — the legacy path: sentences are tuples of encrypted
  character strings.  Kept as the compatibility/benchmark reference.

The two representations must not be mixed within one fitted graph; a
:class:`ParallelCorpus` refuses to align languages that disagree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .encryption import SensorEncoder
from .events import EventSequence, MultivariateEventLog
from .vocabulary import Vocabulary
from .windows import (
    generate_code_sentences,
    generate_sentences,
    generate_word_codes,
    generate_words,
)

__all__ = [
    "LanguageConfig",
    "REPRESENTATIONS",
    "SensorLanguage",
    "MultiLanguageCorpus",
    "ParallelCorpus",
    "filter_constant_sensors",
    "iter_languages",
]

#: Supported sentence representations.
REPRESENTATIONS = ("codes", "strings")


@dataclass(frozen=True)
class LanguageConfig:
    """Windowing parameters for language generation (Section II-A2).

    Defaults are the paper's physical-plant settings: 10-character
    words with stride 1, 20-word sentences with no overlap.
    """

    word_size: int = 10
    word_stride: int = 1
    sentence_length: int = 20
    sentence_stride: int | None = None

    def __post_init__(self) -> None:
        if self.word_size < 1 or self.word_stride < 1:
            raise ValueError("word_size and word_stride must be >= 1")
        if self.sentence_length < 1:
            raise ValueError("sentence_length must be >= 1")
        if self.sentence_stride is not None and self.sentence_stride < 1:
            raise ValueError("sentence_stride must be >= 1 when given")

    @property
    def effective_sentence_stride(self) -> int:
        """Sentence stride, defaulting to non-overlapping sentences."""
        return self.sentence_length if self.sentence_stride is None else self.sentence_stride

    def samples_per_sentence(self) -> int:
        """Raw samples consumed by the first sentence of a sequence."""
        return self.word_size + (self.sentence_length - 1) * self.word_stride

    @classmethod
    def plant(cls) -> "LanguageConfig":
        """The paper's physical-plant settings (word 10/1, sentence 20/20)."""
        return cls(word_size=10, word_stride=1, sentence_length=20, sentence_stride=None)

    @classmethod
    def backblaze(cls) -> "LanguageConfig":
        """The paper's HDD settings (word 5/1, sentence 7/1)."""
        return cls(word_size=5, word_stride=1, sentence_length=7, sentence_stride=1)


def _check_representation(representation: str) -> str:
    if representation not in REPRESENTATIONS:
        raise ValueError(
            f"unknown representation {representation!r}; choose from {REPRESENTATIONS}"
        )
    return representation


class SensorLanguage:
    """One sensor's language: encoder, words, sentences and vocabulary."""

    def __init__(
        self,
        encoder: SensorEncoder,
        config: LanguageConfig,
        sentences: list[tuple],
        vocabulary: Vocabulary,
        representation: str = "codes",
    ) -> None:
        self.encoder = encoder
        self.config = config
        self.sentences = sentences
        self.vocabulary = vocabulary
        self.representation = _check_representation(representation)
        self._packed_matrix_cache: "np.ndarray | None | bool" = False

    @classmethod
    def fit(
        cls,
        sequence: EventSequence,
        config: LanguageConfig,
        representation: str = "codes",
    ) -> "SensorLanguage":
        """Fit the encoder on ``sequence`` and build its sentence corpus."""
        return cls.from_encoder(SensorEncoder.fit(sequence), sequence, config, representation)

    @classmethod
    def from_encoder(
        cls,
        encoder: SensorEncoder,
        sequence: EventSequence,
        config: LanguageConfig,
        representation: str = "codes",
    ) -> "SensorLanguage":
        """Build a language from an already fitted encoder.

        Lets the encryption step run (and be cached) separately from
        language generation; the result is identical to :meth:`fit` on
        the same sequence.
        """
        language = cls(encoder, config, [], Vocabulary(), representation)
        language.sentences = language.sentences_for(sequence)
        language.vocabulary = Vocabulary.from_sentences(language.sentences)
        return language

    # ------------------------------------------------------------------
    @property
    def sensor(self) -> str:
        return self.encoder.sensor

    @property
    def vocabulary_size(self) -> int:
        """Distinct content words (Figure 3b's "vocabulary size")."""
        return self.vocabulary.content_size

    def sentences_for(self, sequence: EventSequence) -> list[tuple]:
        """Encode a sequence and produce its sentences (native
        representation).

        Unknown states encode to the unknown code/character, so
        test-time sequences with unseen states still produce sentences;
        their novel words map to ``<unk>`` at vocabulary-encoding time.
        """
        if self.representation == "codes":
            return self.code_sentences_for(sequence)
        return self.string_sentences_for(sequence)

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    def word_codes_for(self, sequence: EventSequence):
        """Re-encode a sequence and window it into integer word keys."""
        codes = self.encoder.encode_codes(sequence)
        return generate_word_codes(
            codes, self.config.word_size, self.config.word_stride, self.encoder.word_base
        )

    def code_sentences_for(self, sequence: EventSequence) -> list[tuple]:
        """Sentences of packed integer word keys for a sequence."""
        words = self.word_codes_for(sequence)
        return generate_code_sentences(
            words, self.config.sentence_length, self.config.effective_sentence_stride
        )

    def packed_sentence_matrix(self) -> "np.ndarray | None":
        """Fitted corpus as an ``(num_sentences, length)`` int64 matrix.

        Only available on the codes representation when every sentence
        is a uniform-length tuple of packed integer word keys (the
        normal fixed-window case); returns ``None`` otherwise.  Built
        lazily and cached — consumers that flatten the corpus
        repeatedly (one n-gram fit per directed pair) reuse it instead
        of re-converting the sentence tuples each time.  The cache
        assumes :attr:`sentences` is not mutated after first access.
        """
        cached = getattr(self, "_packed_matrix_cache", False)
        if cached is False:
            cached = self._build_packed_matrix()
            self._packed_matrix_cache = cached
        return cached

    def _build_packed_matrix(self) -> "np.ndarray | None":
        if self.representation != "codes" or not self.sentences:
            return None
        length = len(self.sentences[0])
        if length == 0:
            return None
        first = self.sentences[0][0]
        if not isinstance(first, (int, np.integer)):
            return None  # tuple-key fallback words (packed space overflow)
        if any(len(sentence) != length for sentence in self.sentences):
            return None
        try:
            flat = np.fromiter(
                itertools.chain.from_iterable(self.sentences),
                np.int64,
                len(self.sentences) * length,
            )
        except (TypeError, ValueError):
            return None
        return flat.reshape(len(self.sentences), length)

    def sentences_from_codes(self, codes) -> list[tuple]:
        """Sentences for an already encoder-coded ``uint16`` window.

        The online detector's sliding buffer accumulates encoder codes
        directly; this windows them into native-representation
        sentences without round-tripping through strings or
        re-encoding events.
        """
        codes = np.asarray(codes, dtype=np.uint16)
        if self.representation == "codes":
            words = generate_word_codes(
                codes, self.config.word_size, self.config.word_stride, self.encoder.word_base
            )
            return generate_code_sentences(
                words, self.config.sentence_length, self.config.effective_sentence_stride
            )
        encoded = "".join(self.encoder.char_of_code(code) for code in codes.tolist())
        words = generate_words(encoded, self.config.word_size, self.config.word_stride)
        return generate_sentences(
            words, self.config.sentence_length, self.config.effective_sentence_stride
        )

    # ------------------------------------------------------------------
    # Legacy string path (compatibility shim)
    # ------------------------------------------------------------------
    def words_for(self, sequence: EventSequence) -> list[str]:
        """Encode a (possibly new) sequence and slice it into words."""
        encoded = self.encoder.encode(sequence)
        return generate_words(encoded, self.config.word_size, self.config.word_stride)

    def string_sentences_for(self, sequence: EventSequence) -> list[tuple[str, ...]]:
        """Encode a sequence and produce its character-string sentences."""
        words = self.words_for(sequence)
        return generate_sentences(
            words, self.config.sentence_length, self.config.effective_sentence_stride
        )

    def decode_word(self, word) -> str:
        """Render one native word key as its encrypted character string."""
        if isinstance(word, str):
            return word
        return self.encoder.decode_word(word, self.config.word_size)

    def decode_sentence(self, sentence) -> tuple[str, ...]:
        """Render one native sentence as character-string words."""
        return tuple(self.decode_word(word) for word in sentence)

    def decoded_sentences(self) -> list[tuple[str, ...]]:
        """The fitted corpus rendered as string sentences (lazy shim)."""
        return [self.decode_sentence(sentence) for sentence in self.sentences]


def iter_languages(
    encoders: dict[str, SensorEncoder],
    log: MultivariateEventLog,
    config: LanguageConfig,
    representation: str = "codes",
) -> Iterator[tuple[str, SensorLanguage]]:
    """Lazily yield ``(sensor, language)`` for each fitted encoder.

    Each language is fully built (sentences and vocabulary) before the
    next sensor's encoding starts, so a consumer that processes
    languages one at a time holds at most one sensor's intermediate
    word list in memory.
    """
    for name, encoder in encoders.items():
        yield name, SensorLanguage.from_encoder(encoder, log[name], config, representation)


def filter_constant_sensors(
    log: MultivariateEventLog,
) -> tuple[MultivariateEventLog, list[str]]:
    """Drop constant sequences (Section II-A1 "Sequence Filtering").

    Returns the filtered log and the names of discarded sensors.
    Discarded sensors are also excluded from online testing.
    """
    kept = [seq.sensor for seq in log if not seq.is_constant()]
    discarded = [seq.sensor for seq in log if seq.is_constant()]
    return log.select(kept), discarded


class MultiLanguageCorpus:
    """Per-sensor languages fitted on a training log (``{Z^k_t}``)."""

    def __init__(self, languages: dict[str, SensorLanguage], discarded: list[str]) -> None:
        self.languages = languages
        self.discarded_sensors = discarded

    @classmethod
    def fit(
        cls,
        log: MultivariateEventLog,
        config: LanguageConfig,
        representation: str = "codes",
    ) -> "MultiLanguageCorpus":
        """Filter constant sensors and fit one language per survivor."""
        filtered, discarded = filter_constant_sensors(log)
        encoders = {
            sequence.sensor: SensorEncoder.fit(sequence) for sequence in filtered
        }
        return cls.from_encoders(encoders, log, config, discarded, representation)

    @classmethod
    def from_encoders(
        cls,
        encoders: dict[str, SensorEncoder],
        log: MultivariateEventLog,
        config: LanguageConfig,
        discarded: list[str] | None = None,
        representation: str = "codes",
    ) -> "MultiLanguageCorpus":
        """Generate languages from pre-fitted encoders, one sensor at a time.

        Consumes :func:`iter_languages` so only one sensor's
        intermediate word list is alive at a time — language generation
        streams through the log instead of materialising every
        sensor's words before building the first vocabulary.
        """
        languages = dict(iter_languages(encoders, log, config, representation))
        return cls(languages, list(discarded or []))

    # ------------------------------------------------------------------
    @property
    def sensors(self) -> list[str]:
        return list(self.languages)

    @property
    def representation(self) -> str:
        """The shared sentence representation of the member languages."""
        for language in self.languages.values():
            return language.representation
        return "codes"

    def __len__(self) -> int:
        return len(self.languages)

    def __getitem__(self, sensor: str) -> SensorLanguage:
        return self.languages[sensor]

    def __iter__(self) -> Iterator[SensorLanguage]:
        return iter(self.languages.values())

    def vocabulary_sizes(self) -> dict[str, int]:
        """Sensor → vocabulary size (data behind Figure 3b)."""
        return {name: lang.vocabulary_size for name, lang in self.languages.items()}

    def parallel(self, source: str, target: str) -> "ParallelCorpus":
        """Aligned training corpus for the directed pair (source→target)."""
        return ParallelCorpus.from_languages(self.languages[source], self.languages[target])


@dataclass
class ParallelCorpus:
    """Aligned (source sentence, target sentence) pairs for one pair.

    Because all languages of a corpus share the same windowing
    configuration and their sequences are time aligned, sentence ``k``
    of the source covers the same wall-clock interval as sentence ``k``
    of the target; zipping them yields the translation training set.
    """

    source_sensor: str
    target_sensor: str
    pairs: list[tuple[tuple, tuple]]
    #: Set by :meth:`from_languages`; lets integer-corpus consumers
    #: reuse each language's cached packed-word matrix instead of
    #: re-flattening the shared sentence tuples for every pair.
    source_language: "SensorLanguage | None" = None
    target_language: "SensorLanguage | None" = None

    @classmethod
    def from_languages(
        cls, source: SensorLanguage, target: SensorLanguage
    ) -> "ParallelCorpus":
        if source.config != target.config:
            raise ValueError("parallel corpus requires identical language configs")
        if source.representation != target.representation:
            raise ValueError(
                "parallel corpus requires identical sentence representations; got "
                f"{source.representation!r} vs {target.representation!r}"
            )
        count = min(len(source.sentences), len(target.sentences))
        pairs = list(zip(source.sentences[:count], target.sentences[:count]))
        return cls(source.sensor, target.sensor, pairs, source, target)

    @classmethod
    def from_sentences(
        cls,
        source_sensor: str,
        target_sensor: str,
        source_sentences: Sequence[tuple],
        target_sentences: Sequence[tuple],
    ) -> "ParallelCorpus":
        """Align pre-generated sentence lists (used at test time)."""
        count = min(len(source_sentences), len(target_sentences))
        pairs = list(zip(source_sentences[:count], target_sentences[:count]))
        return cls(source_sensor, target_sensor, pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[tuple, tuple]]:
        return iter(self.pairs)

    @property
    def source_sentences(self) -> list[tuple]:
        return [src for src, _ in self.pairs]

    @property
    def target_sentences(self) -> list[tuple]:
        return [tgt for _, tgt in self.pairs]
