"""Discrete event encryption: categorical states -> characters.

Section II-A1 of the paper: each sequence's unique event records are
sorted in alphanumeric order and assigned letters; a special character
is reserved for unknown states that may appear during online testing.

On the columnar path the encoder is a view over the training
:class:`~repro.core.StateTable`: because both sort states
alphanumerically, a state's interned code *is* its alphabet position
(``char == ALPHABET[code]``), so encoding a code array is a single
vectorised gather (:meth:`SensorEncoder.encode_codes`) and the packed
integer words downstream stay bijective with the legacy character
strings.  The string-facing :meth:`encode`/:meth:`decode` remain as
compatibility shims.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..core import StateTable
from .events import EventSequence

__all__ = ["SensorEncoder", "UNKNOWN_CHAR", "ALPHABET"]

#: Character used for any state not seen during training (the paper's
#: ``<unk>``).  ``?`` sorts outside the letter alphabet, so it can never
#: collide with an assigned letter.
UNKNOWN_CHAR = "?"

#: Characters assignable to states, in assignment order.  62 symbols is
#: far beyond the paper's observed maximum cardinality of 7.
ALPHABET = string.ascii_lowercase + string.ascii_uppercase + string.digits


@dataclass(frozen=True)
class SensorEncoder:
    """A fitted state→character codebook for one sensor.

    Use :meth:`fit` to build an encoder from training events; encoding
    then maps each event to its character, with unseen states mapping
    to :data:`UNKNOWN_CHAR`.  The underlying :class:`StateTable` also
    gives every state an integer code (its alphabet position); code
    ``cardinality`` is the unknown code, and :attr:`word_base` is the
    positional base packed integer words use.
    """

    sensor: str
    table: StateTable

    @classmethod
    def fit(cls, sequence: EventSequence) -> "SensorEncoder":
        """Learn the codebook from a training sequence.

        States are sorted alphanumerically and assigned ``a``, ``b``,
        ``c``, ... in order, exactly as described in the paper.
        """
        states = sequence.unique_states
        if len(states) > len(ALPHABET):
            raise ValueError(
                f"sensor {sequence.sensor!r} has cardinality {len(states)} "
                f"which exceeds the {len(ALPHABET)}-symbol alphabet"
            )
        return cls(sensor=sequence.sensor, table=StateTable(sequence.sensor, states))

    @classmethod
    def from_table(cls, table: StateTable) -> "SensorEncoder":
        """Wrap an already interned state table as an encoder."""
        if len(table.states) > len(ALPHABET):
            raise ValueError(
                f"sensor {table.sensor!r} has cardinality {len(table.states)} "
                f"which exceeds the {len(ALPHABET)}-symbol alphabet"
            )
        return cls(sensor=table.sensor, table=table)

    # ------------------------------------------------------------------
    @property
    def state_to_char(self) -> dict[str, str]:
        """The state→character codebook (kept for compatibility)."""
        return {state: ALPHABET[code] for code, state in enumerate(self.table.states)}

    @property
    def char_to_state(self) -> dict[str, str]:
        """Inverse codebook (unknown char is not invertible)."""
        return {ALPHABET[code]: state for code, state in enumerate(self.table.states)}

    @property
    def cardinality(self) -> int:
        return len(self.table.states)

    @property
    def unknown_code(self) -> int:
        """Integer code of the unknown state (= :attr:`cardinality`)."""
        return self.table.unknown_code

    @property
    def word_base(self) -> int:
        """Positional base of packed word keys: one digit per code,
        including the unknown code."""
        return self.cardinality + 1

    # ------------------------------------------------------------------
    # Columnar path
    # ------------------------------------------------------------------
    def encode_codes(self, sequence: EventSequence) -> np.ndarray:
        """Re-encode a sequence's interned codes into *this* encoder's
        code space in one vectorised gather.

        When the sequence was interned by the encoder's own table (the
        training sequence) the gather is an identity lookup; test-time
        sequences with novel states land on the unknown code, exactly
        mirroring :data:`UNKNOWN_CHAR` on the string path.
        """
        if sequence.table is self.table or sequence.table == self.table:
            return sequence.codes
        lookup = self.table.recode_lookup(sequence.table)
        return lookup[sequence.codes]

    def char_of_code(self, code: int) -> str:
        """Render one encoder code as its encryption character."""
        if code >= self.cardinality:
            return UNKNOWN_CHAR
        return ALPHABET[code]

    def decode_word(self, word: "int | tuple[int, ...]", word_size: int) -> str:
        """Render a packed (or tuple) word key as its character string.

        The inverse of the word packing performed by
        :func:`repro.lang.windows.generate_word_codes`; used by
        diagnostics and reports to show operators the familiar
        encrypted words.
        """
        if isinstance(word, tuple):
            return "".join(self.char_of_code(code) for code in word)
        base = self.word_base
        chars = []
        value = int(word)
        for _ in range(word_size):
            value, code = divmod(value, base)
            chars.append(self.char_of_code(code))
        return "".join(reversed(chars))

    # ------------------------------------------------------------------
    # Legacy string path (compatibility shim)
    # ------------------------------------------------------------------
    def encode_event(self, event: str) -> str:
        """Encode one event; unseen states become :data:`UNKNOWN_CHAR`."""
        return self.char_of_code(self.table.code_of(event))

    def encode(self, events: Iterable[str]) -> str:
        """Encode a sequence of events into a character string."""
        if isinstance(events, EventSequence):
            codes = self.encode_codes(events)
            alphabet = ALPHABET[: self.cardinality] + UNKNOWN_CHAR
            return "".join(alphabet[code] for code in codes.tolist())
        return "".join(self.encode_event(event) for event in events)

    def decode(self, chars: str) -> list[str]:
        """Decode characters back to states.

        Raises
        ------
        KeyError
            If a character (including the unknown marker) has no state.
        """
        inverse = self.char_to_state
        return [inverse[char] for char in chars]

    def qualified_token(self, event: str) -> str:
        """Render an event as the paper's ``"<sensor>.<char>"`` form."""
        return f"{self.sensor}.{self.encode_event(event)}"
