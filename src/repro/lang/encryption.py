"""Discrete event encryption: categorical states -> characters.

Section II-A1 of the paper: each sequence's unique event records are
sorted in alphanumeric order and assigned letters; a special character
is reserved for unknown states that may appear during online testing.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Iterable, Sequence

from .events import EventSequence

__all__ = ["SensorEncoder", "UNKNOWN_CHAR", "ALPHABET"]

#: Character used for any state not seen during training (the paper's
#: ``<unk>``).  ``?`` sorts outside the letter alphabet, so it can never
#: collide with an assigned letter.
UNKNOWN_CHAR = "?"

#: Characters assignable to states, in assignment order.  62 symbols is
#: far beyond the paper's observed maximum cardinality of 7.
ALPHABET = string.ascii_lowercase + string.ascii_uppercase + string.digits


@dataclass(frozen=True)
class SensorEncoder:
    """A fitted state→character codebook for one sensor.

    Use :meth:`fit` to build an encoder from training events; encoding
    then maps each event to its character, with unseen states mapping
    to :data:`UNKNOWN_CHAR`.
    """

    sensor: str
    state_to_char: dict[str, str]

    @classmethod
    def fit(cls, sequence: EventSequence) -> "SensorEncoder":
        """Learn the codebook from a training sequence.

        States are sorted alphanumerically and assigned ``a``, ``b``,
        ``c``, ... in order, exactly as described in the paper.
        """
        states = sequence.unique_states
        if len(states) > len(ALPHABET):
            raise ValueError(
                f"sensor {sequence.sensor!r} has cardinality {len(states)} "
                f"which exceeds the {len(ALPHABET)}-symbol alphabet"
            )
        mapping = {state: ALPHABET[index] for index, state in enumerate(states)}
        return cls(sensor=sequence.sensor, state_to_char=mapping)

    # ------------------------------------------------------------------
    @property
    def char_to_state(self) -> dict[str, str]:
        """Inverse codebook (unknown char is not invertible)."""
        return {char: state for state, char in self.state_to_char.items()}

    @property
    def cardinality(self) -> int:
        return len(self.state_to_char)

    def encode_event(self, event: str) -> str:
        """Encode one event; unseen states become :data:`UNKNOWN_CHAR`."""
        return self.state_to_char.get(str(event), UNKNOWN_CHAR)

    def encode(self, events: Iterable[str]) -> str:
        """Encode a sequence of events into a character string."""
        return "".join(self.encode_event(event) for event in events)

    def decode(self, chars: str) -> list[str]:
        """Decode characters back to states.

        Raises
        ------
        KeyError
            If a character (including the unknown marker) has no state.
        """
        inverse = self.char_to_state
        return [inverse[char] for char in chars]

    def qualified_token(self, event: str) -> str:
        """Render an event as the paper's ``"<sensor>.<char>"`` form."""
        return f"{self.sensor}.{self.encode_event(event)}"
