"""Sliding-window generation of words and sentences (Section II-A2).

Characters are grouped into fixed-length *words* with a character
stride, and words into fixed-length *sentences* with a word stride.
The paper's plant settings are word size 10 / stride 1 and sentence
length 20 words / stride 20 (no sentence overlap); the Backblaze
settings are word size 5 / sentence length 7 with both strides 1.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["sliding_windows", "generate_words", "generate_sentences", "num_windows"]

ItemT = TypeVar("ItemT")


def num_windows(length: int, window: int, stride: int) -> int:
    """Number of windows a sliding pass produces over ``length`` items."""
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    if length < window:
        return 0
    return (length - window) // stride + 1


def sliding_windows(items: Sequence[ItemT], window: int, stride: int) -> list[Sequence[ItemT]]:
    """Return every length-``window`` slice taken every ``stride`` items.

    Trailing items that do not fill a complete window are dropped,
    matching the paper's fixed-length words/sentences.
    """
    count = num_windows(len(items), window, stride)
    return [items[i * stride : i * stride + window] for i in range(count)]


def generate_words(encoded: str, word_size: int, stride: int = 1) -> list[str]:
    """Slice an encoded character string into words.

    Parameters
    ----------
    encoded:
        Character string produced by
        :meth:`repro.lang.encryption.SensorEncoder.encode`.
    word_size:
        Characters per word (the paper's ``i``).
    stride:
        Characters advanced between consecutive words (the paper's
        ``j``); ``stride=1`` gives maximum overlap.
    """
    return [str(window) for window in sliding_windows(encoded, word_size, stride)]


def generate_sentences(
    words: Sequence[str], sentence_length: int, stride: int | None = None
) -> list[tuple[str, ...]]:
    """Group words into fixed-length sentences.

    Parameters
    ----------
    words:
        Word list from :func:`generate_words`.
    sentence_length:
        Words per sentence (the paper's ``m``).
    stride:
        Words advanced between consecutive sentences (the paper's
        ``n``).  Defaults to ``sentence_length`` — non-overlapping
        sentences, the plant-dataset setting.
    """
    stride = sentence_length if stride is None else stride
    return [tuple(window) for window in sliding_windows(words, sentence_length, stride)]
