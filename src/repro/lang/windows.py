"""Sliding-window generation of words and sentences (Section II-A2).

Characters are grouped into fixed-length *words* with a character
stride, and words into fixed-length *sentences* with a word stride.
The paper's plant settings are word size 10 / stride 1 and sentence
length 20 words / stride 20 (no sentence overlap); the Backblaze
settings are word size 5 / sentence length 7 with both strides 1.

Two parallel implementations live here.  The legacy string helpers
(:func:`generate_words`, :func:`generate_sentences`) slice Python
strings and remain the compatibility path.  The columnar helpers
(:func:`generate_word_codes`, :func:`generate_code_sentences`) window
interned ``uint16`` code arrays with
:func:`numpy.lib.stride_tricks.sliding_window_view` — zero-copy views
— and pack each word into a single integer key, bijective with the
word string.

A sequence too short to fill one window yields an *empty* result with
a :class:`ShortSequenceWarning`; no helper raises from the stride
computation.
"""

from __future__ import annotations

import warnings
from typing import Sequence, TypeVar

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..core.state_table import pack_ngrams

__all__ = [
    "ShortSequenceWarning",
    "sliding_windows",
    "generate_words",
    "generate_sentences",
    "generate_word_codes",
    "generate_code_sentences",
    "num_windows",
]

ItemT = TypeVar("ItemT")

#: Word key type on the columnar path: a packed ``int`` for word sizes
#: whose key space fits 63 bits, else a tuple of character codes.
WordKey = "int | tuple[int, ...]"


class ShortSequenceWarning(UserWarning):
    """A sequence was too short to fill a single window.

    Emitted (instead of raising, and instead of silently returning
    nothing) when ``word_size`` or the sentence span exceeds the input
    length, so an operator sees *why* a corpus came out empty.
    """


def _warn_short(kind: str, length: int, window: int) -> None:
    warnings.warn(
        f"sequence of {length} {kind} is shorter than the "
        f"{window}-{kind.rstrip('s')} window; no complete window fits, "
        "returning an empty corpus",
        ShortSequenceWarning,
        stacklevel=3,
    )


def num_windows(length: int, window: int, stride: int) -> int:
    """Number of windows a sliding pass produces over ``length`` items."""
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    if length < window:
        return 0
    return (length - window) // stride + 1


def sliding_windows(items: Sequence[ItemT], window: int, stride: int) -> list[Sequence[ItemT]]:
    """Return every length-``window`` slice taken every ``stride`` items.

    Trailing items that do not fill a complete window are dropped,
    matching the paper's fixed-length words/sentences.
    """
    count = num_windows(len(items), window, stride)
    return [items[i * stride : i * stride + window] for i in range(count)]


# ----------------------------------------------------------------------
# Legacy string path (compatibility shim)
# ----------------------------------------------------------------------
def generate_words(encoded: str, word_size: int, stride: int = 1) -> list[str]:
    """Slice an encoded character string into words.

    Parameters
    ----------
    encoded:
        Character string produced by
        :meth:`repro.lang.encryption.SensorEncoder.encode`.
    word_size:
        Characters per word (the paper's ``i``).
    stride:
        Characters advanced between consecutive words (the paper's
        ``j``); ``stride=1`` gives maximum overlap.
    """
    if 0 < len(encoded) < word_size:
        _warn_short("characters", len(encoded), word_size)
        return []
    return [str(window) for window in sliding_windows(encoded, word_size, stride)]


def generate_sentences(
    words: Sequence[str], sentence_length: int, stride: int | None = None
) -> list[tuple[str, ...]]:
    """Group words into fixed-length sentences.

    Parameters
    ----------
    words:
        Word list from :func:`generate_words`.
    sentence_length:
        Words per sentence (the paper's ``m``).
    stride:
        Words advanced between consecutive sentences (the paper's
        ``n``).  Defaults to ``sentence_length`` — non-overlapping
        sentences, the plant-dataset setting.
    """
    stride = sentence_length if stride is None else stride
    if 0 < len(words) < sentence_length:
        _warn_short("words", len(words), sentence_length)
        return []
    return [tuple(window) for window in sliding_windows(words, sentence_length, stride)]


# ----------------------------------------------------------------------
# Columnar path: zero-copy code windows, packed word keys
# ----------------------------------------------------------------------
def generate_word_codes(
    codes: np.ndarray, word_size: int, stride: int, base: int
) -> "np.ndarray | list[tuple[int, ...]]":
    """Window a code array into integer word keys, without copying.

    ``codes`` is one sensor's interned (or encoder-recoded) ``uint16``
    array and ``base`` the encoder's code base (cardinality + 1 for the
    unknown code).  Each length-``word_size`` window is packed into the
    base-``base`` integer whose digits are the window's codes — the
    exact bijection of reading the window as an encrypted string — so
    word keys compare, hash and count like the legacy word strings but
    at integer speed.  Falls back to tuple-of-code keys for word sizes
    whose packed space would overflow 63 bits.

    Sequences shorter than ``word_size`` produce an empty result with a
    :class:`ShortSequenceWarning` rather than raising from the stride
    computation.
    """
    if word_size <= 0 or stride <= 0:
        raise ValueError("word_size and stride must be positive")
    codes = np.asarray(codes)
    if len(codes) < word_size:
        if len(codes) > 0:
            _warn_short("characters", len(codes), word_size)
        return np.empty(0, dtype=np.int64)
    windows = sliding_window_view(codes, word_size)[::stride]
    packed = pack_ngrams(windows, base)
    if packed is None:
        return [tuple(row) for row in windows.tolist()]
    return packed


def generate_code_sentences(
    words: "np.ndarray | Sequence[tuple[int, ...]]",
    sentence_length: int,
    stride: int | None = None,
) -> "list[tuple[int, ...]] | list[tuple[tuple[int, ...], ...]]":
    """Group integer word keys into fixed-length sentences.

    The packed-word fast path windows the word array with another
    zero-copy :func:`sliding_window_view` and materialises plain-int
    tuples in one bulk ``tolist`` pass; tuple-key words fall back to
    the generic slicing helper.  Mirrors :func:`generate_sentences`,
    including the empty-result warning for word streams shorter than
    one sentence.
    """
    stride = sentence_length if stride is None else stride
    if sentence_length <= 0 or stride <= 0:
        raise ValueError("sentence_length and stride must be positive")
    if 0 < len(words) < sentence_length:
        _warn_short("words", len(words), sentence_length)
        return []
    if isinstance(words, np.ndarray):
        if len(words) < sentence_length:
            return []
        rows = sliding_window_view(words, sentence_length)[::stride]
        return [tuple(row) for row in rows.tolist()]
    return [tuple(window) for window in sliding_windows(words, sentence_length, stride)]
