"""Descriptive statistics of sensor languages.

Useful for understanding why a pair translates well or badly: a sensor
whose language has near-zero word entropy ("aaaaaaaa" forever) is
trivially translatable — the effect behind the paper's finding that the
[90, 100] BLEU subgraph clusters *easily translatable* rather than
*strongly related* sensors.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from .corpus import SensorLanguage

__all__ = ["LanguageStatistics", "word_entropy", "type_token_ratio", "language_statistics"]


def word_entropy(words: Sequence) -> float:
    """Shannon entropy (bits) of the empirical word distribution."""
    if not words:
        return 0.0
    counts = Counter(words)
    total = len(words)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )


def type_token_ratio(words: Sequence) -> float:
    """Distinct words / total words — a classic lexical-diversity measure."""
    if not words:
        return 0.0
    return len(set(words)) / len(words)


@dataclass(frozen=True)
class LanguageStatistics:
    """Summary of one sensor language's complexity."""

    sensor: str
    num_sentences: int
    vocabulary_size: int
    word_entropy_bits: float
    type_token_ratio: float
    most_common_word: str
    most_common_fraction: float

    def is_trivial(self, entropy_threshold: float = 0.5) -> bool:
        """Whether the language is dominated by a single word — the
        "simple language" failure mode of the [90, 100] subgraph."""
        return self.word_entropy_bits < entropy_threshold


def language_statistics(language: SensorLanguage) -> LanguageStatistics:
    """Compute :class:`LanguageStatistics` for a fitted sensor language."""
    words = [word for sentence in language.sentences for word in sentence]
    counts = Counter(words)
    if counts:
        top_word, top_count = counts.most_common(1)[0]
        # Integer word keys (the columnar representation) are decoded
        # so the statistics stay human-readable.
        top_word = language.decode_word(top_word)
        top_fraction = top_count / len(words)
    else:
        top_word, top_fraction = "", 0.0
    return LanguageStatistics(
        sensor=language.sensor,
        num_sentences=len(language.sentences),
        vocabulary_size=language.vocabulary_size,
        word_entropy_bits=word_entropy(words),
        type_token_ratio=type_token_ratio(words),
        most_common_word=top_word,
        most_common_fraction=top_fraction,
    )
