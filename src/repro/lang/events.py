"""Containers for multivariate discrete event sequences.

The paper's input is ``{X^k_t, k in [1..N], t in [1..T]}`` — evenly
sampled categorical records from ``N`` sensors.  :class:`EventSequence`
holds one sensor's record stream and :class:`MultivariateEventLog`
aligns many of them on a shared clock.

Since the columnar-core refactor both classes are thin views over
:mod:`repro.core`: states are interned exactly once into a
:class:`~repro.core.StateTable` and stored as ``uint16`` codes (the
log stacks them into an :class:`~repro.core.EventFrame` matrix), while
the original string-facing constructors, ``events`` tuples and
iteration APIs remain as compatibility shims that decode lazily.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core import EventFrame, EventFrameBuilder, StateTable
from ..core.state_table import CODE_DTYPE

__all__ = ["EventSequence", "MultivariateEventLog"]


class EventSequence:
    """An evenly sampled categorical event sequence from one sensor.

    Parameters
    ----------
    sensor:
        Sensor identifier (e.g. ``"s4"``).
    events:
        The recorded categorical states, one per sampling interval.
        Numeric states should be rendered to strings by the caller (the
        paper's discretization step does this for the Backblaze
        features).  States are interned once into a
        :class:`~repro.core.StateTable`; the sequence stores ``uint16``
        codes and decodes back to strings lazily.
    """

    __slots__ = ("sensor", "_codes", "_table", "_events", "_unique")

    def __init__(self, sensor: str, events: Iterable[str]) -> None:
        events = tuple(str(event) for event in events)
        table = StateTable.from_events(sensor, events)
        self.sensor = str(sensor)
        self._table = table
        self._codes = table.encode(events)
        self._events: tuple[str, ...] | None = events
        self._unique: tuple[str, ...] | None = table.states

    @classmethod
    def from_codes(
        cls,
        sensor: str,
        codes: np.ndarray,
        table: StateTable,
        _events: tuple[str, ...] | None = None,
    ) -> "EventSequence":
        """Zero-copy constructor over an existing code array + table."""
        sequence = cls.__new__(cls)
        sequence.sensor = str(sensor)
        sequence._table = table
        sequence._codes = np.asarray(codes, dtype=CODE_DTYPE)
        sequence._events = _events
        sequence._unique = None
        return sequence

    # ------------------------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        """The interned ``uint16`` code array (do not mutate)."""
        return self._codes

    @property
    def table(self) -> StateTable:
        """The sensor's interned state table."""
        return self._table

    @property
    def events(self) -> tuple[str, ...]:
        """The states as strings — decoded lazily, then cached."""
        if self._events is None:
            self._events = tuple(self._table.decode(self._codes))
        return self._events

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.events)

    def __getitem__(self, index: int | slice) -> "str | EventSequence":
        if isinstance(index, slice):
            return EventSequence.from_codes(self.sensor, self._codes[index], self._table)
        return self._table.state_of(int(self._codes[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSequence):
            return NotImplemented
        if self.sensor != other.sensor:
            return False
        if self._table == other._table:
            return bool(np.array_equal(self._codes, other._codes))
        return self.events == other.events

    def __hash__(self) -> int:
        return hash((self.sensor, self.events))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventSequence({self.sensor!r}, {len(self)} events)"

    # ------------------------------------------------------------------
    @property
    def unique_states(self) -> tuple[str, ...]:
        """Distinct states in alphanumeric order (the paper's sort).

        Computed once and cached — for an interning constructor it *is*
        the state table; slices recompute from their code view.
        """
        if self._unique is None:
            present = np.unique(self._codes)
            self._unique = tuple(self._table.decode(present))
        return self._unique

    @property
    def cardinality(self) -> int:
        """Number of distinct states recorded by this sensor."""
        return len(self.unique_states)

    def is_constant(self) -> bool:
        """True when every event is identical (filtered by the paper)."""
        return self.cardinality <= 1

    def slice(self, start: int, stop: int) -> "EventSequence":
        """Return the subsequence for samples ``[start, stop)`` (a view)."""
        return EventSequence.from_codes(self.sensor, self._codes[start:stop], self._table)

    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.sensor, np.ascontiguousarray(self._codes), self._table)

    def __setstate__(self, state) -> None:
        sensor, codes, table = state
        self.sensor = sensor
        self._codes = codes
        self._table = table
        self._events = None
        self._unique = None


class MultivariateEventLog:
    """A time-aligned collection of :class:`EventSequence` objects.

    All member sequences must have the same length (the paper assumes
    evenly sampled, aligned sensor outputs).  At construction the
    per-sensor code rows are stacked once into an
    :class:`~repro.core.EventFrame`; member sequences are zero-copy
    views of its rows, and :meth:`slice` / :meth:`select` operate on
    the matrix without re-interning anything.
    """

    def __init__(self, sequences: Iterable[EventSequence]) -> None:
        ordered: list[EventSequence] = []
        seen: set[str] = set()
        for sequence in sequences:
            if sequence.sensor in seen:
                raise ValueError(f"duplicate sensor name: {sequence.sensor!r}")
            seen.add(sequence.sensor)
            ordered.append(sequence)
        lengths = {len(seq) for seq in ordered}
        if len(lengths) > 1:
            raise ValueError(f"sequences are not aligned; lengths={sorted(lengths)}")
        self._init_from_frame(EventFrame.from_sequences(ordered), ordered)

    def _init_from_frame(
        self, frame: EventFrame, originals: Sequence[EventSequence] | None = None
    ) -> None:
        self._frame = frame
        self._sequences = {
            name: EventSequence.from_codes(
                name,
                frame.row(name),
                frame.table(name),
                _events=originals[row]._events if originals is not None else None,
            )
            for row, name in enumerate(frame.sensors)
        }
        self._length = frame.num_samples

    @classmethod
    def _from_frame(cls, frame: EventFrame) -> "MultivariateEventLog":
        log = cls.__new__(cls)
        log._init_from_frame(frame)
        return log

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Sequence[str]]) -> "MultivariateEventLog":
        """Build a log from ``{sensor_name: [state, ...]}``."""
        return cls(EventSequence(name, events) for name, events in mapping.items())

    @classmethod
    def from_csv(
        cls, path: str | Path, chunk_size: int | None = None
    ) -> "MultivariateEventLog":
        """Load a log from a CSV with one column per sensor.

        With ``chunk_size`` the file is streamed through
        :func:`repro.datasets.io.iter_event_chunks` and folded into the
        log via :meth:`from_chunks`, so peak memory is the final
        ``uint16`` code matrix plus one chunk of strings instead of the
        whole decoded file; the result is bit-identical to the
        in-memory load (same :meth:`~repro.core.EventFrame.digest`).
        """
        path = Path(path)
        # Local import: repro.datasets.io imports this module at load
        # time, so the reader is resolved lazily to avoid the cycle.
        from ..datasets.io import iter_event_chunks

        if chunk_size is not None:
            return cls.from_chunks(iter_event_chunks(path, chunk_size))
        # In-memory fast case: one chunk spanning the whole file.
        return cls.from_chunks(iter_event_chunks(path, None))

    @classmethod
    def from_chunks(cls, chunks) -> "MultivariateEventLog":
        """Fold an iterable of ``{sensor: [state, ...]}`` chunks.

        Chunks are consumed one at a time through an
        :class:`~repro.core.EventFrameBuilder`; the frame (codes,
        state tables, digests) is bit-identical to constructing the
        log from the concatenated columns in one shot.
        """
        builder = EventFrameBuilder()
        for chunk in chunks:
            builder.append(chunk)
        return cls._from_frame(builder.finalize())

    def to_csv(self, path: str | Path) -> Path:
        """Write the log to a CSV with one column per sensor."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        names = self.sensors
        columns = [self._sequences[name].events for name in names]
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for t in range(self._length):
                writer.writerow([column[t] for column in columns])
        return path

    # ------------------------------------------------------------------
    @property
    def frame(self) -> EventFrame:
        """The columnar code matrix this log views."""
        return self._frame

    @property
    def sensors(self) -> list[str]:
        """Sensor names in insertion order."""
        return list(self._sequences)

    @property
    def num_sensors(self) -> int:
        return len(self._sequences)

    @property
    def num_samples(self) -> int:
        """Shared sequence length ``T``."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __contains__(self, sensor: str) -> bool:
        return sensor in self._sequences

    def __getitem__(self, sensor: str) -> EventSequence:
        return self._sequences[sensor]

    def __iter__(self) -> Iterator[EventSequence]:
        return iter(self._sequences.values())

    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "MultivariateEventLog":
        """Return the log restricted to samples ``[start, stop)`` (views)."""
        return MultivariateEventLog._from_frame(self._frame.slice(start, stop))

    def select(self, sensors: Iterable[str]) -> "MultivariateEventLog":
        """Return the log restricted to the named sensors."""
        names = list(sensors)
        missing = [name for name in names if name not in self._sequences]
        if missing:
            raise KeyError(f"unknown sensors: {missing}")
        return MultivariateEventLog._from_frame(self._frame.select(names))

    def cardinalities(self) -> dict[str, int]:
        """Map each sensor to its event cardinality (used for Fig 3a)."""
        return {name: seq.cardinality for name, seq in self._sequences.items()}

    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"frame": self._frame}

    def __setstate__(self, state) -> None:
        self._init_from_frame(state["frame"])
