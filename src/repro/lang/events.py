"""Containers for multivariate discrete event sequences.

The paper's input is ``{X^k_t, k in [1..N], t in [1..T]}`` — evenly
sampled categorical records from ``N`` sensors.  :class:`EventSequence`
holds one sensor's record stream and :class:`MultivariateEventLog`
aligns many of them on a shared clock.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["EventSequence", "MultivariateEventLog"]


@dataclass(frozen=True)
class EventSequence:
    """An evenly sampled categorical event sequence from one sensor.

    Parameters
    ----------
    sensor:
        Sensor identifier (e.g. ``"s4"``).
    events:
        The recorded categorical states, one per sampling interval.
        States are kept as strings; numeric states should be rendered
        to strings by the caller (the paper's discretization step does
        this for the Backblaze features).
    """

    sensor: str
    events: tuple[str, ...]

    def __init__(self, sensor: str, events: Iterable[str]) -> None:
        object.__setattr__(self, "sensor", str(sensor))
        object.__setattr__(self, "events", tuple(str(event) for event in events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[str]:
        return iter(self.events)

    def __getitem__(self, index: int | slice) -> "str | EventSequence":
        if isinstance(index, slice):
            return EventSequence(self.sensor, self.events[index])
        return self.events[index]

    @property
    def unique_states(self) -> tuple[str, ...]:
        """Distinct states in alphanumeric order (the paper's sort)."""
        return tuple(sorted(set(self.events)))

    @property
    def cardinality(self) -> int:
        """Number of distinct states recorded by this sensor."""
        return len(set(self.events))

    def is_constant(self) -> bool:
        """True when every event is identical (filtered by the paper)."""
        return self.cardinality <= 1

    def slice(self, start: int, stop: int) -> "EventSequence":
        """Return the subsequence for samples ``[start, stop)``."""
        return EventSequence(self.sensor, self.events[start:stop])


class MultivariateEventLog:
    """A time-aligned collection of :class:`EventSequence` objects.

    All member sequences must have the same length (the paper assumes
    evenly sampled, aligned sensor outputs).
    """

    def __init__(self, sequences: Iterable[EventSequence]) -> None:
        self._sequences: dict[str, EventSequence] = {}
        for sequence in sequences:
            if sequence.sensor in self._sequences:
                raise ValueError(f"duplicate sensor name: {sequence.sensor!r}")
            self._sequences[sequence.sensor] = sequence
        lengths = {len(seq) for seq in self._sequences.values()}
        if len(lengths) > 1:
            raise ValueError(f"sequences are not aligned; lengths={sorted(lengths)}")
        self._length = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Sequence[str]]) -> "MultivariateEventLog":
        """Build a log from ``{sensor_name: [state, ...]}``."""
        return cls(EventSequence(name, events) for name, events in mapping.items())

    @classmethod
    def from_csv(cls, path: str | Path) -> "MultivariateEventLog":
        """Load a log from a CSV with one column per sensor."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            columns: list[list[str]] = [[] for _ in header]
            for row in reader:
                if len(row) != len(header):
                    raise ValueError(f"ragged CSV row in {path}: {row!r}")
                for column, value in zip(columns, row):
                    column.append(value)
        return cls(EventSequence(name, column) for name, column in zip(header, columns))

    def to_csv(self, path: str | Path) -> Path:
        """Write the log to a CSV with one column per sensor."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        names = self.sensors
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for t in range(self._length):
                writer.writerow([self._sequences[name].events[t] for name in names])
        return path

    # ------------------------------------------------------------------
    @property
    def sensors(self) -> list[str]:
        """Sensor names in insertion order."""
        return list(self._sequences)

    @property
    def num_sensors(self) -> int:
        return len(self._sequences)

    @property
    def num_samples(self) -> int:
        """Shared sequence length ``T``."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __contains__(self, sensor: str) -> bool:
        return sensor in self._sequences

    def __getitem__(self, sensor: str) -> EventSequence:
        return self._sequences[sensor]

    def __iter__(self) -> Iterator[EventSequence]:
        return iter(self._sequences.values())

    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "MultivariateEventLog":
        """Return the log restricted to samples ``[start, stop)``."""
        return MultivariateEventLog(seq.slice(start, stop) for seq in self)

    def select(self, sensors: Iterable[str]) -> "MultivariateEventLog":
        """Return the log restricted to the named sensors."""
        names = list(sensors)
        missing = [name for name in names if name not in self._sequences]
        if missing:
            raise KeyError(f"unknown sensors: {missing}")
        return MultivariateEventLog(self._sequences[name] for name in names)

    def cardinalities(self) -> dict[str, int]:
        """Map each sensor to its event cardinality (used for Fig 3a)."""
        return {name: seq.cardinality for name, seq in self._sequences.items()}
