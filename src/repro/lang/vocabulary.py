"""Token vocabularies for sensor languages.

Each sensor's distinct word set is its vocabulary (Section II-A2).
Special tokens for padding, sentence boundaries and unknown words are
reserved at fixed low ids so that all models share conventions.

Words are opaque hashable tokens: character strings on the legacy
path, packed integer keys on the columnar path.  Content ids are
assigned in first-seen order either way, so a corpus and its decoded
string twin produce vocabularies with identical id assignments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Vocabulary", "PAD", "BOS", "EOS", "UNK"]

PAD = "<pad>"
BOS = "<s>"
EOS = "</s>"
UNK = "<unk>"

_SPECIALS = (PAD, BOS, EOS, UNK)


class Vocabulary:
    """A bidirectional word ↔ id mapping with reserved specials.

    Ids 0..3 are :data:`PAD`, :data:`BOS`, :data:`EOS`, :data:`UNK` in
    that order; content words follow in first-seen order.
    """

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._word_to_id: dict[str, int] = {word: idx for idx, word in enumerate(_SPECIALS)}
        self._id_to_word: list[str] = list(_SPECIALS)
        for word in words:
            self.add(word)

    # ------------------------------------------------------------------
    @classmethod
    def from_sentences(cls, sentences: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build a vocabulary from an iterable of word sequences."""
        vocab = cls()
        for sentence in sentences:
            for word in sentence:
                vocab.add(word)
        return vocab

    def add(self, word: str) -> int:
        """Insert ``word`` if new; return its id."""
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        idx = len(self._id_to_word)
        self._word_to_id[word] = idx
        self._id_to_word.append(word)
        return idx

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_word)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def bos_id(self) -> int:
        return 1

    @property
    def eos_id(self) -> int:
        return 2

    @property
    def unk_id(self) -> int:
        return 3

    @property
    def content_size(self) -> int:
        """Number of non-special words (the paper's "vocabulary size")."""
        return len(self._id_to_word) - len(_SPECIALS)

    def word_of(self, idx: int) -> str:
        return self._id_to_word[idx]

    def id_of(self, word: str) -> int:
        """Id of ``word``; unknown words map to :data:`UNK`."""
        return self._word_to_id.get(word, self.unk_id)

    def encode(self, words: Sequence[str], add_eos: bool = False) -> np.ndarray:
        """Encode words to an id array, optionally appending EOS."""
        ids = [self.id_of(word) for word in words]
        if add_eos:
            ids.append(self.eos_id)
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Iterable[int], strip_specials: bool = True) -> list[str]:
        """Decode ids to words, by default dropping special tokens."""
        words = [self._id_to_word[int(idx)] for idx in ids]
        if strip_specials:
            words = [word for word in words if word not in _SPECIALS]
        return words

    def words(self) -> list[str]:
        """All content words in id order."""
        return self._id_to_word[len(_SPECIALS) :]
