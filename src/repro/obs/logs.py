"""Structured logging for the ``repro`` logger hierarchy.

Every module logs through a child of the ``repro`` root logger
(``repro.pipeline.executor``, ``repro.detection.online``, ...), which
carries a :class:`logging.NullHandler` by default: with logging left
unconfigured the library emits nothing and behaves exactly as before.

:func:`configure_logging` is the single opt-in entry point (the CLI's
``--log-level``/``--log-json`` flags call it): it installs one stream
handler on the ``repro`` root — human-readable lines, or one JSON
object per line in ``json_mode`` — and is idempotent, replacing the
handler it previously installed rather than stacking duplicates.

JSON records carry ``ts``/``level``/``logger``/``message`` plus any
structured fields passed via ``extra={...}`` at the call site.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Any

__all__ = ["ROOT_LOGGER", "JsonFormatter", "configure_logging", "get_logger"]

#: Name of the hierarchy root every library logger descends from.
ROOT_LOGGER = "repro"

#: Default human-readable line format.
TEXT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Library default: silent unless the application configures logging.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

#: Attributes every LogRecord carries; anything else is a structured
#: field supplied via ``extra`` and is surfaced in JSON output.
_RESERVED = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro`` hierarchy.

    ``get_logger()`` returns the root; ``get_logger("pipeline.executor")``
    and ``get_logger("repro.pipeline.executor")`` both return the same
    child.  Modules typically call ``get_logger(__name__)``.
    """
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=True)


def configure_logging(
    level: int | str = "INFO",
    json_mode: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Parameters
    ----------
    level:
        Threshold for the whole hierarchy — a :mod:`logging` level name
        (``"DEBUG"``, ``"info"``, ...) or numeric value.
    json_mode:
        When true, emit one JSON object per line (:class:`JsonFormatter`)
        instead of human-readable text.
    stream:
        Destination (default ``sys.stderr``), so stdout stays reserved
        for command output.

    Calling again reconfigures: the previously installed handler is
    replaced, never stacked, so repeated CLI invocations or tests can
    flip level/format freely.  Returns the configured root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(
        JsonFormatter() if json_mode else logging.Formatter(TEXT_FORMAT)
    )
    root.addHandler(handler)
    root.setLevel(level)
    return root
