"""Span-style timing: stopwatches, context managers and decorators.

These replace the ad-hoc ``time.perf_counter()`` bookkeeping that used
to be sprinkled through the trainer and pipeline: a timed block either
uses :class:`Stopwatch` (when the caller needs the number itself, e.g.
to build a :class:`~repro.translation.trainer.TrainingRecord`) or
:func:`span` (when the duration should land in a
:class:`~repro.obs.metrics.MetricsRegistry` histogram and/or a DEBUG
log line).  :func:`timed` wraps a whole function or method the same
way.
"""

from __future__ import annotations

import functools
import logging
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from .logs import get_logger
from .metrics import MetricsRegistry

__all__ = ["Stopwatch", "span", "timed"]

F = TypeVar("F", bound=Callable[..., Any])


class Stopwatch:
    """A restartable wall-clock timer over ``time.perf_counter``.

    Usable as a context manager (``with Stopwatch() as watch: ...``) or
    imperatively (``watch = Stopwatch(); ...; watch.split()``).
    ``elapsed`` reads without stopping; ``split()`` returns the time
    since the last split (or start), for train/eval phase accounting.
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._last_split = self._start

    def restart(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._last_split = self._start
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since start (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start

    def split(self) -> float:
        """Seconds since the previous split (or start); advances the split."""
        now = time.perf_counter()
        seconds = now - self._last_split
        self._last_split = now
        return seconds

    def __enter__(self) -> "Stopwatch":
        return self.restart()

    def __exit__(self, *exc_info: object) -> None:
        pass


@contextmanager
def span(
    name: str,
    metrics: MetricsRegistry | None = None,
    logger: logging.Logger | None = None,
    level: int = logging.DEBUG,
    **fields: Any,
) -> Iterator[Stopwatch]:
    """Time a block; record it as a histogram observation and a log line.

    ``name`` is both the histogram name (when ``metrics`` is given) and
    the ``span`` field of the emitted record; extra keyword ``fields``
    travel as structured logging fields.  The duration is recorded even
    when the block raises, so failed work still shows up in timings.
    """
    watch = Stopwatch()
    try:
        yield watch
    finally:
        seconds = watch.elapsed
        if metrics is not None:
            metrics.histogram(name).observe(seconds)
        if logger is not None and logger.isEnabledFor(level):
            logger.log(
                level,
                "%s took %.6fs",
                name,
                seconds,
                extra={"span": name, "seconds": seconds, **fields},
            )


def timed(
    name: str,
    metrics: "MetricsRegistry | str | None" = None,
    logger: "logging.Logger | str | None" = None,
    level: int = logging.DEBUG,
) -> Callable[[F], F]:
    """Decorator form of :func:`span`.

    ``metrics`` may be a registry, or the name of an attribute holding
    one on the first positional argument (``"metrics"`` on a method's
    ``self``); ``logger`` may be a logger or a hierarchy name for
    :func:`~repro.obs.logs.get_logger`.
    """
    resolved_logger = get_logger(logger) if isinstance(logger, str) else logger

    def decorate(function: F) -> F:
        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            registry = metrics
            if isinstance(registry, str):
                registry = getattr(args[0], registry, None) if args else None
            with span(name, metrics=registry, logger=resolved_logger, level=level):
                return function(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
