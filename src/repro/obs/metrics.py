"""In-process metrics: counters, gauges and histogram timers.

A :class:`MetricsRegistry` is a named bag of metrics with three types:

- :class:`Counter` — a monotonically increasing count (``inc``);
- :class:`Gauge` — a point-in-time value (``set``);
- :class:`Histogram` — a streaming summary of observations (count,
  total, min, max, mean) with a :meth:`Histogram.time` context manager
  for wall-clock spans.

Registries are thread-safe (one re-entrant lock per registry, shared by
its metrics), *mergeable* — :meth:`MetricsRegistry.merge` folds another
registry's metrics into this one, which is how per-run executor
registries and worker measurements are combined into the caller's
registry — and serialisable: :meth:`MetricsRegistry.snapshot` renders a
JSON-ready dict (schema ``repro-metrics-v1``, documented in
``docs/observability.md``) and :meth:`MetricsRegistry.write_json`
writes it atomically.  Registries also pickle (the lock is dropped and
recreated), so they can travel inside saved frameworks and across
process-pool boundaries.

Metric names are dotted lowercase paths (``pair_train.trained``,
``stage.corpus.seconds``).  Accessor methods create metrics on first
use, so a metric that was never incremented still appears in the
snapshot with its zero value — consumers can assert ``== 0`` instead of
special-casing absence.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
]

#: Format tag embedded in every snapshot (bump on breaking changes).
SNAPSHOT_SCHEMA = "repro-metrics-v1"


class _Metric:
    """Shared plumbing: a name plus the owning registry's lock."""

    kind: str = "metric"

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._lock = lock

    # Locks do not pickle; the registry re-injects its own on restore.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.to_dict()})"


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, lock: threading.RLock) -> None:
        super().__init__(name, lock)
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def _merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge(_Metric):
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, lock: threading.RLock) -> None:
        super().__init__(name, lock)
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def _merge(self, other: "Gauge") -> None:
        if other.value is not None:
            self.value = other.value


class Histogram(_Metric):
    """Streaming summary of observations (count/total/min/max/mean)."""

    kind = "histogram"

    def __init__(self, name: str, lock: threading.RLock) -> None:
        super().__init__(name, lock)
        self.count: int = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall-clock seconds."""
        return _HistogramTimer(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def _merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)


class _HistogramTimer:
    """``with histogram.time():`` — records the block's duration."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self.seconds: float | None = None

    def __enter__(self) -> "_HistogramTimer":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        import time

        self.seconds = time.perf_counter() - self._start
        self._histogram.observe(self.seconds)


_METRIC_TYPES: dict[str, type[_Metric]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """A named, thread-safe, mergeable bag of metrics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    # -- pickling (locks are recreated, metrics re-bound to the new lock)
    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            return {"metrics": dict(self._metrics)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.RLock()
        self._metrics = state["metrics"]
        for metric in self._metrics.values():
            metric._lock = self._lock

    # ------------------------------------------------------------------
    def _get(self, name: str, metric_type: type[_Metric]) -> _Metric:
        if not name:
            raise ValueError("metric name must be non-empty")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = metric_type(name, self._lock)
                self._metrics[name] = metric
            elif not isinstance(metric, metric_type):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{metric_type.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created at 0 on first use)."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created unset on first use)."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created empty on first use)."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> _HistogramTimer:
        """Shorthand for ``histogram(name).time()``."""
        return self.histogram(name).time()

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str, default: Any = None) -> Any:
        """The scalar value of a counter/gauge, or a histogram's count."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value  # type: ignore[union-attr]

    def iter_metrics(self) -> Iterator[_Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s metrics into this registry.

        Counters and histograms accumulate; gauges take ``other``'s
        value when it is set.  Metrics absent here are created — even at
        zero — so a merged snapshot always carries the full catalogue of
        the merged registries.  Returns ``self`` for chaining.
        """
        with other._lock:
            sources = list(other._metrics.values())
        with self._lock:
            for source in sources:
                target = self._get(source.name, type(source))
                target._merge(source)  # type: ignore[arg-type]
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"schema": ..., "metrics": {name: {...}}}``."""
        with self._lock:
            metrics = {
                name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())
            }
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def write_json(self, path: str | Path) -> Path:
        """Write :meth:`snapshot` to ``path`` atomically; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"
