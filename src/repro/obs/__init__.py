"""Observability: metrics registry, structured logging, timing spans.

This package is the framework-wide measurement substrate:

- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and histogram timers; thread-safe, mergeable across executor
  workers and serialisable to JSON (``repro-metrics-v1`` snapshots);
- :mod:`repro.obs.logs` — the ``repro`` logger hierarchy with a
  NullHandler default and the :func:`configure_logging` entry point
  (text or JSON lines);
- :mod:`repro.obs.timing` — :class:`Stopwatch`, :func:`span` and
  :func:`timed` for span-style wall-clock measurement.

It deliberately imports nothing from the rest of the library, so every
layer (pipeline, translation, detection, CLI) can depend on it without
cycles.  See ``docs/observability.md`` for the logger names, the metric
catalogue and the snapshot schema.
"""

from .logs import ROOT_LOGGER, JsonFormatter, configure_logging, get_logger
from .metrics import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .timing import Stopwatch, span, timed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "ROOT_LOGGER",
    "SNAPSHOT_SCHEMA",
    "Stopwatch",
    "configure_logging",
    "get_logger",
    "span",
    "timed",
]
