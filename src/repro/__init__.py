"""repro — reproduction of "Mining Multivariate Discrete Event Sequences
for Knowledge Discovery and Anomaly Detection" (Nie et al., DSN 2020).

The public API mirrors the paper's pipeline:

- :mod:`repro.lang` — sensor encryption and language generation;
- :mod:`repro.translation` — directional translation models and BLEU;
- :mod:`repro.graph` — the multivariate relationship graph (Algorithm 1),
  global/local subgraphs and community detection;
- :mod:`repro.detection` — anomaly detection (Algorithm 2), fault
  diagnosis and disk-failure evaluation;
- :mod:`repro.pipeline` — the end-to-end :class:`AnalyticsFramework`;
- :mod:`repro.datasets` — plant and Backblaze-style data generators;
- :mod:`repro.baselines` — Random Forest, OC-SVM and K-Means;
- :mod:`repro.nn` — the from-scratch autograd/LSTM substrate.
"""

from .detection import AnomalyDetector, DetectionResult
from .graph import (
    DEFAULT_RANGES,
    DETECTION_RANGE,
    MultivariateRelationshipGraph,
    ScoreRange,
)
from .lang import EventSequence, LanguageConfig, MultivariateEventLog
from .pipeline import AnalyticsFramework, FrameworkConfig, load_framework, save_framework
from .translation import NMTConfig, corpus_bleu, sentence_bleu

__version__ = "1.0.0"

__all__ = [
    "AnalyticsFramework",
    "AnomalyDetector",
    "DEFAULT_RANGES",
    "DETECTION_RANGE",
    "DetectionResult",
    "EventSequence",
    "FrameworkConfig",
    "LanguageConfig",
    "MultivariateEventLog",
    "MultivariateRelationshipGraph",
    "NMTConfig",
    "ScoreRange",
    "corpus_bleu",
    "load_framework",
    "save_framework",
    "sentence_bleu",
    "__version__",
]
