"""Ground-truth labels for generated fault scenarios.

Every scenario generator returns, next to its event log, a
:class:`GroundTruth`: the exact sample windows that were injected,
which sensors each injection touched, and what kind of fault it was.
From those windows the truth can be rendered at whatever granularity a
detector needs — per-sample boolean masks, per-sensor masks, merged
``(start, stop)`` event intervals, or labels for a detector's sliding
windows — so framework and baseline scores are always measured against
one label source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["GroundTruth", "InjectionWindow"]


@dataclass(frozen=True)
class InjectionWindow:
    """One injected fault: a half-open sample window plus its victims."""

    start: int
    stop: int
    sensors: tuple[str, ...]
    kind: str

    def __post_init__(self) -> None:
        if self.start >= self.stop:
            raise ValueError(
                f"injection window [{self.start}, {self.stop}) is empty or inverted"
            )
        if self.start < 0:
            raise ValueError(f"injection window starts before sample 0: {self.start}")
        if not self.sensors:
            raise ValueError("injection window must name at least one sensor")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def overlaps(self, start: int, stop: int) -> bool:
        """True when ``[start, stop)`` intersects this window."""
        return self.start < stop and start < self.stop


@dataclass(frozen=True)
class GroundTruth:
    """The injected-fault record of one generated scenario log."""

    num_samples: int
    windows: tuple[InjectionWindow, ...]

    def __post_init__(self) -> None:
        for window in self.windows:
            if window.stop > self.num_samples:
                raise ValueError(
                    f"injection window [{window.start}, {window.stop}) exceeds "
                    f"the log's {self.num_samples} samples"
                )

    # ------------------------------------------------------------------
    @property
    def affected_sensors(self) -> tuple[str, ...]:
        """Every sensor any injection touched, sorted."""
        return tuple(sorted({s for w in self.windows for s in w.sensors}))

    @property
    def kinds(self) -> tuple[str, ...]:
        """Distinct fault kinds present, sorted."""
        return tuple(sorted({w.kind for w in self.windows}))

    def sample_mask(self) -> np.ndarray:
        """Boolean per-sample anomaly mask over the whole log."""
        mask = np.zeros(self.num_samples, dtype=bool)
        for window in self.windows:
            mask[window.start : window.stop] = True
        return mask

    def sensor_mask(self, sensor: str) -> np.ndarray:
        """Per-sample mask restricted to injections touching ``sensor``."""
        mask = np.zeros(self.num_samples, dtype=bool)
        for window in self.windows:
            if sensor in window.sensors:
                mask[window.start : window.stop] = True
        return mask

    def sensors_in(self, start: int, stop: int) -> tuple[str, ...]:
        """Sensors injected anywhere inside ``[start, stop)``, sorted."""
        return tuple(
            sorted(
                {
                    sensor
                    for window in self.windows
                    if window.overlaps(start, stop)
                    for sensor in window.sensors
                }
            )
        )

    def intervals(self, merge_gap: int = 0) -> list[tuple[int, int]]:
        """Injected spans as merged, sorted ``(start, stop)`` events.

        Windows separated by at most ``merge_gap`` clean samples fold
        into one event — different faults of one incident usually score
        as one operator-facing event.
        """
        if merge_gap < 0:
            raise ValueError("merge_gap must be >= 0")
        spans = sorted((w.start, w.stop) for w in self.windows)
        merged: list[tuple[int, int]] = []
        for start, stop in spans:
            if merged and start <= merged[-1][1] + merge_gap:
                merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
            else:
                merged.append((start, stop))
        return merged

    def window_labels(self, starts: Sequence[int], span: int) -> np.ndarray:
        """Label a detector's windows: True where a window overlaps an
        injection.  ``starts`` are window start samples, ``span`` the
        samples each window covers."""
        if span <= 0:
            raise ValueError("span must be positive")
        return np.asarray(
            [
                any(w.overlaps(start, start + span) for w in self.windows)
                for start in starts
            ],
            dtype=bool,
        )

    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "GroundTruth":
        """Truth re-based to the log slice ``[start, stop)``.

        Injections are clipped to the slice and shifted so their sample
        indices match ``log.slice(start, stop)``; injections entirely
        outside the slice are dropped.
        """
        if not 0 <= start < stop <= self.num_samples:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for {self.num_samples} samples"
            )
        clipped = tuple(
            InjectionWindow(
                start=max(w.start, start) - start,
                stop=min(w.stop, stop) - start,
                sensors=w.sensors,
                kind=w.kind,
            )
            for w in self.windows
            if w.overlaps(start, stop)
        )
        return GroundTruth(num_samples=stop - start, windows=clipped)

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by the benchmark records)."""
        return {
            "num_samples": self.num_samples,
            "windows": [
                {
                    "start": w.start,
                    "stop": w.stop,
                    "sensors": list(w.sensors),
                    "kind": w.kind,
                }
                for w in self.windows
            ],
        }
