"""Composable fault-scenario generators with ground-truth labels.

The paper validates detection on exactly two seeded anomaly days of
one plant simulation.  Real fleets fail in more shapes than that:
faults cascade across components, sensors drift slowly out of
alignment, flap intermittently, drop out, burst in correlated groups,
shift operating regime, or report late/duplicated samples.  Each
generator here is a pure function ``(params, seed) -> ScenarioData``:
it renders a *clean* plant log (the simulator with no built-in anomaly
days), injects one fault shape into the test period only, and records
every injected window — with the affected sensor set — as
:class:`~repro.scenarios.truth.GroundTruth`.

Determinism is by construction: the plant simulator, the injectors and
every local draw run off ``numpy`` generators seeded from ``seed``
alone, so the same ``(params, seed)`` always yields a bit-identical
:meth:`~repro.core.EventFrame.digest` — scenario outputs are cacheable
through the artifact store and comparable across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..datasets.inject import replace_events, validate_windows
from ..datasets.plant import PlantConfig, PlantDataset, generate_plant_dataset
from ..lang.events import MultivariateEventLog
from .truth import GroundTruth, InjectionWindow

__all__ = [
    "SCENARIOS",
    "ScenarioData",
    "ScenarioParams",
    "TIERS",
    "cascading_faults",
    "correlated_burst",
    "flapping_sensor",
    "generate_scenario",
    "regime_shift",
    "scenario_names",
    "sensor_dropout",
    "slow_drift",
    "timing_glitch",
]


@dataclass(frozen=True)
class ScenarioParams:
    """Shape of a generated scenario (shared by every generator).

    The log is a clean plant simulation of ``num_sensors`` sensors over
    ``days`` days; faults are injected only into the test period (the
    days after ``train_days + dev_days``), so a detector fitted on the
    chronological train/dev split sees normal operation.  ``severity``
    scales injected window lengths and offsets.
    """

    num_sensors: int = 12
    days: int = 9
    samples_per_day: int = 96
    num_components: int = 4
    train_days: int = 4
    dev_days: int = 1
    severity: float = 1.0
    noise_rate: float = 0.002

    def __post_init__(self) -> None:
        if self.train_days < 1 or self.dev_days < 1:
            raise ValueError("train_days and dev_days must be >= 1")
        if self.train_days + self.dev_days >= self.days:
            raise ValueError("params leave no test days")
        if self.severity <= 0:
            raise ValueError("severity must be positive")

    @property
    def total_samples(self) -> int:
        return self.days * self.samples_per_day

    @property
    def test_start(self) -> int:
        return (self.train_days + self.dev_days) * self.samples_per_day

    @property
    def test_samples(self) -> int:
        return self.total_samples - self.test_start

    def to_dict(self) -> dict:
        return {
            "num_sensors": self.num_sensors,
            "days": self.days,
            "samples_per_day": self.samples_per_day,
            "num_components": self.num_components,
            "train_days": self.train_days,
            "dev_days": self.dev_days,
            "severity": self.severity,
            "noise_rate": self.noise_rate,
        }


#: Named parameter tiers: ``tiny`` fits in CI seconds, ``small`` is the
#: default local evaluation size.
TIERS: dict[str, ScenarioParams] = {
    "tiny": ScenarioParams(
        num_sensors=10, days=7, samples_per_day=48, num_components=4,
        train_days=4, dev_days=1,
    ),
    "small": ScenarioParams(
        num_sensors=16, days=12, samples_per_day=96, num_components=4,
        train_days=6, dev_days=2,
    ),
}


@dataclass(frozen=True)
class ScenarioData:
    """One generated scenario: the faulty log plus its ground truth."""

    name: str
    params: ScenarioParams
    seed: int
    log: MultivariateEventLog
    clean_log: MultivariateEventLog
    truth: GroundTruth
    component_of: Mapping[str, str]

    @property
    def digest(self) -> str:
        """Bit-exact fingerprint of the generated (faulty) log."""
        return self.log.frame.digest()

    def split(
        self,
    ) -> tuple[MultivariateEventLog, MultivariateEventLog, MultivariateEventLog, GroundTruth]:
        """Chronological train/dev/test logs plus test-relative truth."""
        per_day = self.params.samples_per_day
        train = self.log.slice(0, self.params.train_days * per_day)
        dev = self.log.slice(
            self.params.train_days * per_day, self.params.test_start
        )
        test = self.log.slice(self.params.test_start, self.params.total_samples)
        test_truth = self.truth.slice(self.params.test_start, self.params.total_samples)
        return train, dev, test, test_truth


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------
def _clean_plant(params: ScenarioParams, seed: int) -> PlantDataset:
    """A plant simulation with no built-in anomaly or precursor days."""
    return generate_plant_dataset(
        PlantConfig(
            num_sensors=params.num_sensors,
            days=params.days,
            samples_per_day=params.samples_per_day,
            num_components=params.num_components,
            anomaly_days=(),
            precursor_days=(),
            noise_rate=params.noise_rate,
            seed=seed,
        )
    )


def _active_by_component(dataset: PlantDataset) -> dict[str, list[str]]:
    """Non-constant sensors grouped by component (injection candidates)."""
    groups: dict[str, list[str]] = {}
    for sensor in dataset.log.sensors:
        if dataset.log[sensor].cardinality > 1:
            groups.setdefault(dataset.component_of[sensor], []).append(sensor)
    return {name: sorted(members) for name, members in sorted(groups.items())}


def _scaled(base: int, severity: float, floor: int = 4) -> int:
    return max(floor, int(round(base * severity)))


def _shift_window(events: list[str], start: int, stop: int, offset: int) -> list[str]:
    """Circularly shift the window contents by ``offset`` samples."""
    window = events[start:stop]
    offset %= max(1, len(window))
    events[start:stop] = window[offset:] + window[:offset]
    return events


def _finish(
    name: str,
    params: ScenarioParams,
    seed: int,
    dataset: PlantDataset,
    replacements: Mapping[str, list[str]],
    windows: list[InjectionWindow],
) -> ScenarioData:
    validate_windows(dataset.log, [(w.start, w.stop) for w in windows])
    return ScenarioData(
        name=name,
        params=params,
        seed=seed,
        log=replace_events(dataset.log, replacements),
        clean_log=dataset.log,
        truth=GroundTruth(
            num_samples=params.total_samples, windows=tuple(windows)
        ),
        component_of=dict(dataset.component_of),
    )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def cascading_faults(params: ScenarioParams, seed: int) -> ScenarioData:
    """A fault marches through the plant component by component.

    Successive components lose cross-sensor alignment in consecutive
    windows (each sensor keeps its marginal statistics — the Figure 2
    anomaly class), modelling a disturbance propagating downstream.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    names = list(groups)
    stages = min(3, len(names))
    span = params.test_samples
    duration = min(_scaled(span // 6, params.severity, floor=12), span // (stages + 1))
    t0 = params.test_start + span // 8

    replacements: dict[str, list[str]] = {}
    windows: list[InjectionWindow] = []
    first = int(rng.integers(0, len(names)))
    for stage in range(stages):
        component = names[(first + stage) % len(names)]
        sensors = groups[component]
        start = t0 + stage * duration
        stop = start + duration
        for sensor in sensors:
            events = replacements.get(sensor, list(dataset.log[sensor].events))
            offset = int(rng.integers(duration // 3, 2 * duration // 3 + 1))
            replacements[sensor] = _shift_window(events, start, stop, offset)
        windows.append(
            InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="cascade")
        )
    return _finish("cascade", params, seed, dataset, replacements, windows)


def slow_drift(params: ScenarioParams, seed: int) -> ScenarioData:
    """A component drifts gradually out of sync until it fails.

    Consecutive stages shift one component's sensors by a growing
    offset: early stages are subtle (near-aligned), late stages are a
    clear joint break — the classic degradation-into-failure curve.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    names = list(groups)
    component = names[int(rng.integers(0, len(names)))]
    sensors = groups[component]
    span = params.test_samples
    stages = 4
    duration = min(_scaled(span // 6, params.severity, floor=12), span // (stages + 1))
    t0 = params.test_start + span // 10

    replacements: dict[str, list[str]] = {
        sensor: list(dataset.log[sensor].events) for sensor in sensors
    }
    windows: list[InjectionWindow] = []
    for stage in range(stages):
        start = t0 + stage * duration
        stop = start + duration
        offset = max(1, ((stage + 1) * duration) // (2 * stages))
        for sensor in sensors:
            _shift_window(replacements[sensor], start, stop, offset)
        windows.append(
            InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="drift")
        )
    return _finish("drift", params, seed, dataset, replacements, windows)


def flapping_sensor(params: ScenarioParams, seed: int) -> ScenarioData:
    """Two sensors stick intermittently (flapping instrumentation).

    Short freeze windows recur across the test period: each flap holds
    the sensors at their window-entry state, then normal operation
    resumes — the on/off/on failure signature of a loose connection.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    component = list(groups)[int(rng.integers(0, len(groups)))]
    sensors = groups[component][:2]
    span = params.test_samples
    flap = _scaled(span // 16, params.severity, floor=4)
    flaps = min(5, max(2, span // (3 * flap)))
    stride = span // (flaps + 1)

    replacements: dict[str, list[str]] = {
        sensor: list(dataset.log[sensor].events) for sensor in sensors
    }
    windows: list[InjectionWindow] = []
    for index in range(flaps):
        start = params.test_start + (index + 1) * stride - flap // 2
        stop = min(start + flap, params.total_samples)
        for sensor in sensors:
            events = replacements[sensor]
            events[start:stop] = [events[start]] * (stop - start)
        windows.append(
            InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="flapping")
        )
    return _finish("flapping", params, seed, dataset, replacements, windows)


def correlated_burst(params: ScenarioParams, seed: int) -> ScenarioData:
    """Short correlated disturbances hit several components at once.

    A few brief windows desynchronize sensors drawn from two different
    components simultaneously — a plant-wide transient (power dip,
    control glitch) rather than a single-component fault.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    names = list(groups)
    chosen = [names[i] for i in rng.permutation(len(names))[: min(2, len(names))]]
    sensors = sorted(s for component in chosen for s in groups[component][:3])
    span = params.test_samples
    burst = _scaled(span // 12, params.severity, floor=6)
    bursts = 3
    stride = span // (bursts + 1)

    replacements: dict[str, list[str]] = {
        sensor: list(dataset.log[sensor].events) for sensor in sensors
    }
    windows: list[InjectionWindow] = []
    for index in range(bursts):
        start = params.test_start + (index + 1) * stride - burst // 2
        stop = min(start + burst, params.total_samples)
        for sensor in sensors:
            offset = int(rng.integers(max(1, burst // 3), max(2, 2 * burst // 3 + 1)))
            _shift_window(replacements[sensor], start, stop, offset)
        windows.append(
            InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="burst")
        )
    return _finish("burst", params, seed, dataset, replacements, windows)


def regime_shift(params: ScenarioParams, seed: int) -> ScenarioData:
    """One component permanently shifts phase mid-test (new regime).

    From the shift point to the end of the log the component's sensors
    run a fixed phase offset against the rest of the plant.  Each
    sensor still cycles through its normal states at its normal rate —
    only the *joint* timing is wrong, and it stays wrong.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    component = list(groups)[int(rng.integers(0, len(groups)))]
    sensors = groups[component]
    start = params.test_start + params.test_samples // 3
    stop = params.total_samples
    offset = _scaled(params.samples_per_day // 8, params.severity, floor=2)

    replacements = {
        sensor: _shift_window(list(dataset.log[sensor].events), start, stop, offset)
        for sensor in sensors
    }
    windows = [
        InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="regime-shift")
    ]
    return _finish("regime-shift", params, seed, dataset, replacements, windows)


def sensor_dropout(params: ScenarioParams, seed: int) -> ScenarioData:
    """A component's sensors flatline at their baseline states (dropout).

    Every sensor of each picked component holds its most common state
    for a long window — the "last known good value" a collector repeats
    when a telemetry link drops.  Whole components drop because that is
    how collectors fail (per link, not per channel); staggered windows
    verify a detector localises each dropout independently.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    names = list(groups)
    picked = [names[i] for i in rng.permutation(len(names))[: min(2, len(names))]]
    span = params.test_samples
    duration = min(_scaled(span // 5, params.severity, floor=12), span // (len(picked) + 1))

    replacements: dict[str, list[str]] = {}
    windows: list[InjectionWindow] = []
    for index, component in enumerate(picked):
        sensors = groups[component]
        start = params.test_start + span // 10 + index * (duration + span // 10)
        stop = min(start + duration, params.total_samples)
        for sensor in sensors:
            events = list(dataset.log[sensor].events)
            states, counts = np.unique(events, return_counts=True)
            modal = str(states[int(np.argmax(counts))])
            events[start:stop] = [modal] * (stop - start)
            replacements[sensor] = events
        windows.append(
            InjectionWindow(start=start, stop=stop, sensors=tuple(sensors), kind="dropout")
        )
    return _finish("dropout", params, seed, dataset, replacements, windows)


def timing_glitch(params: ScenarioParams, seed: int) -> ScenarioData:
    """Late and duplicated samples corrupt one component's timeline.

    Window one arrives *late*: the stream stalls at its entry state for
    a few samples, then replays, pushing everything behind schedule.
    Window two *duplicates*: every sample is reported twice, halving
    the window's real coverage.  Both keep each sensor's alphabet
    intact while breaking its alignment with the rest of the plant.
    """
    dataset = _clean_plant(params, seed)
    rng = np.random.default_rng(seed)
    groups = _active_by_component(dataset)
    component = list(groups)[int(rng.integers(0, len(groups)))]
    sensors = groups[component]
    span = params.test_samples
    duration = min(_scaled(span // 8, params.severity, floor=8), span // 3)
    lag = max(2, duration // 4)
    late_start = params.test_start + span // 8
    duplicate_start = late_start + duration + span // 8

    replacements: dict[str, list[str]] = {}
    for sensor in sensors:
        events = list(dataset.log[sensor].events)
        late_stop = late_start + duration
        window = events[late_start:late_stop]
        events[late_start:late_stop] = [window[0]] * lag + window[: len(window) - lag]
        duplicate_stop = min(duplicate_start + duration, params.total_samples)
        window = events[duplicate_start:duplicate_stop]
        doubled = [state for state in window for _ in range(2)]
        events[duplicate_start:duplicate_stop] = doubled[: len(window)]
        replacements[sensor] = events
    windows = [
        InjectionWindow(
            start=late_start, stop=late_start + duration,
            sensors=tuple(sensors), kind="timing-late",
        ),
        InjectionWindow(
            start=duplicate_start,
            stop=min(duplicate_start + duration, params.total_samples),
            sensors=tuple(sensors), kind="timing-duplicate",
        ),
    ]
    return _finish("timing", params, seed, dataset, replacements, windows)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIOS: dict[str, Callable[[ScenarioParams, int], ScenarioData]] = {
    "cascade": cascading_faults,
    "drift": slow_drift,
    "flapping": flapping_sensor,
    "burst": correlated_burst,
    "regime-shift": regime_shift,
    "dropout": sensor_dropout,
    "timing": timing_glitch,
}


def scenario_names() -> list[str]:
    """Every registered scenario name, in registry order."""
    return list(SCENARIOS)


def generate_scenario(
    name: str,
    params: ScenarioParams | None = None,
    seed: int = 11,
    tier: str | None = None,
) -> ScenarioData:
    """Generate one named scenario.

    ``params`` wins over ``tier``; with neither, the ``tiny`` tier is
    used.  Same ``(params, seed)`` always yields a bit-identical log
    digest.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    if params is None:
        if tier is not None and tier not in TIERS:
            raise KeyError(f"unknown tier {tier!r}; choose from {sorted(TIERS)}")
        params = TIERS[tier or "tiny"]
    return SCENARIOS[name](params, seed)
