"""Fault-scenario library: labeled generators plus evaluation harness.

The paper's plant case study exercises one fault shape (two seeded
anomaly days).  This package widens the validation surface: each
generator in :mod:`repro.scenarios.generators` is a deterministic
``(params, seed) -> ScenarioData`` function that injects one realistic
fault shape — cascades, drift, flapping, bursts, regime shifts,
dropout, timing glitches — into a clean plant log and records exact
per-sample ground truth (:mod:`repro.scenarios.truth`).  The harness
(:mod:`repro.scenarios.harness`) runs the framework and the baseline
detectors on any scenario, scores them event-level, and logs
``repro-scenarios-v1`` records to ``BENCH_scenarios.json``.
"""

from .generators import (
    SCENARIOS,
    ScenarioData,
    ScenarioParams,
    TIERS,
    cascading_faults,
    correlated_burst,
    flapping_sensor,
    generate_scenario,
    regime_shift,
    scenario_names,
    sensor_dropout,
    slow_drift,
    timing_glitch,
)
from .harness import (
    DEFAULT_DETECTORS,
    DetectorOutcome,
    SCENARIO_SCHEMA,
    ScenarioReport,
    append_bench_record,
    harness_framework_config,
    harness_language_config,
    load_bench,
    run_scenario,
    run_suite,
)
from .truth import GroundTruth, InjectionWindow

__all__ = [
    "DEFAULT_DETECTORS",
    "DetectorOutcome",
    "GroundTruth",
    "InjectionWindow",
    "SCENARIOS",
    "SCENARIO_SCHEMA",
    "ScenarioData",
    "ScenarioParams",
    "ScenarioReport",
    "TIERS",
    "append_bench_record",
    "cascading_faults",
    "correlated_burst",
    "flapping_sensor",
    "generate_scenario",
    "harness_framework_config",
    "harness_language_config",
    "load_bench",
    "regime_shift",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "sensor_dropout",
    "slow_drift",
    "timing_glitch",
]
