"""Per-scenario evaluation harness: framework vs. baselines.

For each generated :class:`~repro.scenarios.generators.ScenarioData`
the harness fits every requested detector on the scenario's clean
train/dev split, scores the faulty test period, calibrates each
detector's alarm threshold on its own development scores, folds the
flagged windows into sample-clock episodes, and measures event-level
precision/recall against the scenario's ground truth with
:func:`repro.detection.evaluate_events`.  Because matching happens on
the shared sample clock, detectors with different window sizes and
strides (Algorithm 2, per-sensor Markov chains, the multivariate
Hawkes process) are directly comparable.

Results serialise as ``repro-scenarios-v1`` records; one record per
``(scenario, tier, seed)`` is kept in ``BENCH_scenarios.json`` (an
append-or-replace log), so detection quality per fault shape is
tracked across PRs.  Records embed the scenario's frame digest, which
doubles as the determinism check: regenerating from the same
``(params, seed)`` must reproduce it bit-identically.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..baselines.hawkes import HawkesAnomalyDetector
from ..baselines.markov import MarkovAnomalyDetector
from ..detection.evaluation import (
    EventLevelEvaluation,
    evaluate_events,
    intervals_from_scores,
)
from ..graph.ranges import ScoreRange
from ..lang.corpus import LanguageConfig
from ..lang.events import MultivariateEventLog
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..pipeline.config import FrameworkConfig
from ..pipeline.framework import AnalyticsFramework
from .generators import ScenarioData, ScenarioParams, TIERS, generate_scenario, scenario_names

__all__ = [
    "DEFAULT_DETECTORS",
    "DetectorOutcome",
    "SCENARIO_SCHEMA",
    "ScenarioReport",
    "append_bench_record",
    "harness_framework_config",
    "harness_language_config",
    "load_bench",
    "run_scenario",
    "run_suite",
]

logger = get_logger(__name__)

SCENARIO_SCHEMA = "repro-scenarios-v1"

#: Detectors every scenario is scored with by default: the framework
#: (Algorithm 2) plus two baselines from :mod:`repro.baselines`.
DEFAULT_DETECTORS: tuple[str, ...] = ("framework", "markov", "hawkes")

#: Alarm-threshold slack above the development-period peak score.
CALIBRATION_SLACK = 0.05


def harness_language_config() -> LanguageConfig:
    """Windowing small enough for tiny-tier scenario logs."""
    return LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)


def harness_framework_config(prescreen: str = "off") -> FrameworkConfig:
    """Framework settings used for scenario evaluation.

    The n-gram engine with a wide validity range: scenario logs are
    small, so a narrow BLEU band would leave too few valid pairs for a
    stable ``a_t`` denominator.  ``prescreen`` forwards to
    :class:`~repro.pipeline.config.FrameworkConfig` so regression
    suites can run the same scenarios with pair pruning enabled.
    """
    return FrameworkConfig(
        language=harness_language_config(),
        engine="ngram",
        detection_range=ScoreRange(60.0, 100.0, inclusive_high=True),
        popular_threshold=10,
        prescreen=prescreen,
    )


def _calibrated_threshold(dev_scores: np.ndarray) -> float:
    """Lowest threshold guaranteed quiet on the development period."""
    peak = float(dev_scores.max()) if dev_scores.size else 0.0
    return peak + CALIBRATION_SLACK


@dataclass(frozen=True)
class _WindowedScores:
    """One detector's test scores on its own window grid."""

    dev_scores: np.ndarray
    test_scores: np.ndarray
    stride: int
    span: int


def _run_framework(
    train: MultivariateEventLog,
    dev: MultivariateEventLog,
    test: MultivariateEventLog,
    metrics: MetricsRegistry | None,
    config: FrameworkConfig | None = None,
) -> _WindowedScores:
    config = config or harness_framework_config()
    framework = AnalyticsFramework(config).fit(train, dev)
    dev_scores = framework.detect(dev).anomaly_scores
    test_scores = framework.detect(test).anomaly_scores
    if metrics is not None:
        metrics.merge(framework.metrics)
    language = config.language
    return _WindowedScores(
        dev_scores=dev_scores,
        test_scores=test_scores,
        stride=language.effective_sentence_stride * language.word_stride,
        span=language.samples_per_sentence(),
    )


def _run_markov(
    train: MultivariateEventLog,
    dev: MultivariateEventLog,
    test: MultivariateEventLog,
    metrics: MetricsRegistry | None,
) -> _WindowedScores:
    language = harness_language_config()
    span = language.samples_per_sentence()
    stride = language.effective_sentence_stride * language.word_stride
    detector = MarkovAnomalyDetector(
        order=2, window_size=span, window_stride=stride, calibration_quantile=0.99
    )
    detector.fit(train, dev)
    return _WindowedScores(
        dev_scores=detector.detect(dev).anomaly_scores,
        test_scores=detector.detect(test).anomaly_scores,
        stride=stride,
        span=span,
    )


def _run_hawkes(
    train: MultivariateEventLog,
    dev: MultivariateEventLog,
    test: MultivariateEventLog,
    metrics: MetricsRegistry | None,
) -> _WindowedScores:
    span = 2 * harness_language_config().samples_per_sentence()
    stride = span // 2
    detector = HawkesAnomalyDetector(
        window_size=span, window_stride=stride, calibration_quantile=0.99
    )
    detector.fit(train, dev)
    return _WindowedScores(
        dev_scores=detector.detect(dev).anomaly_scores,
        test_scores=detector.detect(test).anomaly_scores,
        stride=stride,
        span=span,
    )


_DETECTOR_RUNNERS: dict[str, Callable[..., _WindowedScores]] = {
    "framework": _run_framework,
    "markov": _run_markov,
    "hawkes": _run_hawkes,
}


@dataclass(frozen=True)
class DetectorOutcome:
    """One detector's event-level score on one scenario."""

    detector: str
    threshold: float
    num_windows: int
    window_span: int
    window_stride: int
    evaluation: EventLevelEvaluation
    seconds: float

    def to_dict(self) -> dict:
        payload = {
            "detector": self.detector,
            "threshold": self.threshold,
            "num_windows": self.num_windows,
            "window_span": self.window_span,
            "window_stride": self.window_stride,
            "seconds": self.seconds,
        }
        payload.update(self.evaluation.to_dict())
        return payload


@dataclass(frozen=True)
class ScenarioReport:
    """All detector outcomes for one generated scenario."""

    scenario: str
    tier: str | None
    seed: int
    params: ScenarioParams
    frame_digest: str
    truth_events: tuple[tuple[int, int], ...]
    affected_sensors: tuple[str, ...]
    kinds: tuple[str, ...]
    outcomes: tuple[DetectorOutcome, ...]

    def outcome(self, detector: str) -> DetectorOutcome:
        """The named detector's outcome."""
        for outcome in self.outcomes:
            if outcome.detector == detector:
                return outcome
        raise KeyError(f"no outcome for detector {detector!r}")

    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "scenario": self.scenario,
            "tier": self.tier,
            "seed": self.seed,
            "params": self.params.to_dict(),
            "frame_digest": self.frame_digest,
            "truth": {
                "events": [list(event) for event in self.truth_events],
                "affected_sensors": list(self.affected_sensors),
                "kinds": list(self.kinds),
            },
            "detectors": {o.detector: o.to_dict() for o in self.outcomes},
        }


def run_scenario(
    data: ScenarioData,
    detectors: Sequence[str] = DEFAULT_DETECTORS,
    tier: str | None = None,
    metrics: MetricsRegistry | None = None,
    framework_config: FrameworkConfig | None = None,
) -> ScenarioReport:
    """Fit + detect every requested detector on one scenario.

    Each detector is fitted on the scenario's clean train/dev days,
    its alarm threshold calibrated just above its development-period
    peak score, and its flagged test windows merged into sample-clock
    episodes scored event-level against the ground truth.
    ``framework_config`` overrides :func:`harness_framework_config`
    for the ``"framework"`` detector only (e.g. to evaluate the same
    scenarios with the pair prescreen enabled); other detectors ignore
    it.
    """
    unknown = [name for name in detectors if name not in _DETECTOR_RUNNERS]
    if unknown:
        raise KeyError(
            f"unknown detectors {unknown}; choose from {sorted(_DETECTOR_RUNNERS)}"
        )
    train, dev, test, test_truth = data.split()
    truth_events = tuple(tuple(event) for event in test_truth.intervals())

    outcomes: list[DetectorOutcome] = []
    for name in detectors:
        watch = Stopwatch()
        if name == "framework" and framework_config is not None:
            scored = _run_framework(train, dev, test, metrics, config=framework_config)
        else:
            scored = _DETECTOR_RUNNERS[name](train, dev, test, metrics)
        threshold = _calibrated_threshold(scored.dev_scores)
        predicted = intervals_from_scores(
            scored.test_scores,
            threshold,
            stride=scored.stride,
            span=scored.span,
            merge_gap=scored.span,
        )
        evaluation = evaluate_events(predicted, truth_events)
        seconds = watch.elapsed
        outcomes.append(
            DetectorOutcome(
                detector=name,
                threshold=threshold,
                num_windows=int(scored.test_scores.shape[0]),
                window_span=scored.span,
                window_stride=scored.stride,
                evaluation=evaluation,
                seconds=seconds,
            )
        )
        if metrics is not None:
            metrics.counter("scenarios.detector_runs").inc()
            metrics.histogram("scenarios.detector_seconds").observe(seconds)
        logger.info(
            "scenario %s / %s: precision=%.2f recall=%.2f (%d episodes, %d events)",
            data.name, name, evaluation.precision, evaluation.recall,
            len(evaluation.predicted_episodes), len(evaluation.true_events),
        )
    if metrics is not None:
        metrics.counter("scenarios.runs").inc()
    return ScenarioReport(
        scenario=data.name,
        tier=tier,
        seed=data.seed,
        params=data.params,
        frame_digest=data.digest,
        truth_events=truth_events,
        affected_sensors=test_truth.affected_sensors,
        kinds=test_truth.kinds,
        outcomes=tuple(outcomes),
    )


# ----------------------------------------------------------------------
# Benchmark log (BENCH_scenarios.json)
# ----------------------------------------------------------------------
def load_bench(path: str | Path) -> dict:
    """Read a scenario benchmark file, or an empty shell when missing."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCENARIO_SCHEMA, "records": []}
    payload = json.loads(path.read_text())
    if payload.get("schema") != SCENARIO_SCHEMA:
        raise ValueError(
            f"{path} carries schema {payload.get('schema')!r}, "
            f"expected {SCENARIO_SCHEMA!r}"
        )
    return payload


def append_bench_record(record: dict, path: str | Path) -> dict:
    """Append-or-replace one record keyed by ``(scenario, tier, seed)``.

    The write is atomic (temp file + rename), so a crashed run never
    leaves a half-written benchmark log.
    """
    path = Path(path)
    payload = load_bench(path)
    key = (record["scenario"], record.get("tier"), record["seed"])
    payload["records"] = [
        existing
        for existing in payload["records"]
        if (existing["scenario"], existing.get("tier"), existing["seed"]) != key
    ] + [record]
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise
    return payload


def run_suite(
    names: Sequence[str] | None = None,
    tier: str = "tiny",
    seed: int = 11,
    detectors: Sequence[str] = DEFAULT_DETECTORS,
    bench_path: str | Path | None = None,
    params: ScenarioParams | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[ScenarioReport]:
    """Generate and evaluate a set of scenarios, logging bench records.

    ``names=None`` runs every registered scenario.  With
    ``bench_path``, each report is appended (or replaced, keyed on
    ``(scenario, tier, seed)``) to the benchmark log as it completes.
    """
    if params is None and tier not in TIERS:
        raise KeyError(f"unknown tier {tier!r}; choose from {sorted(TIERS)}")
    reports: list[ScenarioReport] = []
    for name in names if names is not None else scenario_names():
        data = generate_scenario(name, params=params, seed=seed, tier=tier)
        report = run_scenario(
            data, detectors=detectors, tier=None if params else tier, metrics=metrics
        )
        reports.append(report)
        if bench_path is not None:
            append_bench_record(report.to_dict(), bench_path)
    return reports
