"""BLEU score ranges used to partition the relationship graph.

The paper partitions the full graph into subgraphs by edge BLEU score
(Table I): ``[0,60) [60,70) [70,80) [80,90) [90,100]``; the ``[80,90)``
subgraph is the one found best for anomaly detection.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScoreRange", "DEFAULT_RANGES", "DETECTION_RANGE", "STRONGEST_RANGE"]


@dataclass(frozen=True, order=True)
class ScoreRange:
    """A half-open BLEU interval ``[low, high)``.

    ``inclusive_high`` closes the upper end, used only for the terminal
    ``[90, 100]`` range so a perfect score of 100 is not orphaned.
    """

    low: float
    high: float
    inclusive_high: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high <= 100.0:
            raise ValueError(f"invalid BLEU range [{self.low}, {self.high}]")

    def contains(self, score: float) -> bool:
        if self.inclusive_high:
            return self.low <= score <= self.high
        return self.low <= score < self.high

    @property
    def label(self) -> str:
        closer = "]" if self.inclusive_high else ")"
        return f"[{self.low:g}, {self.high:g}{closer}"

    def __str__(self) -> str:
        return self.label


#: The paper's Table I partition.
DEFAULT_RANGES: tuple[ScoreRange, ...] = (
    ScoreRange(0, 60),
    ScoreRange(60, 70),
    ScoreRange(70, 80),
    ScoreRange(80, 90),
    ScoreRange(90, 100, inclusive_high=True),
)

#: The range the paper finds best for anomaly detection.
DETECTION_RANGE = DEFAULT_RANGES[3]

#: The strongest-relationship range, shown to be useless for detection.
STRONGEST_RANGE = DEFAULT_RANGES[4]
