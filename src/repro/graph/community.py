"""Random-walk community detection (Walktrap, Pons & Latapy 2006).

The paper (Section II-B) applies "a random walk-based community
detection algorithm [33]" to the relationship subgraphs to discover
clusters of sensors that originate from the same system component.
This module implements the Walktrap algorithm from scratch: short
random walks define a distance between vertices; communities are merged
agglomeratively (adjacent pairs only) by minimum variance increase; the
partition with maximum modularity is returned.

It also exposes :func:`connected_component_clusters`, the simpler view
used when reading clusters directly off local subgraphs (Figure 7).
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

__all__ = ["walktrap_communities", "connected_component_clusters", "modularity"]


def connected_component_clusters(graph: nx.DiGraph | nx.Graph) -> list[set[str]]:
    """Weakly connected components, largest first (Figure 7's clusters)."""
    undirected = graph.to_undirected() if graph.is_directed() else graph
    components = [set(component) for component in nx.connected_components(undirected)]
    return sorted(components, key=lambda c: (-len(c), sorted(c)[0] if c else ""))


def modularity(graph: nx.Graph, communities: list[set[str]]) -> float:
    """Newman modularity ``Q`` of a partition of an undirected graph."""
    total = graph.number_of_edges()
    if total == 0:
        return 0.0
    q = 0.0
    for community in communities:
        internal = graph.subgraph(community).number_of_edges()
        degree_sum = sum(dict(graph.degree(community)).values())
        q += internal / total - (degree_sum / (2.0 * total)) ** 2
    return q


def walktrap_communities(
    graph: nx.DiGraph | nx.Graph, walk_length: int = 4
) -> list[set[str]]:
    """Partition ``graph`` into communities via the Walktrap algorithm.

    Parameters
    ----------
    graph:
        Directed graphs are symmetrised first (community structure is
        an undirected notion in the paper's usage).
    walk_length:
        Number of random-walk steps ``t`` (Pons & Latapy recommend
        3–8; default 4).

    Returns
    -------
    Communities as sets of node names, largest first.  Disconnected
    graphs are handled per connected component.
    """
    undirected = graph.to_undirected() if graph.is_directed() else graph.copy()
    if undirected.number_of_nodes() == 0:
        return []

    results: list[set[str]] = []
    for component in nx.connected_components(undirected):
        sub = undirected.subgraph(component)
        results.extend(_walktrap_component(sub, walk_length))
    return sorted(results, key=lambda c: (-len(c), sorted(c)[0]))


def _walktrap_component(graph: nx.Graph, walk_length: int) -> list[set[str]]:
    nodes = sorted(graph.nodes)
    n = len(nodes)
    if n <= 2:
        return [set(nodes)]
    index = {node: i for i, node in enumerate(nodes)}

    # Adjacency with self-loops (P&L trick so walks can stay in place).
    adjacency = np.zeros((n, n))
    for u, v in graph.edges():
        adjacency[index[u], index[v]] = 1.0
        adjacency[index[v], index[u]] = 1.0
    np.fill_diagonal(adjacency, 1.0)
    degrees = adjacency.sum(axis=1)
    transition = adjacency / degrees[:, None]
    walk = np.linalg.matrix_power(transition, walk_length)
    inv_sqrt_degree = 1.0 / np.sqrt(degrees)

    # Community state: member lists, probability vectors, sizes.
    members: dict[int, set[str]] = {i: {nodes[i]} for i in range(n)}
    prob: dict[int, np.ndarray] = {i: walk[i].copy() for i in range(n)}
    size: dict[int, int] = {i: 1 for i in range(n)}
    neighbours: dict[int, set[int]] = {
        i: {index[v] for v in graph.neighbors(nodes[i])} - {i} for i in range(n)
    }

    def delta_sigma(a: int, b: int) -> float:
        diff = (prob[a] - prob[b]) * inv_sqrt_degree
        r2 = float(diff @ diff)
        return (size[a] * size[b]) / ((size[a] + size[b]) * n) * r2

    partitions: list[list[set[str]]] = [list(members.values())]
    partitions[0] = [set(c) for c in members.values()]
    next_id = n
    active = set(range(n))

    while len(active) > 1:
        best_pair: tuple[int, int] | None = None
        best_delta = np.inf
        for a in active:
            for b in neighbours[a]:
                if b <= a or b not in active:
                    continue
                delta = delta_sigma(a, b)
                if delta < best_delta:
                    best_delta = delta
                    best_pair = (a, b)
        if best_pair is None:
            break  # remaining communities are mutually non-adjacent
        a, b = best_pair
        merged_id = next_id
        next_id += 1
        members[merged_id] = members[a] | members[b]
        prob[merged_id] = (size[a] * prob[a] + size[b] * prob[b]) / (size[a] + size[b])
        size[merged_id] = size[a] + size[b]
        neighbours[merged_id] = (neighbours[a] | neighbours[b]) - {a, b}
        for other in neighbours[merged_id]:
            neighbours[other] -= {a, b}
            neighbours[other].add(merged_id)
        active -= {a, b}
        active.add(merged_id)
        for stale in (a, b):
            members.pop(stale)
            prob.pop(stale)
            size.pop(stale)
            neighbours.pop(stale)
        partitions.append([set(members[c]) for c in active])

    best = max(partitions, key=lambda partition: modularity(graph, partition))
    return [set(c) for c in best]
