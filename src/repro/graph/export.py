"""Exporting relationship graphs for downstream tooling.

The trained multivariate relationship graph is valuable outside this
library (dashboards, graph databases, Gephi-style visualisation of
Figures 6/7).  This module serialises the graph's *structure and
scores* — not the fitted models — to JSON and GraphML.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx

from .mvrg import MultivariateRelationshipGraph

__all__ = ["graph_to_dict", "save_graph_json", "load_graph_scores", "save_graphml"]

_FORMAT = "repro-mvrg-v1"


def graph_to_dict(graph: MultivariateRelationshipGraph) -> dict:
    """A JSON-serialisable description of nodes and scored edges."""
    return {
        "format": _FORMAT,
        "sensors": graph.sensors,
        "edges": [
            {
                "source": rel.source,
                "target": rel.target,
                "score": rel.score,
                "runtime_seconds": rel.runtime_seconds,
            }
            for rel in graph
        ],
    }


def save_graph_json(graph: MultivariateRelationshipGraph, path: str | Path) -> Path:
    """Write the graph description to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2))
    return path


def load_graph_scores(path: str | Path) -> nx.DiGraph:
    """Load a JSON export back as a weighted ``networkx.DiGraph``.

    Only the structure and BLEU scores round-trip (by design — the
    fitted translation models live in
    :func:`repro.pipeline.save_framework` pickles).
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path} is not a saved relationship graph")
    graph = nx.DiGraph()
    graph.add_nodes_from(payload["sensors"])
    for edge in payload["edges"]:
        graph.add_edge(edge["source"], edge["target"], score=edge["score"])
    return graph


def save_graphml(graph: MultivariateRelationshipGraph, path: str | Path) -> Path:
    """Write the scored graph as GraphML (Gephi/yEd compatible)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    nx.write_graphml(graph.to_networkx(), path)
    return path
