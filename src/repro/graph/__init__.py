"""Multivariate relationship graph: construction, subgraphs, communities."""

from .centrality import DegreeSummary, degree_distribution, degree_summary, rank_by_in_degree
from .community import connected_component_clusters, modularity, walktrap_communities
from .dedup import RedundancyGroups, find_redundant_sensors, sequence_agreement
from .export import graph_to_dict, load_graph_scores, save_graph_json, save_graphml
from .metrics import GraphSummary, gini_coefficient, score_asymmetry, summarize_graph
from .mvrg import MultivariateRelationshipGraph, PairwiseRelationship
from .prescreen import (
    DEFAULT_FLOORS,
    DEGENERATE_AFFINITY,
    PRESCREEN_METHODS,
    PrescreenConfig,
    PrescreenResult,
    affinity_matrix,
    pair_affinity,
    prescreen_pairs,
    resolve_floor,
)
from .ranges import DEFAULT_RANGES, DETECTION_RANGE, STRONGEST_RANGE, ScoreRange
from .subgraphs import (
    POPULAR_IN_DEGREE,
    SubgraphStats,
    global_subgraph,
    local_subgraph,
    partition_by_ranges,
    popular_sensors,
    subgraph_statistics,
)

__all__ = [
    "DEFAULT_FLOORS",
    "DEFAULT_RANGES",
    "DEGENERATE_AFFINITY",
    "DETECTION_RANGE",
    "DegreeSummary",
    "GraphSummary",
    "MultivariateRelationshipGraph",
    "POPULAR_IN_DEGREE",
    "PRESCREEN_METHODS",
    "PairwiseRelationship",
    "PrescreenConfig",
    "PrescreenResult",
    "RedundancyGroups",
    "STRONGEST_RANGE",
    "ScoreRange",
    "SubgraphStats",
    "affinity_matrix",
    "connected_component_clusters",
    "degree_distribution",
    "degree_summary",
    "find_redundant_sensors",
    "gini_coefficient",
    "global_subgraph",
    "graph_to_dict",
    "load_graph_scores",
    "local_subgraph",
    "modularity",
    "pair_affinity",
    "partition_by_ranges",
    "popular_sensors",
    "prescreen_pairs",
    "rank_by_in_degree",
    "resolve_floor",
    "save_graph_json",
    "save_graphml",
    "score_asymmetry",
    "sequence_agreement",
    "subgraph_statistics",
    "summarize_graph",
    "walktrap_communities",
]
