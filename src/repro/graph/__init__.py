"""Multivariate relationship graph: construction, subgraphs, communities."""

from .centrality import DegreeSummary, degree_distribution, degree_summary, rank_by_in_degree
from .community import connected_component_clusters, modularity, walktrap_communities
from .dedup import RedundancyGroups, find_redundant_sensors, sequence_agreement
from .export import graph_to_dict, load_graph_scores, save_graph_json, save_graphml
from .metrics import GraphSummary, gini_coefficient, score_asymmetry, summarize_graph
from .mvrg import MultivariateRelationshipGraph, PairwiseRelationship
from .ranges import DEFAULT_RANGES, DETECTION_RANGE, STRONGEST_RANGE, ScoreRange
from .subgraphs import (
    POPULAR_IN_DEGREE,
    SubgraphStats,
    global_subgraph,
    local_subgraph,
    partition_by_ranges,
    popular_sensors,
    subgraph_statistics,
)

__all__ = [
    "DEFAULT_RANGES",
    "DETECTION_RANGE",
    "DegreeSummary",
    "GraphSummary",
    "MultivariateRelationshipGraph",
    "POPULAR_IN_DEGREE",
    "PairwiseRelationship",
    "RedundancyGroups",
    "STRONGEST_RANGE",
    "ScoreRange",
    "SubgraphStats",
    "connected_component_clusters",
    "degree_distribution",
    "degree_summary",
    "find_redundant_sensors",
    "gini_coefficient",
    "global_subgraph",
    "graph_to_dict",
    "load_graph_scores",
    "local_subgraph",
    "modularity",
    "partition_by_ranges",
    "popular_sensors",
    "rank_by_in_degree",
    "save_graph_json",
    "save_graphml",
    "score_asymmetry",
    "sequence_agreement",
    "subgraph_statistics",
    "summarize_graph",
    "walktrap_communities",
]
