"""Multivariate relationship graph construction (Algorithm 1).

For every ordered sensor pair ``(i, j)`` a directional translation
model ``g(i, j)`` is trained on the training corpus and scored with
BLEU on the development corpus, giving the relationship strength
``s(i, j)``.  Nodes are sensors; the two directed edges per pair carry
the scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import networkx as nx
import numpy as np

from ..lang.corpus import LanguageConfig, MultiLanguageCorpus
from ..lang.events import MultivariateEventLog
from ..pipeline.types import PairStore
from ..translation.base import TranslationModel
from ..translation.factory import translator_factory
from ..translation.seq2seq import NMTConfig

__all__ = ["PairwiseRelationship", "MultivariateRelationshipGraph"]


@dataclass
class PairwiseRelationship:
    """A fitted directional relationship ``i -> j``.

    Attributes
    ----------
    model:
        The trained translation model ``g(i, j)``.
    score:
        Development-set corpus BLEU ``s(i, j)`` — the edge weight.
    dev_sentence_scores:
        Smoothed per-sentence BLEU on the development set; the anomaly
        detector's robust threshold strategies are derived from this
        normal-operation score distribution.
    runtime_seconds:
        Wall-clock train+score time (data behind Figure 4a).
    train_seconds, eval_seconds:
        The fit and dev-scoring phases of ``runtime_seconds``,
        measured in the worker that trained the pair and merged into
        the build's metrics registry (``pair_train.train_seconds`` /
        ``pair_train.eval_seconds``).  Zero on relationships restored
        from pre-observability checkpoints.
    """

    source: str
    target: str
    model: TranslationModel
    score: float
    dev_sentence_scores: np.ndarray | None = None
    runtime_seconds: float = 0.0
    train_seconds: float = 0.0
    eval_seconds: float = 0.0

    def threshold(self, strategy: str = "train", quantile: float = 0.1) -> float:
        """The break threshold ``T(i, j)`` under a strategy.

        - ``"train"`` — the paper-literal Algorithm 2: ``T = s(i, j)``;
        - ``"dev-min"`` — the worst per-sentence dev BLEU, so only
          translations worse than anything seen in normal operation
          count as broken;
        - ``"dev-quantile"`` — the ``quantile`` point of the dev
          per-sentence distribution (between the two extremes).
        """
        if strategy == "train" or self.dev_sentence_scores is None:
            return self.score
        if strategy == "dev-min":
            return float(self.dev_sentence_scores.min())
        if strategy == "dev-quantile":
            return float(np.quantile(self.dev_sentence_scores, quantile))
        raise ValueError(f"unknown threshold strategy {strategy!r}")


class MultivariateRelationshipGraph:
    """The directed relationship graph ``G`` returned by Algorithm 1."""

    def __init__(
        self,
        corpus: MultiLanguageCorpus,
        relationships: dict[tuple[str, str], PairwiseRelationship],
    ) -> None:
        self.corpus = corpus
        self.relationships = relationships
        #: Populated by :meth:`build`: completed/resumed/skipped pairs,
        #: worker configuration and wall-clock time of the build.
        self.build_report = None
        #: Populated by :meth:`build` when the affinity prescreen ran:
        #: the :class:`~repro.graph.prescreen.PrescreenResult` with the
        #: affinity matrix, resolved floor and pruning decisions.
        self.prescreen = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        training_log: MultivariateEventLog,
        development_log: MultivariateEventLog,
        config: LanguageConfig | None = None,
        engine: str = "ngram",
        nmt_config: NMTConfig | None = None,
        model_factory: Callable[[], TranslationModel] | None = None,
        pairs: Iterable[tuple[str, str]] | None = None,
        progress: Callable[[str, str, float], None] | None = None,
        n_jobs: int | str = 1,
        backend: str = "auto",
        train_engine: str = "looped",
        cohort_size: int | None = None,
        checkpoint: PairStore | str | None = None,
        retries: int = 1,
        store: "ArtifactStore | str | None" = None,
        representation: str = "codes",
        metrics: "MetricsRegistry | None" = None,
        prescreen: "str | PrescreenConfig | None" = "off",
    ) -> "MultivariateRelationshipGraph":
        """Run Algorithm 1 as a stage graph.

        Parameters
        ----------
        training_log, development_log:
            Normal-operation event logs.  Languages (encoders,
            vocabularies) are fitted on the training log; BLEU scores
            ``s(i, j)`` are measured on the development log.
        config:
            Language windowing configuration; defaults to the paper's
            plant settings.
        engine, nmt_config, model_factory:
            Translation engine selection; ``model_factory`` overrides
            ``engine`` when given.
        pairs:
            Optional subset of ordered pairs to model (default: all
            ``N(N-1)`` ordered pairs, as in the paper).
        progress:
            Optional callback ``(source, target, score)`` invoked after
            each pair is fitted (completion order under parallel
            builds), for long-running builds.
        n_jobs, backend:
            Worker pool for the pair-training loop (see
            :class:`~repro.pipeline.executor.PairExecutor`).  The
            default is the serial single-process build; parallel
            builds produce byte-identical scores because every pair
            model trains independently from a fresh seeded factory.
        train_engine, cohort_size:
            ``"looped"`` (default) trains each pair model on its own;
            ``"batched"`` (seq2seq engine only) advances cohorts of up
            to ``cohort_size`` shape-compatible pairs in lockstep
            inside one tensor program (see
            :class:`~repro.translation.BatchedPairTrainer` for the
            equivalence contract), overriding ``backend``.
        checkpoint:
            Optional pair-level checkpoint journal (path or
            :class:`~repro.pipeline.persistence.PairCheckpointStore`);
            completed pairs are restored instead of retrained and new
            completions are recorded as they finish.
        retries:
            Per-pair retry budget; a pair failing every attempt is
            recorded as a skipped edge in ``build_report`` instead of
            aborting the build.
        store:
            Optional content-addressed artifact cache (path or
            :class:`~repro.pipeline.artifacts.ArtifactStore`).  Pairs
            whose input fingerprint is already stored are restored
            instead of retrained (``build_report.cached``); a rebuild
            with unchanged logs and config trains zero pairs.
        representation:
            Sentence representation of the fitted languages: ``"codes"``
            (default, packed integer word keys over the interned
            columnar event core) or ``"strings"`` (legacy encrypted
            character strings).  Scores are bit-identical either way;
            codes are faster and smaller.
        metrics:
            Optional :class:`~repro.obs.MetricsRegistry` receiving
            stage timings, cache hit/miss counts and pair-training
            counters for this build; a run-private registry is created
            when omitted.
        prescreen:
            Pair-affinity prescreen (see :mod:`repro.graph.prescreen`
            and ``docs/prescreen.md``): ``"off"`` (default) trains the
            full requested grid, bit-identically to builds before the
            prescreen existed; ``"bleu"`` or ``"mi"`` prune unordered
            pairs whose cheap affinity falls below the method's
            calibrated floor before any model trains; a
            :class:`~repro.graph.prescreen.PrescreenConfig` sets the
            floor/ordering explicitly.  Pruned pairs are recorded in
            ``build_report.pruned`` and the full
            :class:`~repro.graph.prescreen.PrescreenResult` on the
            returned graph's ``prescreen`` attribute.
        """
        from ..pipeline.artifacts import ArtifactStore
        from ..pipeline.persistence import PairCheckpointStore
        from ..pipeline.stages import (
            CorpusStage,
            EncryptStage,
            GraphAssembleStage,
            PairTrainStage,
            PrescreenStage,
            StageContext,
            StageGraph,
        )
        from .prescreen import PrescreenConfig

        config = config or LanguageConfig()
        if prescreen is None or prescreen == "off":
            prescreen_config = None
        elif isinstance(prescreen, PrescreenConfig):
            prescreen_config = prescreen
        else:
            prescreen_config = PrescreenConfig(method=prescreen)
        if train_engine not in ("looped", "batched"):
            raise ValueError(
                f"unknown train engine {train_engine!r}; choose from ('looped', 'batched')"
            )
        if model_factory is not None:
            if train_engine == "batched":
                raise ValueError("train_engine='batched' requires engine='seq2seq'")
            spec = ("factory", model_factory)
        else:
            translator_factory(engine, nmt_config)  # validate the engine name early
            spec = ("engine", engine, nmt_config)
            if train_engine == "batched":
                if engine != "seq2seq":
                    raise ValueError(
                        "train_engine='batched' requires engine='seq2seq' "
                        f"(got engine={engine!r})"
                    )
                backend = "batched"
        if checkpoint is not None and not isinstance(checkpoint, PairStore):
            checkpoint = PairCheckpointStore(checkpoint)
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)

        seeds = {
            "training_log": training_log,
            "development_log": development_log,
            "language_config": config,
            "representation": representation,
            "factory_spec": spec,
            "pairs": pairs,
            "prescreen_config": prescreen_config,
            "executor_options": {
                "n_jobs": n_jobs,
                "backend": backend,
                "cohort_size": cohort_size,
                "retries": retries,
                "progress": progress,
                "checkpoint": checkpoint,
            },
        }
        pipeline = StageGraph(
            [
                EncryptStage(),
                CorpusStage(),
                PrescreenStage(),
                PairTrainStage(),
                GraphAssembleStage(),
            ],
            seeds=tuple(seeds),
        )
        context = pipeline.run(StageContext(seeds, store=store, metrics=metrics))
        return context["graph"]

    # ------------------------------------------------------------------
    @property
    def sensors(self) -> list[str]:
        return self.corpus.sensors

    @property
    def num_edges(self) -> int:
        return len(self.relationships)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.relationships

    def __getitem__(self, pair: tuple[str, str]) -> PairwiseRelationship:
        return self.relationships[pair]

    def __iter__(self) -> Iterator[PairwiseRelationship]:
        return iter(self.relationships.values())

    def score(self, source: str, target: str) -> float:
        """The training BLEU ``s(i, j)`` for a directed pair."""
        return self.relationships[(source, target)].score

    def scores(self) -> dict[tuple[str, str], float]:
        """All directed-edge scores (data behind Figure 4b)."""
        return {pair: rel.score for pair, rel in self.relationships.items()}

    def runtimes(self) -> list[float]:
        """Per-pair model runtimes (data behind Figure 4a)."""
        return [rel.runtime_seconds for rel in self.relationships.values()]

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """The full graph ("Ori-MVRG"): every modelled edge, BLEU weights."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.sensors)
        for (source, target), rel in self.relationships.items():
            graph.add_edge(source, target, score=rel.score)
        return graph
