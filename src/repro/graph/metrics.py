"""Graph-level summary metrics of a relationship graph.

Quantifies properties the paper discusses qualitatively: how symmetric
the directional scores are ("the BLEU score of the edges that connect
the same two sensors may be different"), how dense each range is, and
how concentrated in-degree is (the popular-sensor effect of Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mvrg import MultivariateRelationshipGraph

__all__ = ["GraphSummary", "summarize_graph", "score_asymmetry", "gini_coefficient"]


def score_asymmetry(graph: MultivariateRelationshipGraph) -> dict[tuple[str, str], float]:
    """|s(i,j) − s(j,i)| per unordered pair."""
    seen: set[frozenset[str]] = set()
    asymmetry: dict[tuple[str, str], float] = {}
    for (source, target), relationship in graph.relationships.items():
        key = frozenset((source, target))
        if key in seen or (target, source) not in graph:
            continue
        seen.add(key)
        asymmetry[(source, target)] = abs(
            relationship.score - graph.score(target, source)
        )
    return asymmetry


def gini_coefficient(values: np.ndarray) -> float:
    """Gini concentration index in [0, 1] for non-negative values."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0 or values.sum() == 0:
        return 0.0
    if (values < 0).any():
        raise ValueError("gini_coefficient requires non-negative values")
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum()) / (n * values.sum()) - (n + 1) / n)


@dataclass(frozen=True)
class GraphSummary:
    """One-shot quantitative description of a relationship graph."""

    num_sensors: int
    num_edges: int
    mean_score: float
    median_score: float
    mean_asymmetry: float
    max_asymmetry: float
    in_degree_gini: float

    def as_row(self) -> dict[str, object]:
        return {
            "# sensors": self.num_sensors,
            "# edges": self.num_edges,
            "mean BLEU": round(self.mean_score, 1),
            "median BLEU": round(self.median_score, 1),
            "mean asymmetry": round(self.mean_asymmetry, 1),
            "max asymmetry": round(self.max_asymmetry, 1),
            "in-degree Gini": round(self.in_degree_gini, 2),
        }


def summarize_graph(
    graph: MultivariateRelationshipGraph, strong_threshold: float = 60.0
) -> GraphSummary:
    """Compute :class:`GraphSummary` for a fitted graph.

    The in-degree Gini is computed over the strong subgraph (score >=
    ``strong_threshold``) — concentration there is what creates the
    paper's popular sensors.
    """
    scores = np.asarray(list(graph.scores().values()))
    asymmetry = np.asarray(list(score_asymmetry(graph).values()))
    strong_in_degree = np.zeros(len(graph.sensors))
    index_of = {name: i for i, name in enumerate(graph.sensors)}
    for (source, target), relationship in graph.relationships.items():
        if relationship.score >= strong_threshold:
            strong_in_degree[index_of[target]] += 1
    return GraphSummary(
        num_sensors=len(graph.sensors),
        num_edges=graph.num_edges,
        mean_score=float(scores.mean()) if scores.size else 0.0,
        median_score=float(np.median(scores)) if scores.size else 0.0,
        mean_asymmetry=float(asymmetry.mean()) if asymmetry.size else 0.0,
        max_asymmetry=float(asymmetry.max()) if asymmetry.size else 0.0,
        in_degree_gini=gini_coefficient(strong_in_degree),
    )
