"""Redundant-sensor filtering (Section III-A2's scalability note).

The paper observes that "many sensors actually share similar event
sequences.  If redundant sensors are further filtered out, then models
are trained on representative sensors only and training time reduces
significantly."  This module implements that optimisation: sensors
whose encoded event sequences agree on at least ``similarity`` of
samples are grouped; one representative per group is modelled; the
relationship graph is then expanded back so every original sensor
carries its representative's edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.encryption import SensorEncoder
from ..lang.events import MultivariateEventLog

__all__ = ["RedundancyGroups", "find_redundant_sensors", "sequence_agreement"]


def sequence_agreement(first: tuple[str, ...], second: tuple[str, ...]) -> float:
    """Fraction of positions where two aligned state sequences agree.

    Sequences are compared after per-sensor encryption, so two binary
    sensors agree when their *normalised* states coincide — an inverted
    copy scores near 0 and is (correctly) not considered redundant:
    its translation model is still trivial, but its language differs.
    """
    if len(first) != len(second):
        raise ValueError("sequences must be aligned")
    if not first:
        return 1.0
    matches = sum(a == b for a, b in zip(first, second))
    return matches / len(first)


@dataclass(frozen=True)
class RedundancyGroups:
    """Partition of sensors into redundancy groups."""

    representative_of: dict[str, str]

    @property
    def representatives(self) -> list[str]:
        """Distinct representatives, in first-seen order."""
        seen: list[str] = []
        for representative in self.representative_of.values():
            if representative not in seen:
                seen.append(representative)
        return seen

    def group_of(self, representative: str) -> list[str]:
        """All sensors represented by ``representative``."""
        return [
            sensor
            for sensor, rep in self.representative_of.items()
            if rep == representative
        ]

    @property
    def num_redundant(self) -> int:
        """Sensors that will not get their own models."""
        return len(self.representative_of) - len(self.representatives)

    def reduction_factor(self) -> float:
        """Pairwise-model count reduction: N(N-1) vs R(R-1)."""
        n = len(self.representative_of)
        r = len(self.representatives)
        if r < 2:
            return float("inf") if n >= 2 else 1.0
        return (n * (n - 1)) / (r * (r - 1))


def find_redundant_sensors(
    log: MultivariateEventLog, similarity: float = 0.98
) -> RedundancyGroups:
    """Greedily group sensors whose encoded sequences nearly coincide.

    Parameters
    ----------
    log:
        Training log (already filtered of constants, or not — constant
        sensors simply group together).
    similarity:
        Minimum per-sample agreement (after encryption) for a sensor to
        join an existing group.  The first member of each group is its
        representative.
    """
    if not 0.0 < similarity <= 1.0:
        raise ValueError("similarity must be in (0, 1]")
    encoded: dict[str, tuple[str, ...]] = {}
    for sequence in log:
        encoder = SensorEncoder.fit(sequence)
        encoded[sequence.sensor] = tuple(encoder.encode(sequence.events))

    representative_of: dict[str, str] = {}
    representatives: list[str] = []
    for sensor, codes in encoded.items():
        assigned = False
        for representative in representatives:
            if sequence_agreement(codes, encoded[representative]) >= similarity:
                representative_of[sensor] = representative
                assigned = True
                break
        if not assigned:
            representatives.append(sensor)
            representative_of[sensor] = sensor
    return RedundancyGroups(representative_of=representative_of)
