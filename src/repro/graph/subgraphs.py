"""Global and local subgraph extraction (Section III-B).

A *global subgraph* keeps only the edges whose BLEU score falls in a
given range, dropping isolated nodes.  A *local subgraph* additionally
removes "popular" sensors (in-degree above a threshold, paper: 100),
revealing clusters of sensors from the same system component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from .mvrg import MultivariateRelationshipGraph
from .ranges import DEFAULT_RANGES, ScoreRange

__all__ = [
    "global_subgraph",
    "local_subgraph",
    "popular_sensors",
    "partition_by_ranges",
    "SubgraphStats",
    "subgraph_statistics",
    "POPULAR_IN_DEGREE",
]

#: Paper's threshold for a "popular" sensor.
POPULAR_IN_DEGREE = 100


def global_subgraph(
    graph: MultivariateRelationshipGraph | nx.DiGraph, score_range: ScoreRange
) -> nx.DiGraph:
    """Edges whose BLEU score lies in ``score_range``; isolated nodes dropped."""
    full = graph.to_networkx() if isinstance(graph, MultivariateRelationshipGraph) else graph
    sub = nx.DiGraph()
    for source, target, data in full.edges(data=True):
        if score_range.contains(data["score"]):
            sub.add_edge(source, target, score=data["score"])
    return sub


def popular_sensors(graph: nx.DiGraph, threshold: int = POPULAR_IN_DEGREE) -> list[str]:
    """Sensors with in-degree >= ``threshold`` — critical health indicators."""
    return sorted(node for node, degree in graph.in_degree() if degree >= threshold)


def local_subgraph(
    global_graph: nx.DiGraph, threshold: int = POPULAR_IN_DEGREE
) -> nx.DiGraph:
    """Remove popular sensors (and then isolated nodes) from a global subgraph."""
    popular = set(popular_sensors(global_graph, threshold))
    local = global_graph.subgraph(n for n in global_graph if n not in popular).copy()
    local.remove_nodes_from([node for node in list(local) if local.degree(node) == 0])
    return local


def partition_by_ranges(
    graph: MultivariateRelationshipGraph,
    ranges: Sequence[ScoreRange] = DEFAULT_RANGES,
) -> dict[ScoreRange, nx.DiGraph]:
    """One global subgraph per score range (the paper's Table I split)."""
    return {score_range: global_subgraph(graph, score_range) for score_range in ranges}


@dataclass(frozen=True)
class SubgraphStats:
    """One row of Table I."""

    score_range: ScoreRange
    relationship_fraction: float
    num_sensors: int
    num_popular: int
    num_relationships_without_popular: int

    def as_row(self) -> dict[str, object]:
        return {
            "range": self.score_range.label,
            "% relationships": round(100.0 * self.relationship_fraction, 1),
            "# sensors": self.num_sensors,
            "# popular sensors": self.num_popular,
            "# relationships (w/o popular)": self.num_relationships_without_popular,
        }


def subgraph_statistics(
    graph: MultivariateRelationshipGraph,
    ranges: Sequence[ScoreRange] = DEFAULT_RANGES,
    popular_threshold: int = POPULAR_IN_DEGREE,
) -> list[SubgraphStats]:
    """Compute Table I: per-range edge share, sensor and popular counts."""
    total_edges = graph.num_edges
    stats: list[SubgraphStats] = []
    for score_range, sub in partition_by_ranges(graph, ranges).items():
        local = local_subgraph(sub, popular_threshold)
        stats.append(
            SubgraphStats(
                score_range=score_range,
                relationship_fraction=(sub.number_of_edges() / total_edges) if total_edges else 0.0,
                num_sensors=sub.number_of_nodes(),
                num_popular=len(popular_sensors(sub, popular_threshold)),
                num_relationships_without_popular=local.number_of_edges(),
            )
        )
    return stats
