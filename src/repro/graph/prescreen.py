"""Sub-quadratic pair prescreen for Algorithm 1 (see ``docs/prescreen.md``).

Algorithm 1 trains all ``N(N-1)`` directed translation models, but the
relationship graph only ever *uses* pairs whose dev-BLEU clears a
global-subgraph range.  This module scores every unordered pair with a
cheap vectorised affinity — no model training — so pairs that no
translation model could turn into a usable edge are pruned before the
:class:`~repro.pipeline.executor.PairExecutor` ever sees them.  Two
proxies are offered, both reported on a predicted dev-BLEU 0–100 scale
so floors are directly comparable with the score ranges:

- ``"bleu"`` — the leave-one-out mapping-predictability proxy of
  :func:`~repro.translation.bleu.mapping_proxy_scores`, which predicts
  each target word from exactly the translator's backoff context (the
  aligned source word plus the previous target word).  The per-word
  accuracy is raised to :data:`BLEU_GEOMETRY_EXPONENT` to land on the
  BLEU scale.  This is the conservative default: it sees both the
  cross-channel and the target's self-predictability, the two routes
  by which a trained pair can reach a high dev-BLEU.
- ``"mi"`` — normalised mutual information between the aligned word
  streams, ``100 * I(X; Y) / max(H(X), H(Y))``, guarded by each
  sensor's own self-predictability (a sensor whose next word is
  predictable from its previous word scores high dev-BLEU as a target
  regardless of the source, so such pairs are never pruned).  More
  aggressive than ``"bleu"``: it cannot see joint source+history
  interactions, so its floor is heuristic rather than calibrated.

Affinities are symmetric; a pair is pruned only when *both* directions
are hopeless.  Degenerate evidence (no aligned sentences, a
zero-entropy stream) is parked at :data:`DEGENERATE_AFFINITY` — the
ceiling, not the floor — so the prescreen can never prune a pair it
could not actually measure.
"""

from __future__ import annotations

import itertools
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from ..translation.bleu import Sentence, mapping_proxy_scores
from .community import walktrap_communities

__all__ = [
    "BLEU_GEOMETRY_EXPONENT",
    "DEFAULT_FLOORS",
    "DEGENERATE_AFFINITY",
    "PRESCREEN_METHODS",
    "PrescreenConfig",
    "PrescreenResult",
    "affinity_matrix",
    "pair_affinity",
    "prescreen_pairs",
    "resolve_floor",
]

#: Supported affinity proxies (plus ``"off"`` at the config/CLI layer,
#: which bypasses this module entirely).
PRESCREEN_METHODS = ("bleu", "mi")

#: Affinity assigned when a pair cannot be measured (no aligned
#: sentences or, for ``"mi"``, a zero-entropy word stream).  It is the
#: *ceiling* of the affinity scale: unmeasurable pairs are always kept,
#: because pruning must only ever rest on positive evidence of
#: unrelatedness.  This is also self-consistent — a constant stream is
#: perfectly translatable, so its true dev-BLEU is high.
DEGENERATE_AFFINITY = 100.0

#: Maps per-word prediction accuracy onto the BLEU scale:
#: ``100 * accuracy ** BLEU_GEOMETRY_EXPONENT``.  BLEU is the geometric
#: mean of n-gram precisions over orders 1–4; under per-word error
#: independence an accuracy ``a`` yields precision ``a ** n`` at order
#: ``n``, so the geometric mean is ``a ** 2.5`` (mean of 1..4).
BLEU_GEOMETRY_EXPONENT = 2.5

#: Default affinity floor per method, on the predicted-BLEU scale.  The
#: calibration rule (see docs/prescreen.md): the lowest informative
#: score-range bound under ``DEFAULT_RANGES`` is 60, and a pruned pair
#: must provably fall below every admitted score, so the floor is that
#: bound minus a 5-point safety margin for proxy error.  On plant
#: corpora the proxy never under-predicted a trained pair's dev-BLEU by
#: more than ~4 points at this floor.  The same floor applies to
#: ``"mi"`` via its self-predictability guard, but its cross-channel
#: term (NMI) is heuristic on this scale.
DEFAULT_FLOORS = {"bleu": 55.0, "mi": 55.0}


@dataclass(frozen=True)
class PrescreenConfig:
    """How the prescreen scores, prunes and orders the pair grid.

    Attributes
    ----------
    method:
        ``"bleu"`` (leave-one-out mapping predictability in the
        translator's own context) or ``"mi"`` (normalised mutual
        information with a self-predictability guard).
    max_order:
        Highest source n-gram length pooled into the ``"bleu"`` proxy's
        leave-one-out counts (ignored by ``"mi"``).  The default 3
        mirrors the translator's backoff: high orders only contribute
        where their contexts repeat, which keeps pairs whose structure
        lives in longer-range context from being mis-scored by a
        unigram-only view.  Raising it further memorises more and
        prunes less.
    floor:
        Explicit affinity floor on the predicted-BLEU scale; pairs with
        affinity strictly below it are pruned.  ``None`` selects the
        method's calibrated default (:data:`DEFAULT_FLOORS`), capped by
        ``max_prune_fraction``.
    max_prune_fraction:
        Safety valve on calibrated floors: the resolved floor never
        prunes more than this fraction of the scored pairs.  The
        default 1.0 disables the cap (the calibrated floor is already
        evidence-based); an explicit ``floor`` is always applied
        verbatim, without the cap.
    community_order:
        When true, surviving pairs are reordered by Walktrap
        communities of the prescreen graph so dense intra-cluster
        pairs train first.  Ordering never changes any score.
    walk_length:
        Random-walk length handed to
        :func:`~repro.graph.community.walktrap_communities`.
    """

    method: str = "bleu"
    max_order: int = 3
    floor: float | None = None
    max_prune_fraction: float = 1.0
    community_order: bool = True
    walk_length: int = 4

    def __post_init__(self) -> None:
        if self.method not in PRESCREEN_METHODS:
            raise ValueError(
                f"unknown prescreen method {self.method!r}; "
                f"choose from {PRESCREEN_METHODS}"
            )
        if self.max_order < 1:
            raise ValueError("max_order must be >= 1")
        if self.floor is not None and not 0.0 <= self.floor <= 100.0:
            raise ValueError("floor must lie in [0, 100]")
        if not 0.0 <= self.max_prune_fraction <= 1.0:
            raise ValueError("max_prune_fraction must lie in [0, 1]")
        if self.walk_length < 1:
            raise ValueError("walk_length must be >= 1")


# ----------------------------------------------------------------------
# Affinity kernel
# ----------------------------------------------------------------------
def _aligned_stream_counts(
    sources: Sequence[Sentence], targets: Sequence[Sentence]
) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
    """Joint counts of the position-aligned word streams.

    Returns ``(joint_counts, source_marginal, target_marginal)`` or
    ``None`` when there are no aligned positions.  Each aligned
    sentence pair is trimmed to its common length, so ragged corpora
    degrade gracefully instead of raising.
    """
    joint: Counter = Counter()
    for source, target in zip(sources, targets):
        length = min(len(source), len(target))
        for i in range(length):
            joint[(source[i], target[i])] += 1
    if not joint:
        return None
    counts = np.fromiter(joint.values(), dtype=np.float64, count=len(joint))
    source_index: dict = {}
    target_index: dict = {}
    rows = np.empty(len(joint), dtype=np.int64)
    cols = np.empty(len(joint), dtype=np.int64)
    for position, (source_word, target_word) in enumerate(joint):
        rows[position] = source_index.setdefault(source_word, len(source_index))
        cols[position] = target_index.setdefault(target_word, len(target_index))
    source_marginal = np.zeros(len(source_index))
    target_marginal = np.zeros(len(target_index))
    np.add.at(source_marginal, rows, counts)
    np.add.at(target_marginal, cols, counts)
    return counts, source_marginal, target_marginal


def _entropy(counts: np.ndarray, total: float) -> float:
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def _mi_affinity(sources: Sequence[Sentence], targets: Sequence[Sentence]) -> float:
    """Normalised mutual information of the aligned streams, 0–100."""
    stream = _aligned_stream_counts(sources, targets)
    if stream is None:
        return DEGENERATE_AFFINITY
    joint, source_marginal, target_marginal = stream
    total = float(joint.sum())
    source_entropy = _entropy(source_marginal, total)
    target_entropy = _entropy(target_marginal, total)
    if source_entropy == 0.0 or target_entropy == 0.0:
        return DEGENERATE_AFFINITY
    mutual = source_entropy + target_entropy - _entropy(joint, total)
    normalised = mutual / max(source_entropy, target_entropy)
    return 100.0 * float(np.clip(normalised, 0.0, 1.0))


def _bleu_scale(accuracy: float) -> float:
    """Per-word accuracy (0–100) onto the predicted dev-BLEU scale."""
    return 100.0 * (accuracy / 100.0) ** BLEU_GEOMETRY_EXPONENT


def _self_affinity(sentences: Sequence[Sentence]) -> float:
    """Predicted dev-BLEU of a sensor translated from *any* source.

    The leave-one-out accuracy of predicting each word from the
    previous word alone (history restarts per sentence) bounds what the
    translator's ``P(t_k | t_{k-1})`` backoff achieves regardless of
    the source — a sensor this predictable is a high-BLEU target for
    every pair it appears in, so the ``"mi"`` proxy must never prune
    such pairs on low cross-channel evidence.
    """
    joint: Counter = Counter()
    for sentence in sentences:
        previous: object = _SELF_BOS
        for word in sentence:
            joint[(previous, word)] += 1
            previous = word
    best: Counter = Counter()
    totals: Counter = Counter()
    for (previous, _), count in joint.items():
        best[previous] = max(best[previous], count)
        totals[previous] += count
    total = sum(count - 1 for count in totals.values())
    if total == 0:
        return DEGENERATE_AFFINITY
    matched = sum(count - 1 for count in best.values())
    return _bleu_scale(100.0 * matched / total)


#: Sentence-start sentinel for :func:`_self_affinity`; never a real word.
_SELF_BOS = object()


def _cross_affinity(
    sources: Sequence[Sentence],
    targets: Sequence[Sentence],
    config: PrescreenConfig,
) -> float:
    """The symmetric cross-channel affinity (without the mi self guard)."""
    if config.method == "mi":
        return _mi_affinity(sources, targets)
    try:
        forward, reverse = mapping_proxy_scores(sources, targets, config.max_order)
    except ValueError:
        return DEGENERATE_AFFINITY
    return _bleu_scale(max(forward, reverse))


def pair_affinity(
    sources: Sequence[Sentence],
    targets: Sequence[Sentence],
    config: PrescreenConfig | None = None,
) -> float:
    """The prescreen affinity of one unordered sensor pair, 0–100.

    ``sources`` and ``targets`` are the two sensors' aligned sentence
    corpora (any common representation: packed integer codes or
    strings — the affinity is invariant under relabelling tokens).
    Symmetric by construction: the ``"bleu"`` proxy takes the better of
    the two mapping directions, ``"mi"`` is symmetric already and takes
    the better of its cross term and either sensor's self-affinity.
    Degenerate inputs (no aligned sentences, zero-entropy streams,
    zero-length sentences) return :data:`DEGENERATE_AFFINITY` rather
    than raising.
    """
    config = config or PrescreenConfig()
    if min(len(sources), len(targets)) == 0:
        return DEGENERATE_AFFINITY
    affinity = _cross_affinity(sources, targets, config)
    if config.method == "mi":
        affinity = max(affinity, _self_affinity(sources), _self_affinity(targets))
    return affinity


def affinity_matrix(
    corpus, config: PrescreenConfig | None = None
) -> tuple[list[str], np.ndarray]:
    """Symmetric pair-affinity matrix over a corpus's sensors.

    ``corpus`` is a :class:`~repro.lang.corpus.MultiLanguageCorpus`
    (anything mapping sensor → language with ``.sentences`` works).
    Entry ``(i, j)`` is :func:`pair_affinity` of the two training
    corpora; the diagonal holds self-affinities (maximal by
    construction).  Cost is ``O(N^2)`` cheap counting passes — no model
    is trained.
    """
    config = config or PrescreenConfig()
    sensors = list(corpus.sensors)
    matrix = np.zeros((len(sensors), len(sensors)))
    corpora = [corpus[name].sentences for name in sensors]
    selves = (
        [_self_affinity(c) if len(c) else DEGENERATE_AFFINITY for c in corpora]
        if config.method == "mi"
        else None
    )
    for i, source in enumerate(corpora):
        matrix[i, i] = pair_affinity(source, source, config)
        for j in range(i + 1, len(corpora)):
            if min(len(source), len(corpora[j])) == 0:
                affinity = DEGENERATE_AFFINITY
            else:
                affinity = _cross_affinity(source, corpora[j], config)
                if selves is not None:
                    affinity = max(affinity, selves[i], selves[j])
            matrix[i, j] = matrix[j, i] = affinity
    return sensors, matrix


# ----------------------------------------------------------------------
# Floor calibration and pruning
# ----------------------------------------------------------------------
def resolve_floor(affinities: np.ndarray, config: PrescreenConfig) -> float:
    """The affinity floor actually applied to a set of pair affinities.

    An explicit ``config.floor`` is used verbatim.  Otherwise the
    method's calibrated default (:data:`DEFAULT_FLOORS`) applies;
    when ``config.max_prune_fraction`` is below 1.0 the floor is
    lowered if necessary so at most that fraction of the scored pairs
    fall below it — a dataset where everything looks weakly related
    then prunes less rather than gutting the graph.
    """
    if config.floor is not None:
        return float(config.floor)
    floor = DEFAULT_FLOORS[config.method]
    values = np.asarray(affinities, dtype=np.float64).ravel()
    if values.size == 0 or config.max_prune_fraction >= 1.0:
        return floor
    cap = float(np.quantile(values, config.max_prune_fraction))
    return min(floor, cap)


@dataclass
class PrescreenResult:
    """What the prescreen pass measured and decided.

    ``kept_pairs`` preserves the orientation and multiplicity of the
    requested pair list (both directed pairs of a pruned unordered pair
    are dropped together); ``communities`` is the Walktrap partition of
    the surviving prescreen graph when community ordering is on.
    """

    sensors: list[str]
    matrix: np.ndarray
    config: PrescreenConfig
    floor: float
    kept_pairs: list[tuple[str, str]]
    pruned_pairs: list[tuple[str, str]]
    communities: list[set[str]] | None = None
    seconds: float = 0.0
    _index: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index = {name: i for i, name in enumerate(self.sensors)}

    def affinity(self, source: str, target: str) -> float:
        """The scored affinity of a sensor pair (symmetric)."""
        return float(self.matrix[self._index[source], self._index[target]])

    def to_dict(self) -> dict:
        """JSON-ready summary (mirrored into ``--report-json`` output)."""
        return {
            "method": self.config.method,
            "floor": self.floor,
            "pairs_kept": len(self.kept_pairs),
            "pairs_pruned": len(self.pruned_pairs),
            "communities": (
                None
                if self.communities is None
                else [sorted(community) for community in self.communities]
            ),
            "seconds": self.seconds,
        }


def _community_ordered(
    kept: list[tuple[str, str]],
    communities: list[set[str]],
) -> list[tuple[str, str]]:
    """Stable-reorder kept pairs so intra-community pairs train first."""
    membership = {
        name: rank for rank, community in enumerate(communities) for name in community
    }
    def rank(pair: tuple[str, str]) -> int:
        source, target = pair
        if membership.get(source, -1) == membership.get(target, -2):
            return membership[source]
        return len(communities)
    return sorted(kept, key=rank)


def prescreen_pairs(
    corpus,
    config: PrescreenConfig | None = None,
    pairs: Iterable[tuple[str, str]] | None = None,
) -> PrescreenResult:
    """Score, prune and (optionally) reorder Algorithm 1's pair grid.

    ``pairs`` defaults to all ``N(N-1)`` ordered pairs, exactly as
    :meth:`~repro.graph.mvrg.MultivariateRelationshipGraph.build`
    would enumerate them.  The floor is resolved against the
    affinities of the requested unordered pairs only, so custom pair
    subsets calibrate on their own distribution.
    """
    config = config or PrescreenConfig()
    start = time.perf_counter()
    sensors, matrix = affinity_matrix(corpus, config)
    index = {name: i for i, name in enumerate(sensors)}
    if pairs is None:
        pair_list = list(itertools.permutations(sensors, 2))
    else:
        pair_list = list(pairs)
    unordered = {tuple(sorted(pair)) for pair in pair_list if pair[0] != pair[1]}
    scored = np.asarray(
        [matrix[index[a], index[b]] for a, b in sorted(unordered)], dtype=np.float64
    )
    floor = resolve_floor(scored, config)
    kept = [
        pair
        for pair in pair_list
        if pair[0] == pair[1] or matrix[index[pair[0]], index[pair[1]]] >= floor
    ]
    pruned = [pair for pair in pair_list if pair not in set(kept)]
    communities = None
    if config.community_order and kept:
        graph = nx.Graph()
        graph.add_nodes_from(sensors)
        for source, target in kept:
            if source != target:
                graph.add_edge(
                    source, target, weight=matrix[index[source], index[target]]
                )
        communities = walktrap_communities(graph, walk_length=config.walk_length)
        kept = _community_ordered(kept, communities)
    return PrescreenResult(
        sensors=sensors,
        matrix=matrix,
        config=config,
        floor=floor,
        kept_pairs=kept,
        pruned_pairs=pruned,
        communities=communities,
        seconds=time.perf_counter() - start,
    )
