"""Degree statistics over relationship subgraphs (Figure 5, Table III)."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["degree_distribution", "DegreeSummary", "degree_summary", "rank_by_in_degree"]


def degree_distribution(graph: nx.DiGraph, kind: str = "in") -> np.ndarray:
    """Sorted array of node degrees (``kind`` is ``"in"`` or ``"out"``)."""
    if kind == "in":
        degrees = [d for _, d in graph.in_degree()]
    elif kind == "out":
        degrees = [d for _, d in graph.out_degree()]
    else:
        raise ValueError(f"kind must be 'in' or 'out', got {kind!r}")
    return np.asarray(sorted(degrees), dtype=np.int64)


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of a degree distribution, used by the Figure 5 bench."""

    kind: str
    minimum: int
    median: float
    maximum: int
    mean: float

    @classmethod
    def of(cls, graph: nx.DiGraph, kind: str) -> "DegreeSummary":
        degrees = degree_distribution(graph, kind)
        if degrees.size == 0:
            return cls(kind, 0, 0.0, 0, 0.0)
        return cls(
            kind=kind,
            minimum=int(degrees.min()),
            median=float(np.median(degrees)),
            maximum=int(degrees.max()),
            mean=float(degrees.mean()),
        )


def degree_summary(graph: nx.DiGraph) -> dict[str, DegreeSummary]:
    """In- and out-degree summaries for a subgraph."""
    return {kind: DegreeSummary.of(graph, kind) for kind in ("in", "out")}


def rank_by_in_degree(graph: nx.DiGraph, top: int | None = None) -> list[tuple[str, int, int]]:
    """Nodes ranked by in-degree: ``(node, in_degree, out_degree)``.

    This is the paper's feature-importance ranking (Table III lists the
    top five SMART features by in-degree in the ``[80, 90)`` subgraph).
    """
    rows = [
        (node, int(graph.in_degree(node)), int(graph.out_degree(node)))
        for node in graph.nodes
    ]
    rows.sort(key=lambda row: (-row[1], -row[2], row[0]))
    return rows[:top] if top is not None else rows
