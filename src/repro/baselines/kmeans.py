"""K-Means clustering (Lloyd's algorithm with k-means++ seeding).

Listed by the paper's introduction among the unsupervised alternatives;
included for completeness and used in tests of the baseline layer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Plain K-Means with k-means++ initialisation."""

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.inertia_: float = float("inf")

    def _init_centers(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centers apart."""
        n = features.shape[0]
        centers = [features[rng.integers(0, n)]]
        for _ in range(1, self.num_clusters):
            distances = np.min(
                ((features[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = distances.sum()
            if total <= 0:
                centers.append(features[rng.integers(0, n)])
                continue
            probabilities = distances / total
            centers.append(features[rng.choice(n, p=probabilities)])
        return np.asarray(centers)

    def fit(self, features: np.ndarray) -> "KMeans":
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] < self.num_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(features, rng)
        for _ in range(self.max_iterations):
            assignment = self._assign(features, centers)
            new_centers = centers.copy()
            for cluster in range(self.num_clusters):
                members = features[assignment == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tolerance:
                break
        self.centers_ = centers
        assignment = self._assign(features, centers)
        self.inertia_ = float(
            ((features - centers[assignment]) ** 2).sum()
        )
        return self

    @staticmethod
    def _assign(features: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = ((features[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise RuntimeError("model has not been fitted")
        return self._assign(np.asarray(features, dtype=np.float64), self.centers_)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Distances to each cluster center."""
        if self.centers_ is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        return np.sqrt(
            ((features[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        )
