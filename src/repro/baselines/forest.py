"""Random forest classifier with Gini feature importances.

The paper's supervised baseline (Section IV-B): bagged CART trees,
trained on a 1:1 subsample of failure/non-failure drive-days, with
feature-importance ranking used in Figure 11b.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTree

__all__ = ["RandomForest", "balance_classes"]


def balance_classes(
    features: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    ratio: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Random-undersample the majority class to ``ratio`` : 1.

    The paper sub-samples non-failures so training data has a 1-to-1
    majority-to-minority ratio.
    """
    labels = np.asarray(labels)
    classes, counts = np.unique(labels, return_counts=True)
    if len(classes) != 2:
        raise ValueError(f"balance_classes expects two classes, got {classes}")
    minority = classes[counts.argmin()]
    minority_rows = np.nonzero(labels == minority)[0]
    majority_rows = np.nonzero(labels != minority)[0]
    keep = min(len(majority_rows), max(1, int(round(ratio * len(minority_rows)))))
    chosen = rng.choice(majority_rows, size=keep, replace=False)
    rows = np.concatenate([minority_rows, chosen])
    rng.shuffle(rows)
    return np.asarray(features)[rows], labels[rows]


class RandomForest:
    """Bagging ensemble of :class:`DecisionTree` with sqrt feature sampling."""

    def __init__(
        self,
        num_trees: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        seed: int = 0,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.trees: list[DecisionTree] = []
        self.classes_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(labels)
        rows = features.shape[0]
        self.trees = []
        importances = np.zeros(features.shape[1])
        for _ in range(self.num_trees):
            bootstrap = rng.integers(0, rows, size=rows)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features="sqrt",
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self.trees.append(tree)
            importances += tree.feature_importances_
        self.feature_importances_ = importances / self.num_trees
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("forest has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        assert self.classes_ is not None
        total = np.zeros((features.shape[0], len(self.classes_)))
        for tree in self.trees:
            proba = tree.predict_proba(features)
            # Align tree classes (bootstrap may miss a class) to forest's.
            for column, cls in enumerate(tree.classes_):
                target = int(np.searchsorted(self.classes_, cls))
                total[:, target] += proba[:, column]
        return total / self.num_trees

    def predict(self, features: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[probabilities.argmax(axis=1)]

    def feature_ranking(self, names: list[str], top: int | None = None) -> list[tuple[str, float]]:
        """Features sorted by importance (Figure 11b's top-10 list)."""
        if self.feature_importances_ is None:
            raise RuntimeError("forest has not been fitted")
        if len(names) != self.feature_importances_.shape[0]:
            raise ValueError("names length must match feature count")
        ranked = sorted(
            zip(names, self.feature_importances_), key=lambda item: -item[1]
        )
        return ranked[:top] if top is not None else ranked
