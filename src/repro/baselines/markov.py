"""Per-sensor Markov-chain anomaly detector (extension baseline).

A natural unsupervised comparator for discrete event sequences: model
each sensor independently with a k-th-order Markov chain and flag
windows whose negative log-likelihood exceeds what normal operation
produced.  Crucially this method is *univariate* — it sees each
sensor's marginal dynamics only — so it cannot detect the paper's
central anomaly class: joint-behaviour breaks where every individual
sequence still looks plausible (Figure 2).  The extension benchmark
``benchmarks/test_extension_markov.py`` demonstrates exactly that
failure, motivating the pairwise translation graph.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = ["MarkovChainModel", "MarkovAnomalyDetector", "MarkovDetectionResult"]


class MarkovChainModel:
    """k-th-order Markov chain over one sensor's states.

    Laplace-smoothed transition probabilities; unseen states fall back
    to a uniform distribution over the training alphabet plus one
    pseudo-state (so likelihoods stay finite on novel symbols).
    """

    def __init__(self, order: int = 2, smoothing: float = 1.0) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.order = order
        self.smoothing = smoothing
        self._transitions: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        self._alphabet: set[str] = set()
        self.fitted = False

    def fit(self, sequence: EventSequence) -> "MarkovChainModel":
        if len(sequence) <= self.order:
            raise ValueError(
                f"sequence of length {len(sequence)} too short for order {self.order}"
            )
        self._alphabet = set(sequence.events)
        for position in range(self.order, len(sequence)):
            context = sequence.events[position - self.order : position]
            self._transitions[context][sequence.events[position]] += 1
        self.fitted = True
        return self

    def _log_probability(self, context: tuple[str, ...], state: str) -> float:
        vocabulary = len(self._alphabet) + 1  # +1 for novel states
        counts = self._transitions.get(context)
        total = sum(counts.values()) if counts else 0
        count = counts.get(state, 0) if counts else 0
        return math.log(
            (count + self.smoothing) / (total + self.smoothing * vocabulary)
        )

    def negative_log_likelihood(self, events: tuple[str, ...]) -> float:
        """Mean per-step NLL of a window under the chain."""
        if not self.fitted:
            raise RuntimeError("model has not been fitted")
        if len(events) <= self.order:
            raise ValueError("window shorter than the Markov order")
        total = 0.0
        steps = 0
        for position in range(self.order, len(events)):
            context = tuple(events[position - self.order : position])
            total -= self._log_probability(context, events[position])
            steps += 1
        return total / steps


@dataclass
class MarkovDetectionResult:
    """Windowed detection output, aligned with Algorithm 2's shape."""

    windows: int
    sensor_nll: dict[str, np.ndarray]
    sensor_thresholds: dict[str, float]
    anomaly_scores: np.ndarray

    def anomalous_windows(self, threshold: float = 0.5) -> list[int]:
        return [int(t) for t in np.nonzero(self.anomaly_scores >= threshold)[0]]


class MarkovAnomalyDetector:
    """System-level detector from independent per-sensor chains.

    The anomaly score of a window is the fraction of sensors whose
    window NLL exceeds their calibration threshold (a high quantile of
    their development-set window NLLs) — structurally identical to
    Algorithm 2's broken-pair fraction, but with *sensors* instead of
    *pairs* as the voting units.
    """

    def __init__(
        self,
        order: int = 2,
        window_size: int = 20,
        window_stride: int | None = None,
        calibration_quantile: float = 0.99,
    ) -> None:
        if window_size <= order:
            raise ValueError("window_size must exceed the Markov order")
        if not 0.0 < calibration_quantile <= 1.0:
            raise ValueError("calibration_quantile must be in (0, 1]")
        self.order = order
        self.window_size = window_size
        self.window_stride = window_stride or window_size
        self.calibration_quantile = calibration_quantile
        self._models: dict[str, MarkovChainModel] = {}
        self._thresholds: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _windows(self, events: tuple[str, ...]) -> list[tuple[str, ...]]:
        count = max(0, (len(events) - self.window_size) // self.window_stride + 1)
        return [
            tuple(events[i * self.window_stride : i * self.window_stride + self.window_size])
            for i in range(count)
        ]

    def fit(
        self,
        training_log: MultivariateEventLog,
        development_log: MultivariateEventLog,
    ) -> "MarkovAnomalyDetector":
        """Fit per-sensor chains and calibrate window-NLL thresholds."""
        self._models = {}
        self._thresholds = {}
        for sequence in training_log:
            if sequence.is_constant():
                continue
            model = MarkovChainModel(self.order).fit(sequence)
            dev_windows = self._windows(development_log[sequence.sensor].events)
            if not dev_windows:
                raise ValueError("development log too short for one window")
            dev_nll = [model.negative_log_likelihood(w) for w in dev_windows]
            self._models[sequence.sensor] = model
            self._thresholds[sequence.sensor] = float(
                np.quantile(dev_nll, self.calibration_quantile)
            )
        if not self._models:
            raise ValueError("no non-constant sensors to model")
        return self

    def detect(self, test_log: MultivariateEventLog) -> MarkovDetectionResult:
        """Score every window of the test log."""
        if not self._models:
            raise RuntimeError("detector has not been fitted")
        sensors = [name for name in self._models if name in test_log]
        if not sensors:
            raise ValueError("test log contains none of the modelled sensors")
        per_sensor: dict[str, np.ndarray] = {}
        window_count: int | None = None
        for name in sensors:
            windows = self._windows(test_log[name].events)
            nll = np.asarray(
                [self._models[name].negative_log_likelihood(w) for w in windows]
            )
            per_sensor[name] = nll
            window_count = len(nll) if window_count is None else min(window_count, len(nll))
        if not window_count:
            raise ValueError("test log too short for one window")

        exceeded = np.stack(
            [
                per_sensor[name][:window_count] > self._thresholds[name]
                for name in sensors
            ],
            axis=1,
        )
        return MarkovDetectionResult(
            windows=window_count,
            sensor_nll={name: per_sensor[name][:window_count] for name in sensors},
            sensor_thresholds=dict(self._thresholds),
            anomaly_scores=exceeded.mean(axis=1),
        )
