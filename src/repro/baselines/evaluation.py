"""Drive-level baseline evaluation for Table II.

Runs the paper's two baselines on a Backblaze-style dataset:

- **Random Forest** (supervised): 80/20 drive split, non-failures
  undersampled to 1:1, recall measured on held-out failure days;
  feature importances feed Figure 11b.
- **One-class SVM** (unsupervised): fitted on observations from drives
  never seen to fail (subsampled — the paper notes OC-SVM scales
  poorly), recall measured on failure days.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.backblaze import BackblazeDataset
from ..datasets.features import BaselineMatrix, build_baseline_matrix
from .forest import RandomForest, balance_classes
from .metrics import ConfusionMatrix, confusion_matrix
from .ocsvm import OneClassSVM

__all__ = ["BaselineResult", "evaluate_random_forest", "evaluate_ocsvm"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run."""

    model_name: str
    recall: float
    confusion: ConfusionMatrix
    feature_ranking: list[tuple[str, float]] | None = None


def _standardize(train: np.ndarray, *others: np.ndarray) -> list[np.ndarray]:
    """Z-score using training statistics (needed by the RBF kernel)."""
    mean = train.mean(axis=0)
    std = train.std(axis=0)
    std[std == 0] = 1.0
    return [(block - mean) / std for block in (train, *others)]


def _split_drives(
    matrix: BaselineMatrix, dataset: BackblazeDataset, train_fraction: float, rng: np.random.Generator
) -> tuple[set[int], set[int]]:
    """Split drive indices so both sides contain failed drives."""
    failed = [i for i, d in enumerate(dataset.drives) if d.failed]
    healthy = [i for i, d in enumerate(dataset.drives) if not d.failed]
    rng.shuffle(failed)
    rng.shuffle(healthy)

    def cut(items: list[int]) -> tuple[list[int], list[int]]:
        k = max(1, int(round(train_fraction * len(items)))) if items else 0
        k = min(k, len(items) - 1) if len(items) > 1 else k
        return items[:k], items[k:]

    train_f, test_f = cut(failed)
    train_h, test_h = cut(healthy)
    return set(train_f + train_h), set(test_f + test_h)


def evaluate_random_forest(
    dataset: BackblazeDataset,
    num_trees: int = 40,
    max_depth: int = 8,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> BaselineResult:
    """Table II's supervised baseline."""
    rng = np.random.default_rng(seed)
    matrix = build_baseline_matrix(dataset)
    train_drives, test_drives = _split_drives(matrix, dataset, train_fraction, rng)
    train = matrix.rows_for_drives(train_drives)
    test = matrix.rows_for_drives(test_drives)

    features, labels = balance_classes(train.features, train.labels, rng)
    forest = RandomForest(num_trees=num_trees, max_depth=max_depth, seed=seed)
    forest.fit(features, labels)

    predictions = forest.predict(test.features)
    confusion = confusion_matrix(test.labels, predictions)
    return BaselineResult(
        model_name="Random Forest",
        recall=confusion.recall,
        confusion=confusion,
        feature_ranking=forest.feature_ranking(matrix.feature_names),
    )


def evaluate_ocsvm(
    dataset: BackblazeDataset,
    nu: float = 0.1,
    max_training_rows: int = 400,
    seed: int = 0,
) -> BaselineResult:
    """Table II's unsupervised baseline.

    Trained only on rows from drives never observed to fail, then
    evaluated on every drive-day: failure days should fall outside the
    learned boundary.
    """
    rng = np.random.default_rng(seed)
    matrix = build_baseline_matrix(dataset)
    healthy_drives = {i for i, d in enumerate(dataset.drives) if not d.failed}
    healthy = matrix.rows_for_drives(healthy_drives)
    if healthy.num_rows == 0:
        raise ValueError("OC-SVM needs at least one never-failed drive")

    rows = rng.choice(
        healthy.num_rows, size=min(max_training_rows, healthy.num_rows), replace=False
    )
    train_features, test_features = _standardize(
        healthy.features[rows], matrix.features
    )
    model = OneClassSVM(nu=nu, seed=seed).fit(train_features)
    predictions = model.predict(test_features) == -1  # anomaly = positive
    confusion = confusion_matrix(matrix.labels, predictions)
    return BaselineResult(
        model_name="One-class SVM",
        recall=confusion.recall,
        confusion=confusion,
        feature_ranking=None,
    )
