"""Baseline models (Section IV-B): Random Forest, OC-SVM, K-Means."""

from .forest import RandomForest, balance_classes
from .hawkes import (
    HawkesAnomalyDetector,
    HawkesDetectionResult,
    MultivariateHawkes,
    state_change_times,
)
from .kmeans import KMeans
from .markov import MarkovAnomalyDetector, MarkovChainModel, MarkovDetectionResult
from .metrics import ConfusionMatrix, confusion_matrix, f1_score, precision, recall
from .ocsvm import OneClassSVM, project_capped_simplex, rbf_kernel
from .tree import DecisionTree

__all__ = [
    "ConfusionMatrix",
    "DecisionTree",
    "HawkesAnomalyDetector",
    "HawkesDetectionResult",
    "KMeans",
    "MarkovAnomalyDetector",
    "MarkovChainModel",
    "MarkovDetectionResult",
    "MultivariateHawkes",
    "OneClassSVM",
    "RandomForest",
    "balance_classes",
    "confusion_matrix",
    "f1_score",
    "precision",
    "project_capped_simplex",
    "rbf_kernel",
    "recall",
    "state_change_times",
]
