"""One-class SVM with RBF kernel (Schölkopf et al.), from scratch.

The paper's unsupervised baseline: trained on non-anomalous
observations only, it fits a boundary around them; points with negative
decision values are anomalies.  The ν-parameterised dual

    min_α  ½ αᵀ K α    s.t.  0 ≤ α_i ≤ 1/(ν n),  Σ α_i = 1

is solved by projected gradient descent with an exact projection onto
the capped simplex.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OneClassSVM", "rbf_kernel", "project_capped_simplex"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix ``K[i, j] = exp(-γ ||a_i - b_j||²)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    squared = (
        (a**2).sum(axis=1)[:, None] + (b**2).sum(axis=1)[None, :] - 2.0 * a @ b.T
    )
    return np.exp(-gamma * np.maximum(squared, 0.0))


def project_capped_simplex(values: np.ndarray, cap: float) -> np.ndarray:
    """Euclidean projection onto ``{α : 0 ≤ α ≤ cap, Σα = 1}``.

    Solved by bisection on the Lagrange shift τ of
    ``α_i = clip(v_i - τ, 0, cap)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if cap * values.size < 1.0 - 1e-12:
        raise ValueError("infeasible projection: cap * n < 1")

    def mass(tau: float) -> float:
        return float(np.clip(values - tau, 0.0, cap).sum())

    low = values.min() - 1.0
    high = values.max()
    for _ in range(100):
        mid = 0.5 * (low + high)
        if mass(mid) > 1.0:
            low = mid
        else:
            high = mid
    return np.clip(values - 0.5 * (low + high), 0.0, cap)


class OneClassSVM:
    """ν-SVM for novelty detection with an RBF kernel.

    Parameters
    ----------
    nu:
        Upper bound on the training outlier fraction / lower bound on
        the support-vector fraction, in (0, 1].
    gamma:
        RBF width; ``"scale"`` uses ``1 / (n_features * var(X))`` as in
        scikit-learn, keeping the paper's baseline comparable.
    iterations, learning_rate:
        Projected-gradient schedule.
    """

    def __init__(
        self,
        nu: float = 0.1,
        gamma: "float | str" = "scale",
        iterations: int = 300,
        learning_rate: float | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        self.nu = nu
        self.gamma = gamma
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.seed = seed
        self._train: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._rho: float = 0.0
        self._gamma_value: float = 1.0

    # ------------------------------------------------------------------
    def _resolve_gamma(self, features: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = float(features.var())
            return 1.0 / (features.shape[1] * variance) if variance > 0 else 1.0
        if isinstance(self.gamma, (int, float)):
            return float(self.gamma)
        raise ValueError(f"invalid gamma: {self.gamma!r}")

    def fit(self, features: np.ndarray) -> "OneClassSVM":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] < 2:
            raise ValueError("fit expects a 2-D matrix with at least 2 rows")
        n = features.shape[0]
        self._gamma_value = self._resolve_gamma(features)
        kernel = rbf_kernel(features, features, self._gamma_value)
        cap = 1.0 / (self.nu * n)

        alpha = np.full(n, 1.0 / n)
        # Lipschitz constant of the gradient is the top kernel eigenvalue;
        # a safe surrogate is the largest row sum.
        lipschitz = float(np.abs(kernel).sum(axis=1).max())
        step = self.learning_rate or (1.0 / max(lipschitz, 1e-12))
        for _ in range(self.iterations):
            gradient = kernel @ alpha
            alpha = project_capped_simplex(alpha - step * gradient, cap)

        self._train = features
        self._alpha = alpha
        # Calibrate ρ so that at most a ν-fraction of training points
        # fall outside the boundary — the ν-property of the one-class
        # SVM.  (Reading ρ off margin support vectors requires tighter
        # KKT convergence than projected gradient guarantees.)
        scores = kernel @ alpha
        self._rho = float(np.quantile(scores, self.nu))
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Positive inside the learned boundary, negative outside."""
        if self._train is None or self._alpha is None:
            raise RuntimeError("model has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        kernel = rbf_kernel(features, self._train, self._gamma_value)
        return kernel @ self._alpha - self._rho

    def predict(self, features: np.ndarray) -> np.ndarray:
        """+1 for inliers, −1 for anomalies (scikit-learn convention)."""
        return np.where(self.decision_function(features) >= 0.0, 1, -1)
