"""CART decision tree (Gini impurity), the unit of the random forest."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """A tree node; leaves carry class probabilities."""

    prediction: np.ndarray  # class probability vector
    feature: int | None = None
    threshold: float = 0.0
    left: "Optional[_Node]" = None
    right: "Optional[_Node]" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(class_counts: np.ndarray) -> float:
    total = class_counts.sum()
    if total == 0:
        return 0.0
    proportions = class_counts / total
    return float(1.0 - (proportions**2).sum())


class DecisionTree:
    """Binary-split classification tree.

    Parameters
    ----------
    max_depth:
        Depth limit (None = grow until pure or below
        ``min_samples_split``).
    min_samples_split:
        Minimum node size eligible for splitting.
    max_features:
        Features sampled per split — ``"sqrt"``, an int, or None for
        all features (random forests pass ``"sqrt"``).
    rng:
        Generator used for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: "int | str | None" = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.max_features = max_features
        self._rng = rng or np.random.default_rng()
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None
        self._num_features = 0

    # ------------------------------------------------------------------
    def _features_per_split(self, num_features: int) -> int:
        if self.max_features is None:
            return num_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(num_features)))
        if isinstance(self.max_features, int):
            return min(num_features, max(1, self.max_features))
        raise ValueError(f"invalid max_features: {self.max_features!r}")

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise ValueError("features must be (rows, cols) aligned with labels")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._num_features = features.shape[1]
        self.feature_importances_ = np.zeros(self._num_features)
        self._root = self._grow(features, encoded, depth=0)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _class_counts(self, encoded: np.ndarray) -> np.ndarray:
        return np.bincount(encoded, minlength=len(self.classes_)).astype(np.float64)

    def _grow(self, features: np.ndarray, encoded: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(encoded)
        node = _Node(prediction=counts / counts.sum())
        if (
            len(encoded) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == counts.sum()
        ):
            return node

        best = self._best_split(features, encoded, counts)
        if best is None:
            return node
        feature, threshold, gain = best
        mask = features[:, feature] <= threshold
        assert self.feature_importances_ is not None
        self.feature_importances_[feature] += gain * len(encoded)
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], encoded[mask], depth + 1)
        node.right = self._grow(features[~mask], encoded[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, encoded: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float, float] | None:
        rows, cols = features.shape
        parent_impurity = _gini(counts)
        candidates = self._rng.choice(
            cols, size=self._features_per_split(cols), replace=False
        )
        best_gain = 1e-12
        best: tuple[int, float, float] | None = None
        num_classes = len(self.classes_)

        for feature in candidates:
            order = np.argsort(features[:, feature], kind="mergesort")
            sorted_values = features[order, feature]
            sorted_classes = encoded[order]
            # Prefix class counts: left side of a split after position i.
            one_hot = np.zeros((rows, num_classes))
            one_hot[np.arange(rows), sorted_classes] = 1.0
            prefix = np.cumsum(one_hot, axis=0)
            # Valid split positions: between distinct consecutive values.
            distinct = np.nonzero(sorted_values[1:] != sorted_values[:-1])[0]
            if distinct.size == 0:
                continue
            left_counts = prefix[distinct]
            right_counts = counts[None, :] - left_counts
            left_totals = left_counts.sum(axis=1)
            right_totals = right_counts.sum(axis=1)
            left_gini = 1.0 - ((left_counts / left_totals[:, None]) ** 2).sum(axis=1)
            right_gini = 1.0 - ((right_counts / right_totals[:, None]) ** 2).sum(axis=1)
            weighted = (left_totals * left_gini + right_totals * right_gini) / rows
            gains = parent_impurity - weighted
            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                position = distinct[best_index]
                threshold = float(
                    (sorted_values[position] + sorted_values[position + 1]) / 2.0
                )
                best = (int(feature), threshold, best_gain)
        return best

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        output = np.empty((features.shape[0], len(self.classes_)))
        for row in range(features.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if features[row, node.feature] <= node.threshold else node.right
            output[row] = node.prediction
        return output

    def predict(self, features: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(features)
        return self.classes_[probabilities.argmax(axis=1)]
