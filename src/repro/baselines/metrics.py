"""Binary classification metrics used in the evaluation (Table II)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfusionMatrix", "confusion_matrix", "recall", "precision", "f1_score"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Counts for a binary problem with ``1`` the positive class."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positive + self.false_positive + self.true_negative + self.false_negative
        )
        return (self.true_positive + self.true_negative) / total if total else 0.0


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray) -> ConfusionMatrix:
    """Build the confusion matrix for 0/1 labels and predictions."""
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must be aligned")
    return ConfusionMatrix(
        true_positive=int((labels & predictions).sum()),
        false_positive=int((~labels & predictions).sum()),
        true_negative=int((~labels & ~predictions).sum()),
        false_negative=int((labels & ~predictions).sum()),
    )


def recall(labels: np.ndarray, predictions: np.ndarray) -> float:
    """True positives / actual positives (Table II's headline metric)."""
    return confusion_matrix(labels, predictions).recall


def precision(labels: np.ndarray, predictions: np.ndarray) -> float:
    """True positives / predicted positives."""
    return confusion_matrix(labels, predictions).precision


def f1_score(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    return confusion_matrix(labels, predictions).f1
