"""Multivariate Hawkes process baseline (related work [22], [27]).

The paper's related-work section names multidimensional Hawkes
processes as the established way to model inter-dependent relationships
across multi-source event streams.  This module implements that
comparator from scratch:

- each sensor's *state changes* become a point process;
- a multivariate Hawkes process with exponential kernels

      λ_i(t) = μ_i + Σ_j Σ_{t^j_l < t} α_ij · β · exp(−β (t − t^j_l))

  is fitted by expectation–maximisation (Lewis & Mohler style):
  the E-step attributes each event to the background or to a previous
  event, the M-step re-estimates the background rates ``μ`` and the
  influence matrix ``α``;
- the influence matrix doubles as a relationship graph (who excites
  whom), the Hawkes analogue of the paper's BLEU edges;
- windows whose log-likelihood rate falls far below the development
  distribution are anomalous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.events import EventSequence, MultivariateEventLog

__all__ = [
    "state_change_times",
    "MultivariateHawkes",
    "HawkesAnomalyDetector",
    "HawkesDetectionResult",
]


def state_change_times(sequence: EventSequence) -> np.ndarray:
    """Timestamps (sample indices) where the sensor changes state."""
    events = sequence.events
    return np.asarray(
        [t for t in range(1, len(events)) if events[t] != events[t - 1]],
        dtype=np.float64,
    )


class MultivariateHawkes:
    """Exponential-kernel multivariate Hawkes process fitted by EM.

    Parameters
    ----------
    decay:
        Kernel decay ``β`` (per sample).  Larger = shorter memory.
    iterations:
        EM iterations.
    max_lag:
        Only event pairs closer than this many samples are considered
        as potential trigger pairs (the kernel at ``max_lag`` is
        negligible for sensible ``decay``); bounds the E-step cost.
    """

    def __init__(
        self,
        decay: float = 0.2,
        iterations: int = 50,
        max_lag: float | None = None,
        min_rate: float = 1e-6,
    ) -> None:
        if decay <= 0:
            raise ValueError("decay must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.decay = decay
        self.iterations = iterations
        self.max_lag = max_lag if max_lag is not None else 10.0 / decay
        self.min_rate = min_rate
        self.dimensions: list[str] = []
        self.mu_: np.ndarray | None = None
        self.alpha_: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _merge(event_times: dict[str, np.ndarray]) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Merge per-dimension times into a sorted (times, dims) stream."""
        names = sorted(event_times)
        times: list[float] = []
        dims: list[int] = []
        for index, name in enumerate(names):
            for t in event_times[name]:
                times.append(float(t))
                dims.append(index)
        order = np.argsort(times, kind="stable")
        return np.asarray(times)[order], np.asarray(dims)[order], names

    def fit(self, event_times: dict[str, np.ndarray], horizon: float) -> "MultivariateHawkes":
        """EM fit on one observation window ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        times, dims, names = self._merge(event_times)
        self.dimensions = names
        d = len(names)
        n = len(times)
        if n == 0:
            self.mu_ = np.full(d, self.min_rate)
            self.alpha_ = np.zeros((d, d))
            return self

        beta = self.decay
        mu = np.full(d, max(self.min_rate, n / (d * horizon)))
        alpha = np.full((d, d), 0.1)

        # Precompute candidate trigger pairs (l -> k) within max_lag.
        pair_child: list[int] = []
        pair_parent: list[int] = []
        pair_kernel: list[float] = []
        start = 0
        for k in range(n):
            while times[k] - times[start] > self.max_lag:
                start += 1
            for l in range(start, k):
                delta = times[k] - times[l]
                if delta <= 0:
                    continue
                pair_child.append(k)
                pair_parent.append(l)
                pair_kernel.append(beta * np.exp(-beta * delta))
        child = np.asarray(pair_child, dtype=np.int64)
        parent = np.asarray(pair_parent, dtype=np.int64)
        kernel = np.asarray(pair_kernel)

        # Kernel integrals over [t_l, horizon] per parent event.
        integral = 1.0 - np.exp(-beta * (horizon - times))
        counts = np.bincount(dims, minlength=d).astype(np.float64)

        for _ in range(self.iterations):
            # E-step: responsibilities.
            background = mu[dims]  # (n,)
            excitation = alpha[dims[child], dims[parent]] * kernel if len(child) else np.zeros(0)
            denom = background.copy()
            if len(child):
                np.add.at(denom, child, excitation)
            p_background = background / denom
            # M-step.
            mu = np.bincount(dims, weights=p_background, minlength=d) / horizon
            mu = np.maximum(mu, self.min_rate)
            if len(child):
                p_pair = excitation / denom[child]
                new_alpha = np.zeros((d, d))
                np.add.at(new_alpha, (dims[child], dims[parent]), p_pair)
                # Expected number of opportunities: sum of kernel
                # integrals over parent events of each source dim.
                opportunity = np.zeros(d)
                np.add.at(opportunity, dims, integral)
                with np.errstate(divide="ignore", invalid="ignore"):
                    alpha = np.where(
                        opportunity[None, :] > 0,
                        new_alpha / opportunity[None, :],
                        0.0,
                    )
        self.mu_ = mu
        self.alpha_ = alpha
        return self

    # ------------------------------------------------------------------
    def log_likelihood(self, event_times: dict[str, np.ndarray], horizon: float) -> float:
        """Exact exponential-kernel log-likelihood on ``[0, horizon]``."""
        if self.mu_ is None or self.alpha_ is None:
            raise RuntimeError("model has not been fitted")
        names = self.dimensions
        index_of = {name: i for i, name in enumerate(names)}
        times, dims, merged_names = self._merge(
            {name: event_times.get(name, np.zeros(0)) for name in names}
        )
        # Remap merged dims onto model dimensions (sorted names match).
        assert merged_names == names
        beta = self.decay
        d = len(names)
        n = len(times)

        total = 0.0
        # Recursive intensity contribution per source dimension.
        r = np.zeros(d)
        last_time = 0.0
        for k in range(n):
            delta = times[k] - last_time
            r *= np.exp(-beta * delta)
            dim = dims[k]
            intensity = self.mu_[dim] + float(self.alpha_[dim] @ (beta * r))
            total += np.log(max(intensity, 1e-12))
            r[dim] += 1.0
            last_time = times[k]

        # Compensator.
        total -= float(self.mu_.sum()) * horizon
        if n:
            integral = 1.0 - np.exp(-beta * (horizon - times))
            per_source = np.zeros(d)
            np.add.at(per_source, dims, integral)
            total -= float(self.alpha_.sum(axis=0) @ per_source)
        return total

    def influence_graph(self, threshold: float = 0.05) -> dict[tuple[str, str], float]:
        """Directed edges ``source -> target`` with α above threshold —
        the Hawkes analogue of the paper's relationship edges."""
        if self.alpha_ is None:
            raise RuntimeError("model has not been fitted")
        edges: dict[tuple[str, str], float] = {}
        for target_index, target in enumerate(self.dimensions):
            for source_index, source in enumerate(self.dimensions):
                if source == target:
                    continue
                weight = float(self.alpha_[target_index, source_index])
                if weight >= threshold:
                    edges[(source, target)] = weight
        return edges


@dataclass
class HawkesDetectionResult:
    """Windowed anomaly scores from the Hawkes baseline."""

    windows: int
    window_nll_rate: np.ndarray
    threshold: float
    anomaly_scores: np.ndarray


class HawkesAnomalyDetector:
    """Window-level anomaly detection from a fitted Hawkes model.

    Fits on training state-change events, calibrates the window
    negative-log-likelihood rate on development data, and scores test
    windows by how far they exceed the calibration quantile (scores are
    squashed to [0, 1] via a soft margin).
    """

    def __init__(
        self,
        window_size: int = 20,
        window_stride: int | None = None,
        decay: float = 0.2,
        calibration_quantile: float = 0.99,
    ) -> None:
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        self.window_size = window_size
        self.window_stride = window_stride or window_size
        self.decay = decay
        self.calibration_quantile = calibration_quantile
        self.model: MultivariateHawkes | None = None
        self._threshold: float = 0.0
        self._scale: float = 1.0

    def _window_events(
        self, log: MultivariateEventLog, start: int
    ) -> dict[str, np.ndarray]:
        events: dict[str, np.ndarray] = {}
        for sequence in log:
            times = state_change_times(sequence.slice(start, start + self.window_size))
            events[sequence.sensor] = times
        return events

    def _window_starts(self, log: MultivariateEventLog) -> list[int]:
        count = max(0, (log.num_samples - self.window_size) // self.window_stride + 1)
        return [i * self.window_stride for i in range(count)]

    def _nll_rates(self, log: MultivariateEventLog) -> np.ndarray:
        assert self.model is not None
        rates = []
        for start in self._window_starts(log):
            ll = self.model.log_likelihood(
                self._window_events(log, start), float(self.window_size)
            )
            rates.append(-ll / self.window_size)
        return np.asarray(rates)

    def fit(
        self,
        training_log: MultivariateEventLog,
        development_log: MultivariateEventLog,
    ) -> "HawkesAnomalyDetector":
        events = {
            sequence.sensor: state_change_times(sequence) for sequence in training_log
        }
        self.model = MultivariateHawkes(decay=self.decay).fit(
            events, float(training_log.num_samples)
        )
        dev_rates = self._nll_rates(development_log)
        if dev_rates.size == 0:
            raise ValueError("development log too short for one window")
        self._threshold = float(np.quantile(dev_rates, self.calibration_quantile))
        spread = float(dev_rates.std())
        self._scale = max(spread, 1e-6)
        return self

    def detect(self, test_log: MultivariateEventLog) -> HawkesDetectionResult:
        if self.model is None:
            raise RuntimeError("detector has not been fitted")
        rates = self._nll_rates(test_log)
        if rates.size == 0:
            raise ValueError("test log too short for one window")
        # Soft margin: 0 at/below threshold, saturating at ~3 spreads.
        excess = np.maximum(0.0, rates - self._threshold) / (3.0 * self._scale)
        return HawkesDetectionResult(
            windows=len(rates),
            window_nll_rate=rates,
            threshold=self._threshold,
            anomaly_scores=np.clip(excess, 0.0, 1.0),
        )
