"""Saving and loading module weights as ``.npz`` archives.

Also provides the stable-state hooks used by the pipeline's
content-addressed artifact store: :func:`state_digest` fingerprints a
flat parameter state deterministically (sorted keys, raw array bytes),
and :func:`save_state`/:func:`load_state` round-trip states that are
not attached to a live :class:`Module` — e.g. a translation model's
aggregated encoder/decoder/attention weights.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Mapping

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module", "save_state", "load_state", "state_digest"]


def save_module(module: Module, path: str | Path) -> Path:
    """Write a module's parameters to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **module.state_dict())
    return path


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    module.load_state_dict(load_state(path))
    return module


def save_state(state: Mapping[str, np.ndarray], path: str | Path) -> Path:
    """Write a flat parameter state to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **dict(state))
    return path


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Load a flat parameter state saved by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        return {key: archive[key] for key in archive.files}


def state_digest(state: Mapping[str, np.ndarray]) -> str:
    """Deterministic SHA-256 fingerprint of a flat parameter state.

    Keys are visited in sorted order and arrays contribute their shape,
    dtype and raw bytes, so two states are digest-equal exactly when
    every parameter matches bit for bit — the property the artifact
    store relies on to verify restored models.
    """
    hasher = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        hasher.update(key.encode("utf-8"))
        hasher.update(str(array.shape).encode("utf-8"))
        hasher.update(str(array.dtype).encode("utf-8"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()
