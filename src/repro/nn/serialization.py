"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> Path:
    """Write a module's parameters to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **module.state_dict())
    return path


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
