"""Gradient-descent optimisers and gradient clipping."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "BatchedAdam", "clip_grad_norm", "clip_grad_norm_per_pair"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm, which callers often log to monitor
    training stability.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


def clip_grad_norm_per_pair(
    parameters: Sequence[Parameter], max_norm: float
) -> np.ndarray:
    """Clip each pair's gradient slab to its own global L2 norm.

    Every parameter carries a leading pair axis (shape
    ``(pairs, ...)``); the norm is taken per pair over that pair's
    slices of *all* parameters, and only over-norm pairs are scaled —
    exactly what :func:`clip_grad_norm` computes for each pair model in
    the looped path.  Scale factors for in-norm pairs are exactly 1.0,
    so their gradients are untouched bit-for-bit.

    Returns the per-pair pre-clipping norms.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    with_grads = [param for param in parameters if param.grad is not None]
    if not with_grads:
        return np.zeros(0)
    num_pairs = with_grads[0].shape[0]
    total = np.zeros(num_pairs)
    for param in with_grads:
        if param.shape[0] != num_pairs:
            raise ValueError(
                "clip_grad_norm_per_pair requires a shared leading pair axis; "
                f"got {param.shape[0]} vs {num_pairs}"
            )
        total += (param.grad.reshape(num_pairs, -1) ** 2).sum(axis=1)
    norms = np.sqrt(total)
    scales = np.where((norms > max_norm) & (norms > 0), max_norm / np.maximum(norms, 1e-300), 1.0)
    if (scales != 1.0).any():
        for param in with_grads:
            param.grad *= scales.reshape((num_pairs,) + (1,) * (param.grad.ndim - 1))
    return norms


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class BatchedAdam(Adam):
    """Adam over per-pair parameter slabs.

    Adam's update is elementwise, so running it on a stacked
    ``(pairs, ...)`` slab is bit-identical to running a separate
    :class:`Adam` per pair — provided every pair has taken the same
    number of steps, which the lockstep cohort trainer guarantees.  The
    only batched-specific behaviour is :meth:`select_pairs`, which
    drops finished pairs' moment slices when the cohort compacts.
    """

    def select_pairs(self, keep: np.ndarray) -> None:
        """Keep only the pair slices selected by ``keep``.

        ``keep`` is an index or boolean array over the leading pair
        axis.  The caller is responsible for slicing ``param.data`` of
        every parameter with the same selector (the batched modules'
        ``select_pairs`` methods do this).
        """
        self._first_moment = [m[keep] for m in self._first_moment]
        self._second_moment = [v[keep] for v in self._second_moment]
