"""Gradient-descent optimisers and gradient clipping."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm, which callers often log to monitor
    training stability.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
