"""Multi-layer GRU — the alternative recurrent unit for the NMT model.

The paper's NMT configuration uses LSTMs (citation [23]); GRUs are the
standard lighter-weight alternative evaluated in the NMT literature and
are provided here for the recurrent-unit ablation
(``benchmarks/test_ablation_recurrent_unit.py``).  Interface matches
:class:`repro.nn.LSTM` exactly (state is still a pair of per-layer
lists; the "cell" list mirrors the hidden list so encoder/decoder code
can stay unit-agnostic).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .lstm import LSTMState
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU layer advanced one timestep at a time.

    Gate order within the fused matrices is ``(reset, update)``; the
    candidate activation has its own weights because it sees the reset
    hidden state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.gate_weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, 2 * hidden_size)),
            name="gate_weight_x",
        )
        self.gate_weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, 2 * hidden_size)),
            name="gate_weight_h",
        )
        self.gate_bias = Parameter(np.zeros(2 * hidden_size), name="gate_bias")
        self.candidate_weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, hidden_size)),
            name="candidate_weight_x",
        )
        self.candidate_weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, hidden_size)),
            name="candidate_weight_h",
        )
        self.candidate_bias = Parameter(np.zeros(hidden_size), name="candidate_bias")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step; returns the next hidden state."""
        hidden = self.hidden_size
        gates = x @ self.gate_weight_x + h @ self.gate_weight_h + self.gate_bias
        reset = gates[:, :hidden].sigmoid()
        update = gates[:, hidden:].sigmoid()
        candidate = (
            x @ self.candidate_weight_x
            + (reset * h) @ self.candidate_weight_h
            + self.candidate_bias
        ).tanh()
        return update * h + (1.0 - update) * candidate

    def zero_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRU(Module):
    """Stack of :class:`GRUCell` layers, interface-compatible with LSTM.

    The returned state mirrors :data:`repro.nn.LSTMState` — the second
    list simply aliases the hidden list — so callers written against
    the LSTM (the seq2seq encoder/decoder) work unchanged.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int) -> LSTMState:
        hidden = [cell.zero_state(batch_size) for cell in self.cells]
        return hidden, list(hidden)

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run the stack over ``(batch, steps, input_size)`` inputs."""
        batch, steps = inputs.shape[0], inputs.shape[1]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer] = cell(layer_input, h_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout(
                        layer_input, self.dropout_rate, self.training, self._rng
                    )
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=1)
        return outputs, (h_states, list(h_states))

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance one timestep (decoder usage)."""
        h_states = list(state[0])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer] = cell(layer_input, h_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout(
                    layer_input, self.dropout_rate, self.training, self._rng
                )
        return layer_input, (h_states, list(h_states))
