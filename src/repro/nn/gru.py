"""Multi-layer GRU — the alternative recurrent unit for the NMT model.

The paper's NMT configuration uses LSTMs (citation [23]); GRUs are the
standard lighter-weight alternative evaluated in the NMT literature and
are provided here for the recurrent-unit ablation
(``benchmarks/test_ablation_recurrent_unit.py``).  Interface matches
:class:`repro.nn.LSTM` exactly (state is still a pair of per-layer
lists; the "cell" list mirrors the hidden list so encoder/decoder code
can stay unit-agnostic).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .lstm import LSTMState
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["GRUCell", "GRU", "BatchedGRUCell", "BatchedGRU"]


class GRUCell(Module):
    """A single GRU layer advanced one timestep at a time.

    Gate order within the fused matrices is ``(reset, update)``; the
    candidate activation has its own weights because it sees the reset
    hidden state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.gate_weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, 2 * hidden_size)),
            name="gate_weight_x",
        )
        self.gate_weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, 2 * hidden_size)),
            name="gate_weight_h",
        )
        self.gate_bias = Parameter(np.zeros(2 * hidden_size), name="gate_bias")
        self.candidate_weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, hidden_size)),
            name="candidate_weight_x",
        )
        self.candidate_weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, hidden_size)),
            name="candidate_weight_h",
        )
        self.candidate_bias = Parameter(np.zeros(hidden_size), name="candidate_bias")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step; returns the next hidden state."""
        hidden = self.hidden_size
        gates = x @ self.gate_weight_x + h @ self.gate_weight_h + self.gate_bias
        reset = gates[:, :hidden].sigmoid()
        update = gates[:, hidden:].sigmoid()
        candidate = (
            x @ self.candidate_weight_x
            + (reset * h) @ self.candidate_weight_h
            + self.candidate_bias
        ).tanh()
        return update * h + (1.0 - update) * candidate

    def zero_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRU(Module):
    """Stack of :class:`GRUCell` layers, interface-compatible with LSTM.

    The returned state mirrors :data:`repro.nn.LSTMState` — the second
    list simply aliases the hidden list — so callers written against
    the LSTM (the seq2seq encoder/decoder) work unchanged.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        self.cells = [
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int) -> LSTMState:
        hidden = [cell.zero_state(batch_size) for cell in self.cells]
        return hidden, list(hidden)

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run the stack over ``(batch, steps, input_size)`` inputs."""
        batch, steps = inputs.shape[0], inputs.shape[1]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer] = cell(layer_input, h_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout(
                        layer_input, self.dropout_rate, self.training, self._rng
                    )
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=1)
        return outputs, (h_states, list(h_states))

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance one timestep (decoder usage)."""
        h_states = list(state[0])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer] = cell(layer_input, h_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout(
                    layer_input, self.dropout_rate, self.training, self._rng
                )
        return layer_input, (h_states, list(h_states))


class BatchedGRUCell(Module):
    """One GRU layer advanced in lockstep for many pair models.

    Gate and candidate weights are stacked along a leading pair axis so
    the cohort's fused gate matmuls run as stacked BLAS calls; each
    pair's slice follows :class:`GRUCell` exactly.
    """

    def __init__(
        self,
        gate_weight_x: np.ndarray,
        gate_weight_h: np.ndarray,
        gate_bias: np.ndarray,
        candidate_weight_x: np.ndarray,
        candidate_weight_h: np.ndarray,
        candidate_bias: np.ndarray,
    ) -> None:
        super().__init__()
        self.num_pairs = gate_weight_x.shape[0]
        self.input_size = gate_weight_x.shape[1]
        self.hidden_size = gate_weight_h.shape[1]
        self.gate_weight_x = Parameter(np.asarray(gate_weight_x, dtype=np.float64), name="gate_weight_x")
        self.gate_weight_h = Parameter(np.asarray(gate_weight_h, dtype=np.float64), name="gate_weight_h")
        self.gate_bias = Parameter(np.asarray(gate_bias, dtype=np.float64), name="gate_bias")
        self.candidate_weight_x = Parameter(
            np.asarray(candidate_weight_x, dtype=np.float64), name="candidate_weight_x"
        )
        self.candidate_weight_h = Parameter(
            np.asarray(candidate_weight_h, dtype=np.float64), name="candidate_weight_h"
        )
        self.candidate_bias = Parameter(
            np.asarray(candidate_bias, dtype=np.float64), name="candidate_bias"
        )

    _WEIGHTS = (
        "gate_weight_x",
        "gate_weight_h",
        "candidate_weight_x",
        "candidate_weight_h",
    )
    _BIASES = ("gate_bias", "candidate_bias")

    @classmethod
    def stack(cls, cells: "list[GRUCell]") -> "BatchedGRUCell":
        if not cells:
            raise ValueError("stack requires at least one cell")
        shape = (cells[0].input_size, cells[0].hidden_size)
        if any((cell.input_size, cell.hidden_size) != shape for cell in cells):
            raise ValueError("stacked GRU cells must share dimensions")
        return cls(
            np.stack([cell.gate_weight_x.data for cell in cells]),
            np.stack([cell.gate_weight_h.data for cell in cells]),
            np.stack([cell.gate_bias.data.reshape(1, -1) for cell in cells]),
            np.stack([cell.candidate_weight_x.data for cell in cells]),
            np.stack([cell.candidate_weight_h.data for cell in cells]),
            np.stack([cell.candidate_bias.data.reshape(1, -1) for cell in cells]),
        )

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step: ``(pairs, batch, *)`` in, next hidden out."""
        hidden = self.hidden_size
        gates = x @ self.gate_weight_x + h @ self.gate_weight_h + self.gate_bias
        reset = gates[:, :, :hidden].sigmoid()
        update = gates[:, :, hidden:].sigmoid()
        candidate = (
            x @ self.candidate_weight_x
            + (reset * h) @ self.candidate_weight_h
            + self.candidate_bias
        ).tanh()
        return update * h + (1.0 - update) * candidate

    def zero_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((self.num_pairs, batch_size, self.hidden_size)))

    def select_pairs(self, keep: np.ndarray) -> None:
        for name in self._WEIGHTS + self._BIASES:
            param = getattr(self, name)
            param.data = param.data[keep]
            param.zero_grad()
        self.num_pairs = self.gate_weight_x.data.shape[0]

    def unpack_into(self, cells: "list[GRUCell]") -> None:
        if len(cells) != self.num_pairs:
            raise ValueError(f"expected {self.num_pairs} cells, got {len(cells)}")
        for index, cell in enumerate(cells):
            for name in self._WEIGHTS:
                getattr(cell, name).data = getattr(self, name).data[index].copy()
            for name in self._BIASES:
                getattr(cell, name).data = getattr(self, name).data[index, 0].copy()


class BatchedGRU(Module):
    """Stack of :class:`BatchedGRUCell` layers over a pair axis.

    Interface-compatible with :class:`~repro.nn.lstm.BatchedLSTM`
    (state mirrors :data:`LSTMState`; the second list aliases the
    hidden list), and uses one dropout RNG stream per pair.
    """

    def __init__(
        self,
        cells: "list[BatchedGRUCell]",
        dropout: float,
        rngs: "list[np.random.Generator]",
    ) -> None:
        super().__init__()
        self.cells = cells
        self.num_layers = len(cells)
        self.hidden_size = cells[0].hidden_size
        self.dropout_rate = dropout
        self.rngs = list(rngs)

    @classmethod
    def stack(cls, grus: "list[GRU]", rngs: "list[np.random.Generator]") -> "BatchedGRU":
        if not grus:
            raise ValueError("stack requires at least one GRU")
        num_layers = grus[0].num_layers
        dropout = grus[0].dropout_rate
        if any(m.num_layers != num_layers or m.dropout_rate != dropout for m in grus):
            raise ValueError("stacked GRUs must share num_layers and dropout")
        cells = [
            BatchedGRUCell.stack([m.cells[layer] for m in grus])
            for layer in range(num_layers)
        ]
        return cls(cells, dropout, rngs)

    @property
    def num_pairs(self) -> int:
        return self.cells[0].num_pairs

    def zero_state(self, batch_size: int) -> LSTMState:
        hidden = [cell.zero_state(batch_size) for cell in self.cells]
        return hidden, list(hidden)

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run over ``(pairs, batch, steps, input)``; outputs stack on axis 2."""
        batch, steps = inputs.shape[1], inputs.shape[2]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, :, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer] = cell(layer_input, h_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout_per_pair(
                        layer_input, self.dropout_rate, self.training, self.rngs
                    )
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=2)
        return outputs, (h_states, list(h_states))

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance all pairs a single timestep (decoder usage)."""
        h_states = list(state[0])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer] = cell(layer_input, h_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout_per_pair(
                    layer_input, self.dropout_rate, self.training, self.rngs
                )
        return layer_input, (h_states, list(h_states))

    def select_pairs(self, keep: np.ndarray) -> None:
        for cell in self.cells:
            cell.select_pairs(keep)
        self.rngs = [self.rngs[int(index)] for index in keep]

    def unpack_into(self, grus: "list[GRU]") -> None:
        for layer, cell in enumerate(self.cells):
            cell.unpack_into([m.cells[layer] for m in grus])
