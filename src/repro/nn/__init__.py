"""A from-scratch numpy neural-network substrate.

The paper trains seq2seq-with-attention NMT models (citation [23]) on a
GPU with TensorFlow; this environment has neither, so :mod:`repro.nn`
provides the equivalent building blocks — reverse-mode autodiff,
multi-layer LSTMs, Luong attention, embeddings, dropout and Adam — on
plain numpy.  See DESIGN.md ("Substitutions") for the rationale.

The ``Batched*`` twins of each model-facing module carry a leading
*pair* axis so dozens of independently-seeded pair models advance in
lockstep inside one tensor program (see
:class:`repro.translation.BatchedPairTrainer`).
"""

from . import functional
from .attention import BatchedLuongAttention, LuongAttention
from .gru import GRU, BatchedGRU, BatchedGRUCell, GRUCell
from .layers import BatchedEmbedding, BatchedLinear, Dropout, Embedding, Linear
from .lstm import LSTM, BatchedLSTM, BatchedLSTMCell, LSTMCell, LSTMState
from .module import Module, Parameter
from .optim import SGD, Adam, BatchedAdam, clip_grad_norm, clip_grad_norm_per_pair
from .schedulers import ExponentialDecay, ReduceOnPlateau, StepDecay
from .serialization import load_module, save_module
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "BatchedAdam",
    "BatchedEmbedding",
    "BatchedGRU",
    "BatchedGRUCell",
    "BatchedLSTM",
    "BatchedLSTMCell",
    "BatchedLinear",
    "BatchedLuongAttention",
    "Dropout",
    "Embedding",
    "ExponentialDecay",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "LSTMState",
    "Linear",
    "LuongAttention",
    "Module",
    "Parameter",
    "ReduceOnPlateau",
    "SGD",
    "StepDecay",
    "Tensor",
    "clip_grad_norm",
    "clip_grad_norm_per_pair",
    "functional",
    "is_grad_enabled",
    "load_module",
    "no_grad",
    "save_module",
]
