"""A from-scratch numpy neural-network substrate.

The paper trains seq2seq-with-attention NMT models (citation [23]) on a
GPU with TensorFlow; this environment has neither, so :mod:`repro.nn`
provides the equivalent building blocks — reverse-mode autodiff,
multi-layer LSTMs, Luong attention, embeddings, dropout and Adam — on
plain numpy.  See DESIGN.md ("Substitutions") for the rationale.
"""

from . import functional
from .attention import LuongAttention
from .gru import GRU, GRUCell
from .layers import Dropout, Embedding, Linear
from .lstm import LSTM, LSTMCell, LSTMState
from .module import Module, Parameter
from .optim import SGD, Adam, clip_grad_norm
from .schedulers import ExponentialDecay, ReduceOnPlateau, StepDecay
from .serialization import load_module, save_module
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "ExponentialDecay",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "LSTMState",
    "Linear",
    "LuongAttention",
    "Module",
    "Parameter",
    "ReduceOnPlateau",
    "SGD",
    "StepDecay",
    "Tensor",
    "clip_grad_norm",
    "functional",
    "is_grad_enabled",
    "load_module",
    "no_grad",
    "save_module",
]
