"""Learning-rate schedules.

The GNMT-style NMT training recipe decays the learning rate once the
model plateaus; these small schedulers mutate an optimiser's ``lr`` in
place, one ``step()`` per training step.
"""

from __future__ import annotations

from .optim import Optimizer

__all__ = ["ExponentialDecay", "StepDecay", "ReduceOnPlateau"]


class ExponentialDecay:
    """Multiply the learning rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> float:
        self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.5) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.period = period
        self.gamma = gamma
        self._steps = 0

    def step(self) -> float:
        self._steps += 1
        if self._steps % self.period == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class ReduceOnPlateau:
    """Halve the learning rate when a monitored loss stops improving.

    Call :meth:`step` with the latest loss; after ``patience`` steps
    without an improvement of at least ``min_delta`` the learning rate
    is multiplied by ``factor`` and the counter resets.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        patience: int = 20,
        factor: float = 0.5,
        min_delta: float = 1e-4,
        min_lr: float = 1e-6,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.patience = patience
        self.factor = factor
        self.min_delta = min_delta
        self.min_lr = min_lr
        self._best = float("inf")
        self._stale = 0

    def step(self, loss: float) -> float:
        if loss < self._best - self.min_delta:
            self._best = loss
            self._stale = 0
        else:
            self._stale += 1
            if self._stale >= self.patience:
                self.optimizer.lr = max(self.min_lr, self.optimizer.lr * self.factor)
                self._stale = 0
        return self.optimizer.lr
