"""Multi-layer LSTM built on the autograd tensor engine.

The gate computation is fused into a single matmul per step per layer
(the four gates share one weight matrix), which is the standard
formulation and keeps the Python-level op count low.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "LSTMState", "BatchedLSTMCell", "BatchedLSTM"]

LSTMState = tuple[list[Tensor], list[Tensor]]
"""Per-layer hidden and cell states: ``(h_per_layer, c_per_layer)``."""


class LSTMCell(Module):
    """A single LSTM layer advanced one timestep at a time.

    Gate order within the fused weight matrices is ``(input, forget,
    cell, output)``.  The forget-gate bias is initialised to 1.0, the
    usual trick to ease gradient flow early in training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, 4 * hidden_size)), name="weight_x"
        )
        self.weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, 4 * hidden_size)), name="weight_h"
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        h, c:
            Previous hidden/cell state, each ``(batch, hidden_size)``.

        Returns
        -------
        ``(h_next, c_next)``.
        """
        hidden = self.hidden_size
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        i_gate = gates[:, :hidden].sigmoid()
        f_gate = gates[:, hidden : 2 * hidden].sigmoid()
        g_gate = gates[:, 2 * hidden : 3 * hidden].tanh()
        o_gate = gates[:, 3 * hidden :].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def zero_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Return all-zero ``(h, c)`` for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Stack of :class:`LSTMCell` layers unrolled over time.

    Matches the paper's NMT configuration when constructed with
    ``num_layers=2`` and ``hidden_size=64``.  Dropout (inverted) is
    applied to the output of every layer except the last, following the
    convention of stacked recurrent networks.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int) -> LSTMState:
        """All-zero initial state for every layer."""
        states = [cell.zero_state(batch_size) for cell in self.cells]
        return [h for h, _ in states], [c for _, c in states]

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run the stack over a full sequence.

        Parameters
        ----------
        inputs:
            Tensor of shape ``(batch, steps, input_size)``.
        state:
            Optional initial state; defaults to zeros.

        Returns
        -------
        ``(outputs, final_state)`` where ``outputs`` has shape
        ``(batch, steps, hidden_size)`` (top layer only).
        """
        batch, steps = inputs.shape[0], inputs.shape[1]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])
        c_states = list(state[1])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout(layer_input, self.dropout_rate, self.training, self._rng)
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=1)
        return outputs, (h_states, c_states)

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance the whole stack a single timestep (used by decoders)."""
        h_states = list(state[0])
        c_states = list(state[1])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout(layer_input, self.dropout_rate, self.training, self._rng)
        return layer_input, (h_states, c_states)


class BatchedLSTMCell(Module):
    """One LSTM layer advanced in lockstep for many pair models.

    The per-pair ``weight_x``/``weight_h``/``bias`` matrices are stacked
    along a leading pair axis, fusing the cohort's gate computation into
    stacked BLAS calls: inputs ``(pairs, batch, input)`` against weights
    ``(pairs, input, 4*hidden)``.  Each pair's slice runs through the
    same arithmetic as :class:`LSTMCell`, so per-pair activations match
    the looped cell.
    """

    def __init__(
        self, weight_x: np.ndarray, weight_h: np.ndarray, bias: np.ndarray
    ) -> None:
        super().__init__()
        self.num_pairs = weight_x.shape[0]
        self.input_size = weight_x.shape[1]
        self.hidden_size = weight_h.shape[1]
        self.weight_x = Parameter(np.asarray(weight_x, dtype=np.float64), name="weight_x")
        self.weight_h = Parameter(np.asarray(weight_h, dtype=np.float64), name="weight_h")
        self.bias = Parameter(np.asarray(bias, dtype=np.float64), name="bias")

    @classmethod
    def stack(cls, cells: "list[LSTMCell]") -> "BatchedLSTMCell":
        if not cells:
            raise ValueError("stack requires at least one cell")
        shape = (cells[0].input_size, cells[0].hidden_size)
        if any((cell.input_size, cell.hidden_size) != shape for cell in cells):
            raise ValueError("stacked LSTM cells must share dimensions")
        weight_x = np.stack([cell.weight_x.data for cell in cells])
        weight_h = np.stack([cell.weight_h.data for cell in cells])
        bias = np.stack([cell.bias.data.reshape(1, -1) for cell in cells])
        return cls(weight_x, weight_h, bias)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one step: ``(pairs, batch, *)`` in, ``(h, c)`` out."""
        hidden = self.hidden_size
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        i_gate = gates[:, :, :hidden].sigmoid()
        f_gate = gates[:, :, hidden : 2 * hidden].sigmoid()
        g_gate = gates[:, :, 2 * hidden : 3 * hidden].tanh()
        o_gate = gates[:, :, 3 * hidden :].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def zero_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((self.num_pairs, batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def select_pairs(self, keep: np.ndarray) -> None:
        for param in (self.weight_x, self.weight_h, self.bias):
            param.data = param.data[keep]
            param.zero_grad()
        self.num_pairs = self.weight_x.data.shape[0]

    def unpack_into(self, cells: "list[LSTMCell]") -> None:
        if len(cells) != self.num_pairs:
            raise ValueError(f"expected {self.num_pairs} cells, got {len(cells)}")
        for index, cell in enumerate(cells):
            cell.weight_x.data = self.weight_x.data[index].copy()
            cell.weight_h.data = self.weight_h.data[index].copy()
            cell.bias.data = self.bias.data[index, 0].copy()


class BatchedLSTM(Module):
    """Stack of :class:`BatchedLSTMCell` layers over a pair axis.

    Mirrors :class:`LSTM` with inputs ``(pairs, batch, steps, input)``
    and per-pair dropout streams: ``rngs[p]`` is pair ``p``'s own
    generator, consumed with exactly the draws the looped model would
    make, so lockstep training preserves each pair's RNG stream.
    """

    def __init__(
        self,
        cells: "list[BatchedLSTMCell]",
        dropout: float,
        rngs: "list[np.random.Generator]",
    ) -> None:
        super().__init__()
        self.cells = cells
        self.num_layers = len(cells)
        self.hidden_size = cells[0].hidden_size
        self.dropout_rate = dropout
        self.rngs = list(rngs)

    @classmethod
    def stack(cls, lstms: "list[LSTM]", rngs: "list[np.random.Generator]") -> "BatchedLSTM":
        if not lstms:
            raise ValueError("stack requires at least one LSTM")
        num_layers = lstms[0].num_layers
        dropout = lstms[0].dropout_rate
        if any(m.num_layers != num_layers or m.dropout_rate != dropout for m in lstms):
            raise ValueError("stacked LSTMs must share num_layers and dropout")
        cells = [
            BatchedLSTMCell.stack([m.cells[layer] for m in lstms])
            for layer in range(num_layers)
        ]
        return cls(cells, dropout, rngs)

    @property
    def num_pairs(self) -> int:
        return self.cells[0].num_pairs

    def zero_state(self, batch_size: int) -> LSTMState:
        states = [cell.zero_state(batch_size) for cell in self.cells]
        return [h for h, _ in states], [c for _, c in states]

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run over ``(pairs, batch, steps, input)``; outputs stack on axis 2."""
        batch, steps = inputs.shape[1], inputs.shape[2]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])
        c_states = list(state[1])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, :, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout_per_pair(
                        layer_input, self.dropout_rate, self.training, self.rngs
                    )
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=2)
        return outputs, (h_states, c_states)

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance all pairs a single timestep (decoder usage)."""
        h_states = list(state[0])
        c_states = list(state[1])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout_per_pair(
                    layer_input, self.dropout_rate, self.training, self.rngs
                )
        return layer_input, (h_states, c_states)

    def select_pairs(self, keep: np.ndarray) -> None:
        for cell in self.cells:
            cell.select_pairs(keep)
        self.rngs = [self.rngs[int(index)] for index in keep]

    def unpack_into(self, lstms: "list[LSTM]") -> None:
        for layer, cell in enumerate(self.cells):
            cell.unpack_into([m.cells[layer] for m in lstms])
