"""Multi-layer LSTM built on the autograd tensor engine.

The gate computation is fused into a single matmul per step per layer
(the four gates share one weight matrix), which is the standard
formulation and keeps the Python-level op count low.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "LSTMState"]

LSTMState = tuple[list[Tensor], list[Tensor]]
"""Per-layer hidden and cell states: ``(h_per_layer, c_per_layer)``."""


class LSTMCell(Module):
    """A single LSTM layer advanced one timestep at a time.

    Gate order within the fused weight matrices is ``(input, forget,
    cell, output)``.  The forget-gate bias is initialised to 1.0, the
    usual trick to ease gradient flow early in training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.weight_x = Parameter(
            rng.uniform(-scale, scale, size=(input_size, 4 * hidden_size)), name="weight_x"
        )
        self.weight_h = Parameter(
            rng.uniform(-scale, scale, size=(hidden_size, 4 * hidden_size)), name="weight_h"
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        h, c:
            Previous hidden/cell state, each ``(batch, hidden_size)``.

        Returns
        -------
        ``(h_next, c_next)``.
        """
        hidden = self.hidden_size
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        i_gate = gates[:, :hidden].sigmoid()
        f_gate = gates[:, hidden : 2 * hidden].sigmoid()
        g_gate = gates[:, 2 * hidden : 3 * hidden].tanh()
        o_gate = gates[:, 3 * hidden :].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def zero_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Return all-zero ``(h, c)`` for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Stack of :class:`LSTMCell` layers unrolled over time.

    Matches the paper's NMT configuration when constructed with
    ``num_layers=2`` and ``hidden_size=64``.  Dropout (inverted) is
    applied to the output of every layer except the last, following the
    convention of stacked recurrent networks.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_rate = dropout
        self._rng = rng
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        ]

    def zero_state(self, batch_size: int) -> LSTMState:
        """All-zero initial state for every layer."""
        states = [cell.zero_state(batch_size) for cell in self.cells]
        return [h for h, _ in states], [c for _, c in states]

    def forward(self, inputs: Tensor, state: LSTMState | None = None) -> tuple[Tensor, LSTMState]:
        """Run the stack over a full sequence.

        Parameters
        ----------
        inputs:
            Tensor of shape ``(batch, steps, input_size)``.
        state:
            Optional initial state; defaults to zeros.

        Returns
        -------
        ``(outputs, final_state)`` where ``outputs`` has shape
        ``(batch, steps, hidden_size)`` (top layer only).
        """
        batch, steps = inputs.shape[0], inputs.shape[1]
        if state is None:
            state = self.zero_state(batch)
        h_states = list(state[0])
        c_states = list(state[1])

        top_outputs: list[Tensor] = []
        for t in range(steps):
            layer_input = inputs[:, t, :]
            for layer, cell in enumerate(self.cells):
                h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
                layer_input = h_states[layer]
                if layer < self.num_layers - 1:
                    layer_input = F.dropout(layer_input, self.dropout_rate, self.training, self._rng)
            top_outputs.append(layer_input)

        outputs = Tensor.stack(top_outputs, axis=1)
        return outputs, (h_states, c_states)

    def step(self, x: Tensor, state: LSTMState) -> tuple[Tensor, LSTMState]:
        """Advance the whole stack a single timestep (used by decoders)."""
        h_states = list(state[0])
        c_states = list(state[1])
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_states[layer], c_states[layer] = cell(layer_input, h_states[layer], c_states[layer])
            layer_input = h_states[layer]
            if layer < self.num_layers - 1:
                layer_input = F.dropout(layer_input, self.dropout_rate, self.training, self._rng)
        return layer_input, (h_states, c_states)
