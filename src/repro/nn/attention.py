"""Luong (multiplicative) attention, as used by the paper's NMT model.

Reference: Luong, Pham & Manning, "Effective Approaches to
Attention-based Neural Machine Translation" (2015) — the paper's
citation [23].
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import BatchedLinear, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["LuongAttention", "BatchedLuongAttention"]


class LuongAttention(Module):
    """Luong attention with an attentional output layer.

    Given decoder state ``h_t`` (batch, hidden) and encoder outputs
    ``H_s`` (batch, src_len, hidden):

    - score ``e`` using one of Luong's three content functions:
      ``"dot"`` (``h_t · H_s``), ``"general"`` (``h_t W_a H_s``, the
      default and the paper's configuration) or ``"concat"``
      (``v_a · tanh(W_a [h_t; H_s])``);
    - weights ``a = softmax(e)`` over source positions (optionally
      masked for padding);
    - context ``c = a H_s``;
    - attentional vector ``h~ = tanh(W_c [c; h_t])``.
    """

    SCORES = ("dot", "general", "concat")

    def __init__(
        self,
        hidden_size: int,
        rng: np.random.Generator | None = None,
        score: str = "general",
    ) -> None:
        super().__init__()
        if score not in self.SCORES:
            raise ValueError(f"score must be one of {self.SCORES}, got {score!r}")
        self.hidden_size = hidden_size
        self.score = score
        if score == "general":
            self.score_layer = Linear(hidden_size, hidden_size, bias=False, rng=rng)
        elif score == "concat":
            self.concat_layer = Linear(2 * hidden_size, hidden_size, bias=False, rng=rng)
            self.score_vector = Linear(hidden_size, 1, bias=False, rng=rng)
        self.combine_layer = Linear(2 * hidden_size, hidden_size, rng=rng)

    def _scores(self, decoder_state: Tensor, encoder_outputs: Tensor) -> Tensor:
        batch, src_len = encoder_outputs.shape[0], encoder_outputs.shape[1]
        if self.score == "dot":
            projected = decoder_state
        elif self.score == "general":
            projected = self.score_layer(decoder_state)
        else:  # concat
            expanded = Tensor.stack([decoder_state] * src_len, axis=1)
            combined = Tensor.concat([expanded, encoder_outputs], axis=2)
            energy = self.concat_layer(combined).tanh()
            return self.score_vector(energy).reshape(batch, src_len)
        return (
            encoder_outputs * projected.reshape(batch, 1, self.hidden_size)
        ).sum(axis=2)

    def forward(
        self,
        decoder_state: Tensor,
        encoder_outputs: Tensor,
        source_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Compute the attentional vector and attention weights.

        Parameters
        ----------
        decoder_state:
            ``(batch, hidden)`` top-layer decoder hidden state.
        encoder_outputs:
            ``(batch, src_len, hidden)`` encoder top-layer outputs.
        source_mask:
            Optional ``(batch, src_len)`` array; zero marks padding
            positions, which receive zero attention.

        Returns
        -------
        ``(attentional, weights)`` with shapes ``(batch, hidden)`` and
        ``(batch, src_len)``.
        """
        scores = self._scores(decoder_state, encoder_outputs)
        if source_mask is not None:
            penalty = np.where(np.asarray(source_mask) > 0, 0.0, -1e9)
            scores = scores + Tensor(penalty)
        weights = F.softmax(scores, axis=1)  # (batch, src_len)
        context = (encoder_outputs * weights.reshape(weights.shape[0], weights.shape[1], 1)).sum(axis=1)
        combined = Tensor.concat([context, decoder_state], axis=1)
        attentional = self.combine_layer(combined).tanh()
        return attentional, weights


class BatchedLuongAttention(Module):
    """Luong attention over a leading pair axis.

    The per-pair score/combine layers are stacked into
    :class:`~repro.nn.layers.BatchedLinear` slabs; decoder states are
    ``(pairs, batch, hidden)`` and encoder outputs ``(pairs, batch,
    src_len, hidden)``.  Per pair the arithmetic matches
    :class:`LuongAttention` slice for slice.
    """

    def __init__(
        self,
        hidden_size: int,
        score: str,
        score_layer: BatchedLinear | None,
        concat_layer: BatchedLinear | None,
        score_vector: BatchedLinear | None,
        combine_layer: BatchedLinear,
    ) -> None:
        super().__init__()
        if score not in LuongAttention.SCORES:
            raise ValueError(f"score must be one of {LuongAttention.SCORES}, got {score!r}")
        self.hidden_size = hidden_size
        self.score = score
        if score == "general":
            self.score_layer = score_layer
        elif score == "concat":
            self.concat_layer = concat_layer
            self.score_vector = score_vector
        self.combine_layer = combine_layer

    @classmethod
    def stack(cls, attentions: "list[LuongAttention]") -> "BatchedLuongAttention":
        if not attentions:
            raise ValueError("stack requires at least one attention module")
        score = attentions[0].score
        hidden = attentions[0].hidden_size
        if any(a.score != score or a.hidden_size != hidden for a in attentions):
            raise ValueError("stacked attentions must share score function and hidden size")
        score_layer = concat_layer = score_vector = None
        if score == "general":
            score_layer = BatchedLinear.stack([a.score_layer for a in attentions])
        elif score == "concat":
            concat_layer = BatchedLinear.stack([a.concat_layer for a in attentions])
            score_vector = BatchedLinear.stack([a.score_vector for a in attentions])
        combine_layer = BatchedLinear.stack([a.combine_layer for a in attentions])
        return cls(hidden, score, score_layer, concat_layer, score_vector, combine_layer)

    def _sublayers(self) -> "list[BatchedLinear]":
        layers = [self.combine_layer]
        if self.score == "general":
            layers.append(self.score_layer)
        elif self.score == "concat":
            layers.extend([self.concat_layer, self.score_vector])
        return layers

    def _scores(self, decoder_state: Tensor, encoder_outputs: Tensor) -> Tensor:
        num_pairs, batch, src_len = encoder_outputs.shape[:3]
        if self.score == "dot":
            projected = decoder_state
        elif self.score == "general":
            projected = self.score_layer(decoder_state)
        else:  # concat
            expanded = Tensor.stack([decoder_state] * src_len, axis=2)
            combined = Tensor.concat([expanded, encoder_outputs], axis=3)
            energy = self.concat_layer(combined).tanh()
            return self.score_vector(energy).reshape(num_pairs, batch, src_len)
        return (
            encoder_outputs * projected.reshape(num_pairs, batch, 1, self.hidden_size)
        ).sum(axis=3)

    def forward(
        self,
        decoder_state: Tensor,
        encoder_outputs: Tensor,
        source_mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Per-pair attentional vector and weights.

        ``decoder_state`` is ``(pairs, batch, hidden)``,
        ``encoder_outputs`` ``(pairs, batch, src_len, hidden)``, and the
        optional ``source_mask`` ``(pairs, batch, src_len)``.  Returns
        ``(attentional, weights)`` of shapes ``(pairs, batch, hidden)``
        and ``(pairs, batch, src_len)``.
        """
        scores = self._scores(decoder_state, encoder_outputs)
        if source_mask is not None:
            penalty = np.where(np.asarray(source_mask) > 0, 0.0, -1e9)
            scores = scores + Tensor(penalty)
        weights = F.softmax(scores, axis=2)  # (pairs, batch, src_len)
        context = (
            encoder_outputs
            * weights.reshape(weights.shape[0], weights.shape[1], weights.shape[2], 1)
        ).sum(axis=2)
        combined = Tensor.concat([context, decoder_state], axis=2)
        attentional = self.combine_layer(combined).tanh()
        return attentional, weights

    def select_pairs(self, keep: np.ndarray) -> None:
        for layer in self._sublayers():
            layer.select_pairs(keep)

    def unpack_into(self, attentions: "list[LuongAttention]") -> None:
        self.combine_layer.unpack_into([a.combine_layer for a in attentions])
        if self.score == "general":
            self.score_layer.unpack_into([a.score_layer for a in attentions])
        elif self.score == "concat":
            self.concat_layer.unpack_into([a.concat_layer for a in attentions])
            self.score_vector.unpack_into([a.score_vector for a in attentions])
