"""Reverse-mode automatic differentiation over numpy arrays.

This module implements the minimal tensor engine that the rest of
:mod:`repro.nn` is built on.  A :class:`Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it; calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor created with
``requires_grad=True``.

The engine supports full numpy-style broadcasting for elementwise
operations.  Gradients for broadcast operands are reduced back to the
operand's original shape (see :func:`_unbroadcast`).

Only the operations needed by the seq2seq NMT model are provided:
arithmetic, matmul, activations, softmax/log-softmax, reductions,
reshaping, concatenation, stacking and gather-style indexing.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Thread-local so one thread's no_grad() inference cannot disable
# gradient tracking for a model training concurrently on another
# thread (the parallel pair executor trains and evaluates models on a
# thread pool).
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables gradient tracking.

    Within the context, newly created tensors do not record their
    producers, which makes inference passes cheaper and keeps the
    autograd graph from growing during evaluation.  The switch is
    per-thread.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is enabled in this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    When an operand was broadcast during the forward pass, its gradient
    arrives with the broadcast shape and must be summed over the
    broadcast axes to match the operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: "Tensor | np.ndarray | float | int | list") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: "np.ndarray | float | int | list",
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient.  Defaults to ``1.0`` which requires this
            tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the reachable graph.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: float) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: float) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product supporting batched operands (numpy semantics)."""
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(_unbroadcast(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data, self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(_unbroadcast(np.outer(self.data, grad), other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (defaults to reversing them, numpy semantics)."""
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        data = np.transpose(self.data, axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # ------------------------------------------------------------------
    # Shaping
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index: object) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        mask = self.data == self.data.max(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g / counts)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------
    # Composite constructors
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        parts = list(tensors)
        data = np.concatenate([p.data for p in parts], axis=axis)
        sizes = [p.data.shape[axis] for p in parts]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
                if part.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(int(start), int(stop))
                    part._accumulate(grad[tuple(index)])

        return Tensor._make(data, parts, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        parts = list(tensors)
        data = np.stack([p.data for p in parts], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slabs = np.split(grad, len(parts), axis=axis)
            for part, slab in zip(parts, slabs):
                if part.requires_grad:
                    part._accumulate(np.squeeze(slab, axis=axis))

        return Tensor._make(data, parts, backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index (embedding lookup).

        ``indices`` may be any integer array; the result has shape
        ``indices.shape + self.shape[1:]``.
        """
        idx = np.asarray(indices, dtype=np.int64)
        data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx.reshape(-1), grad.reshape(-1, *self.shape[1:]))
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def take_rows_batched(self, indices: np.ndarray) -> "Tensor":
        """Per-model row gather for stacked embedding tables.

        ``self`` has shape ``(models, rows, ...)`` — one row table per
        model along the leading pair axis — and ``indices`` has shape
        ``(models, *batch)`` with each model's indices addressing its
        own table.  The result has shape
        ``(models, *batch) + self.shape[2:]``.  This is the gather that
        lets many pair models share one embedding lookup per step.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if self.ndim < 2 or idx.ndim < 1 or idx.shape[0] != self.shape[0]:
            raise ValueError(
                f"take_rows_batched requires a (models, rows, ...) table and "
                f"(models, ...) indices; got {self.shape} and {idx.shape}"
            )
        models, rows = self.shape[0], self.shape[1]
        lead = (models,) + (1,) * (idx.ndim - 1)
        model_index = np.arange(models).reshape(lead)
        data = self.data[model_index, idx]
        tail = self.shape[2:]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                flat_idx = (idx + np.arange(models, dtype=np.int64).reshape(lead) * rows).reshape(-1)
                np.add.at(full.reshape(-1, *tail), flat_idx, grad.reshape(-1, *tail))
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)
