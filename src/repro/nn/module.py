"""Module/parameter containers mirroring the familiar torch-style API."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` walk the
    resulting tree.  The :attr:`training` flag toggles behaviours such as
    dropout.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module's subtree."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{index}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters in the subtree."""
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch the subtree into training mode."""
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        """Switch the subtree into evaluation mode."""
        self._set_training(False)
        return self

    def _set_training(self, flag: bool) -> None:
        self.training = flag
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_training(flag)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_training(flag)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot parameter values keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = params[name]
            if param.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {values.shape}"
                )
            param.data = np.array(values, dtype=np.float64)

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError
