"""Basic trainable layers: Linear, Embedding and Dropout."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "Dropout", "BatchedLinear", "BatchedEmbedding"]


def _glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to include the additive bias term.
    rng:
        Generator used for weight initialisation (deterministic models
        pass a seeded generator).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)), name="weight"
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        return self.weight.take_rows(token_ids)


class BatchedLinear(Module):
    """Per-pair affine slabs: one :class:`Linear` per pair in one matmul.

    Parameters are stacked along a leading pair axis — ``weight`` is
    ``(pairs, in, out)``, ``bias`` is ``(pairs, 1, out)`` — so a
    ``(pairs, batch, in)`` input advances every pair model with a single
    stacked BLAS call.  Numpy's batched matmul computes each pair slice
    with the same kernel the looped :class:`Linear` would use, so the
    outputs (and gradients) match the looped path per pair.

    Pairs whose looped layer is narrower than the slab (padded output
    features, e.g. vocabulary projections) keep zero weights/bias in the
    padded columns; those columns receive zero gradient as long as the
    loss never reads them, so they stay zero under Adam.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None) -> None:
        super().__init__()
        self.num_pairs = weight.shape[0]
        self.in_features = weight.shape[1]
        self.out_features = weight.shape[2]
        self.weight = Parameter(np.asarray(weight, dtype=np.float64), name="weight")
        self.bias = (
            Parameter(np.asarray(bias, dtype=np.float64), name="bias")
            if bias is not None
            else None
        )

    @classmethod
    def stack(cls, linears: "list[Linear]", pad_out_to: int | None = None) -> "BatchedLinear":
        """Stack fitted per-pair :class:`Linear` layers into one slab.

        ``pad_out_to`` widens the output axis (zero padding) so layers
        with different ``out_features`` — per-pair vocabulary
        projections — can share one slab.
        """
        if not linears:
            raise ValueError("stack requires at least one layer")
        in_features = linears[0].in_features
        has_bias = linears[0].bias is not None
        for linear in linears:
            if linear.in_features != in_features or (linear.bias is not None) != has_bias:
                raise ValueError("stacked Linear layers must share in_features and bias-ness")
        out_max = pad_out_to or max(linear.out_features for linear in linears)
        if any(linear.out_features > out_max for linear in linears):
            raise ValueError("pad_out_to smaller than a layer's out_features")
        weight = np.zeros((len(linears), in_features, out_max))
        bias = np.zeros((len(linears), 1, out_max)) if has_bias else None
        for index, linear in enumerate(linears):
            weight[index, :, : linear.out_features] = linear.weight.data
            if bias is not None:
                bias[index, 0, : linear.out_features] = linear.bias.data
        return cls(weight, bias)

    def forward(self, x: Tensor) -> Tensor:
        weight: Tensor = self.weight
        bias: Tensor | None = self.bias
        if x.ndim > 3:
            # Insert singleton axes so the pair axis lines up with the
            # input's extra batch dimensions for broadcasting.
            middle = (1,) * (x.ndim - 3)
            weight = weight.reshape((self.num_pairs,) + middle + weight.shape[1:])
            if bias is not None:
                bias = bias.reshape((self.num_pairs,) + middle + (1, self.out_features))
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def select_pairs(self, keep: np.ndarray) -> None:
        """Drop finished pairs' slices (early-stop cohort compaction)."""
        self.weight.data = self.weight.data[keep]
        self.weight.zero_grad()
        if self.bias is not None:
            self.bias.data = self.bias.data[keep]
            self.bias.zero_grad()
        self.num_pairs = self.weight.data.shape[0]

    def unpack_into(self, linears: "list[Linear]") -> None:
        """Write trained slab slices back into per-pair looped layers."""
        if len(linears) != self.num_pairs:
            raise ValueError(f"expected {self.num_pairs} layers, got {len(linears)}")
        for index, linear in enumerate(linears):
            linear.weight.data = self.weight.data[index, :, : linear.out_features].copy()
            if linear.bias is not None:
                assert self.bias is not None
                linear.bias.data = self.bias.data[index, 0, : linear.out_features].copy()


class BatchedEmbedding(Module):
    """Per-pair embedding tables padded to a shared vocabulary size.

    ``weight`` is ``(pairs, max_vocab, dim)``; pair ``p`` only ever
    looks up ids below its own vocabulary size, so the zero-padded rows
    are never gathered and never receive gradient.
    """

    def __init__(self, weight: np.ndarray, vocab_sizes: "list[int]") -> None:
        super().__init__()
        self.num_pairs = weight.shape[0]
        self.num_embeddings = weight.shape[1]
        self.embedding_dim = weight.shape[2]
        self.vocab_sizes = list(vocab_sizes)
        self.weight = Parameter(np.asarray(weight, dtype=np.float64), name="weight")

    @classmethod
    def stack(cls, embeddings: "list[Embedding]") -> "BatchedEmbedding":
        if not embeddings:
            raise ValueError("stack requires at least one embedding")
        dim = embeddings[0].embedding_dim
        if any(embedding.embedding_dim != dim for embedding in embeddings):
            raise ValueError("stacked embeddings must share embedding_dim")
        sizes = [embedding.num_embeddings for embedding in embeddings]
        weight = np.zeros((len(embeddings), max(sizes), dim))
        for index, embedding in enumerate(embeddings):
            weight[index, : sizes[index]] = embedding.weight.data
        return cls(weight, sizes)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (
            token_ids.min() < 0 or token_ids.max() >= self.num_embeddings
        ):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        return self.weight.take_rows_batched(token_ids)

    def select_pairs(self, keep: np.ndarray) -> None:
        self.weight.data = self.weight.data[keep]
        self.weight.zero_grad()
        self.vocab_sizes = [self.vocab_sizes[int(index)] for index in keep]
        self.num_pairs = self.weight.data.shape[0]

    def unpack_into(self, embeddings: "list[Embedding]") -> None:
        if len(embeddings) != self.num_pairs:
            raise ValueError(f"expected {self.num_pairs} embeddings, got {len(embeddings)}")
        for index, embedding in enumerate(embeddings):
            embedding.weight.data = self.weight.data[
                index, : embedding.num_embeddings
            ].copy()


class Dropout(Module):
    """Inverted dropout layer; identity when in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self._rng)
