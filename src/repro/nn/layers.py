"""Basic trainable layers: Linear, Embedding and Dropout."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "Dropout"]


def _glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to include the additive bias term.
    rng:
        Generator used for weight initialisation (deterministic models
        pass a seeded generator).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot_uniform(rng, in_features, out_features), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)), name="weight"
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"[{token_ids.min()}, {token_ids.max()}]"
            )
        return self.weight.take_rows(token_ids)


class Dropout(Module):
    """Inverted dropout layer; identity when in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self._rng)
