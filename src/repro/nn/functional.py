"""Stateless neural-network functions built on the autograd tensor."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "masked_cross_entropy",
    "dropout",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, classes)``.
    targets:
        Integer array of shape ``(batch,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    batch = targets.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def masked_cross_entropy(logits: Tensor, targets: np.ndarray, mask: np.ndarray) -> Tensor:
    """Cross entropy averaged over positions where ``mask`` is nonzero.

    Used for padded sequence batches: padding positions contribute
    neither loss nor gradient.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, steps, classes)``.
    targets:
        Integer array of shape ``(batch, steps)``.
    mask:
        Array of shape ``(batch, steps)``; nonzero marks real tokens.
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=np.float64)
    total = mask.sum()
    if total <= 0:
        raise ValueError("masked_cross_entropy requires at least one unmasked position")
    log_probs = log_softmax(logits, axis=-1)
    batch, steps = targets.shape
    rows = np.repeat(np.arange(batch), steps)
    cols = np.tile(np.arange(steps), batch)
    picked = log_probs[rows, cols, targets.reshape(-1)]
    weighted = picked * Tensor(mask.reshape(-1))
    return -(weighted.sum() / total)


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
