"""Stateless neural-network functions built on the autograd tensor."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "masked_cross_entropy",
    "pairwise_masked_cross_entropy",
    "dropout",
    "dropout_per_pair",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, classes)``.
    targets:
        Integer array of shape ``(batch,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    batch = targets.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def masked_cross_entropy(logits: Tensor, targets: np.ndarray, mask: np.ndarray) -> Tensor:
    """Cross entropy averaged over positions where ``mask`` is nonzero.

    Used for padded sequence batches: padding positions contribute
    neither loss nor gradient.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, steps, classes)``.
    targets:
        Integer array of shape ``(batch, steps)``.
    mask:
        Array of shape ``(batch, steps)``; nonzero marks real tokens.
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=np.float64)
    total = mask.sum()
    if total <= 0:
        raise ValueError("masked_cross_entropy requires at least one unmasked position")
    log_probs = log_softmax(logits, axis=-1)
    batch, steps = targets.shape
    rows = np.repeat(np.arange(batch), steps)
    cols = np.tile(np.arange(steps), batch)
    picked = log_probs[rows, cols, targets.reshape(-1)]
    weighted = picked * Tensor(mask.reshape(-1))
    return -(weighted.sum() / total)


def pairwise_masked_cross_entropy(
    logits: Tensor, targets: np.ndarray, mask: np.ndarray
) -> Tensor:
    """Per-pair masked cross entropy over a stacked pair axis.

    The batched twin of :func:`masked_cross_entropy`: ``logits`` carry a
    leading pair axis and the result is one mean negative
    log-likelihood *per pair*, each normalised by that pair's own mask
    total — exactly the scalar the looped trainer would compute for the
    same pair in isolation.  Summing the returned vector and calling
    ``backward`` therefore sends each pair's slab the same gradient as
    ``len(pairs)`` independent scalar losses would.

    Parameters
    ----------
    logits:
        Tensor of shape ``(pairs, batch, steps, classes)``.
    targets:
        Integer array of shape ``(pairs, batch, steps)``.
    mask:
        Array of shape ``(pairs, batch, steps)``; nonzero marks real
        tokens.

    Returns
    -------
    Tensor of shape ``(pairs,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = np.asarray(mask, dtype=np.float64)
    num_pairs, batch, steps = targets.shape
    totals = mask.reshape(num_pairs, -1).sum(axis=1)
    if (totals <= 0).any():
        raise ValueError(
            "pairwise_masked_cross_entropy requires at least one unmasked "
            "position per pair"
        )
    log_probs = log_softmax(logits, axis=-1)
    pair_rows = np.repeat(np.arange(num_pairs), batch * steps)
    batch_rows = np.tile(np.repeat(np.arange(batch), steps), num_pairs)
    step_cols = np.tile(np.arange(steps), num_pairs * batch)
    picked = log_probs[pair_rows, batch_rows, step_cols, targets.reshape(-1)]
    weighted = picked * Tensor(mask.reshape(-1))
    per_pair = weighted.reshape(num_pairs, batch * steps).sum(axis=1)
    return -(per_pair / Tensor(totals))


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def dropout_per_pair(
    x: Tensor,
    rate: float,
    training: bool,
    rngs: "list[np.random.Generator]",
) -> Tensor:
    """Inverted dropout over a stacked pair axis, one RNG stream per pair.

    ``x`` has shape ``(pairs, ...)``; pair ``p``'s mask is drawn from
    ``rngs[p]`` with exactly the call the looped path would make
    (``rng.random(x.shape[1:])``), so each pair's dropout pattern — and
    its RNG stream position — matches a model trained in isolation.
    """
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if len(rngs) != x.shape[0]:
        raise ValueError(
            f"dropout_per_pair needs one RNG per pair: {len(rngs)} vs {x.shape[0]}"
        )
    keep = 1.0 - rate
    slab_shape = x.shape[1:]
    mask = np.stack(
        [(rng.random(slab_shape) < keep).astype(np.float64) / keep for rng in rngs]
    )
    return x * Tensor(mask)
