"""Streaming anomaly detection.

Production deployments receive sensor events incrementally, not as a
complete testing log.  :class:`OnlineAnomalyDetector` wraps the batch
Algorithm 2 with a sliding buffer: push one multivariate sample at a
time; whenever enough samples have accumulated to complete a new
sentence window, the window is scored and an
:class:`~repro.detection.anomaly.DetectionResult`-style record is
emitted.

The detection latency therefore equals the sentence span (the paper's
"granularity of detection"): with the plant settings, one score every
20 minutes.

For chunked transports — a tailer draining a file, a consumer pulling
batches off a queue — :meth:`OnlineAnomalyDetector.push_chunk` ingests
a block of samples with one vectorised encode per sensor, and
:meth:`OnlineAnomalyDetector.stream_from_reader` drives a whole
chunked reader (e.g. :func:`repro.datasets.io.iter_event_chunks`)
without ever materialising the full test log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import DETECTION_RANGE, ScoreRange
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..translation.bleu import sentence_bleu
from .validity import valid_detection_pairs

__all__ = ["OnlineAnomalyDetector", "WindowScore"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class WindowScore:
    """One emitted detection window."""

    window_index: int
    start_sample: int
    anomaly_score: float
    broken_pairs: tuple[tuple[str, str], ...]


class OnlineAnomalyDetector:
    """Incremental Algorithm 2 over a stream of multivariate samples.

    Parameters
    ----------
    graph:
        Trained relationship graph (Algorithm 1 output).
    score_range, threshold, quantile, margin:
        As in :class:`~repro.detection.anomaly.AnomalyDetector`.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` the detector
        records into (samples ingested, windows scored, broken pairs,
        per-window scoring latency — the serving hot path); a private
        registry is created when omitted.

    The valid-pair set is the shared
    :func:`~repro.detection.validity.valid_detection_pairs` definition,
    so the streaming path counts exactly the pairs the batch
    :class:`~repro.detection.anomaly.AnomalyDetector` counts —
    including the dev-BLEU-0.0 exclusion (a never-breakable pair would
    otherwise dilute ``a_t`` relative to batch).
    """

    def __init__(
        self,
        graph: MultivariateRelationshipGraph,
        score_range: ScoreRange = DETECTION_RANGE,
        threshold: str = "dev-quantile",
        quantile: float = 0.05,
        margin: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.graph = graph
        self.score_range = score_range
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pairs = valid_detection_pairs(graph, score_range)
        if not self._pairs:
            raise ValueError(f"no valid pair models in range {score_range}")
        self._thresholds = {
            pair: graph[pair].threshold(threshold, quantile) - margin
            for pair in self._pairs
        }
        self._sensors = sorted({s for pair in self._pairs for s in pair})
        # The sliding buffers assume every monitored sensor shares one
        # windowing config; divergent per-sensor configs would let the
        # buffers desynchronise silently, so they are rejected here.
        configs = {name: graph.corpus[name].config for name in self._sensors}
        reference = configs[self._sensors[0]]
        divergent = [name for name, c in configs.items() if c != reference]
        if divergent:
            raise ValueError(
                "monitored sensors carry divergent language configs; the "
                "online sliding buffers require a single config "
                f"(sensor {self._sensors[0]!r} has {reference!r}, but "
                f"{divergent} disagree)"
            )
        self._config = reference
        # Samples are interned to encoder codes at push time, so each
        # buffered sample costs one small int and window scoring never
        # re-encodes strings.  Unseen states land on the unknown code.
        self._encoders = {name: graph.corpus[name].encoder for name in self._sensors}
        self._buffers: dict[str, list[int]] = {name: [] for name in self._sensors}
        self._samples_seen = 0
        self._windows_emitted = 0
        self._trimmed = 0  # samples dropped from the front of the buffers
        self.metrics.gauge("online.valid_pairs").set(len(self._pairs))
        for name in (
            "online.samples_ingested",
            "online.windows_scored",
            "online.pairs_evaluated",
            "online.pairs_broken",
        ):
            self.metrics.counter(name)

    # ------------------------------------------------------------------
    @property
    def window_span(self) -> int:
        """Samples covered by one sentence window."""
        return self._config.samples_per_sentence()

    @property
    def window_stride(self) -> int:
        """Samples between consecutive windows (detection granularity)."""
        return self._config.effective_sentence_stride * self._config.word_stride

    def _next_window_start(self) -> int:
        return self._windows_emitted * self.window_stride

    def push(self, sample: Mapping[str, str]) -> list[WindowScore]:
        """Feed one multivariate sample; return any newly completed windows.

        ``sample`` maps sensor name → categorical state.  Sensors the
        detector does not use are ignored; missing monitored sensors
        raise, since silent gaps would desynchronise the windows.
        """
        missing = [name for name in self._sensors if name not in sample]
        if missing:
            raise KeyError(f"sample is missing monitored sensors: {missing}")
        for name in self._sensors:
            self._buffers[name].append(
                self._encoders[name].table.code_of(str(sample[name]))
            )
        self._samples_seen += 1
        self.metrics.counter("online.samples_ingested").inc()

        emitted: list[WindowScore] = []
        while self._next_window_start() + self.window_span <= self._samples_seen:
            emitted.append(self._score_window())
        return emitted

    def push_chunk(self, chunk: "Mapping[str, Sequence[str]]") -> list[WindowScore]:
        """Feed a block of consecutive samples; return completed windows.

        ``chunk`` maps sensor name → a column of categorical states, as
        yielded by :func:`repro.datasets.io.iter_event_chunks`.  The
        whole block is interned with one vectorised
        :meth:`~repro.core.StateTable.encode` call per sensor, then
        every window that the new samples complete is scored — exactly
        the windows :meth:`push` would have emitted sample by sample.
        """
        missing = [name for name in self._sensors if name not in chunk]
        if missing:
            raise KeyError(f"chunk is missing monitored sensors: {missing}")
        lengths = {name: len(chunk[name]) for name in self._sensors}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"chunk columns are not aligned; lengths={lengths}")
        length = next(iter(lengths.values()))
        if length == 0:
            return []
        for name in self._sensors:
            codes = self._encoders[name].table.encode(
                [str(event) for event in chunk[name]]
            )
            self._buffers[name].extend(codes.tolist())
        self._samples_seen += length
        self.metrics.counter("online.samples_ingested").inc(length)

        emitted: list[WindowScore] = []
        while self._next_window_start() + self.window_span <= self._samples_seen:
            emitted.append(self._score_window())
        return emitted

    def stream_from_reader(
        self, chunks: "Iterable[Mapping[str, Sequence[str]]]"
    ) -> Iterator[WindowScore]:
        """Score a chunked reader's stream without materialising the log.

        ``chunks`` is any iterable of ``{sensor: [state, ...]}`` blocks
        — typically ``iter_event_chunks(path, chunk_size)`` — consumed
        one chunk at a time; windows are yielded as soon as the samples
        completing them arrive, so peak memory is one chunk of strings
        plus the detector's trimmed code buffers, never the full test
        log.
        """
        for chunk in chunks:
            yield from self.push_chunk(chunk)

    def _score_window(self) -> WindowScore:
        watch = Stopwatch()
        start = self._next_window_start()
        stop = start + self.window_span
        sentences: dict[str, tuple] = {}
        for name in self._sensors:
            codes = self._buffers[name][start - self._trimmed : stop - self._trimmed]
            language = self.graph.corpus[name]
            window_sentences = language.sentences_from_codes(codes)
            assert window_sentences, "window span guarantees one sentence"
            sentences[name] = window_sentences[0]

        broken: list[tuple[str, str]] = []
        for pair in self._pairs:
            source, target = pair
            translation = self.graph[pair].model.translate([sentences[source]])[0]
            score = sentence_bleu(translation, sentences[target])
            if score < self._thresholds[pair]:
                broken.append(pair)

        window = WindowScore(
            window_index=self._windows_emitted,
            start_sample=start,
            anomaly_score=len(broken) / len(self._pairs),
            broken_pairs=tuple(broken),
        )
        self._windows_emitted += 1
        self._trim_buffers()
        seconds = watch.elapsed
        self.metrics.counter("online.windows_scored").inc()
        self.metrics.counter("online.pairs_evaluated").inc(len(self._pairs))
        self.metrics.counter("online.pairs_broken").inc(len(broken))
        # The serving hot path: one observation per emitted window.
        self.metrics.histogram("online.window_seconds").observe(seconds)
        logger.debug(
            "window %d (start sample %d): a_t=%.4f, %d/%d pairs broken "
            "in %.4fs",
            window.window_index,
            window.start_sample,
            window.anomaly_score,
            len(broken),
            len(self._pairs),
            seconds,
            extra={
                "window_index": window.window_index,
                "anomaly_score": window.anomaly_score,
                "broken_pairs": len(broken),
                "seconds": seconds,
            },
        )
        return window

    def _trim_buffers(self) -> None:
        """Drop samples no future window can reference (bounded memory)."""
        keep_from = self._next_window_start()
        drop = keep_from - self._trimmed
        if drop <= 0:
            return
        for name in self._sensors:
            del self._buffers[name][:drop]
        self._trimmed = keep_from
