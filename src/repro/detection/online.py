"""Streaming anomaly detection.

Production deployments receive sensor events incrementally, not as a
complete testing log.  :class:`OnlineAnomalyDetector` wraps the batch
Algorithm 2 with a sliding buffer: push one multivariate sample at a
time; whenever enough samples have accumulated to complete a new
sentence window, the window is scored and an
:class:`~repro.detection.anomaly.DetectionResult`-style record is
emitted.

The detection latency therefore equals the sentence span (the paper's
"granularity of detection"): with the plant settings, one score every
20 minutes.

For chunked transports — a tailer draining a file, a consumer pulling
batches off a queue — :meth:`OnlineAnomalyDetector.push_chunk` ingests
a block of samples with one vectorised encode per sensor, and
:meth:`OnlineAnomalyDetector.stream_from_reader` drives a whole
chunked reader (e.g. :func:`repro.datasets.io.iter_event_chunks`)
without ever materialising the full test log.

Lifecycle contract (the streaming service in :mod:`repro.service`
relies on all three):

- **Failure atomicity** — if scoring raises mid-call (e.g. a translate
  error), :meth:`push`/:meth:`push_chunk` roll the detector back to its
  pre-call state (buffers, sample clock, window clock, metrics), so a
  caller may retry the same call without double-scoring a window or
  desynchronising the window clock.
- **Residual visibility** — samples that arrive after the last
  completed window are reported by :attr:`pending_samples` and can be
  explicitly discarded with :meth:`flush` at end-of-stream; they are
  never dropped silently.
- **Snapshot/restore** — :meth:`state_dict` captures the mutable stream
  state (buffers and clocks) as a JSON-serialisable dict and
  :meth:`load_state_dict` restores it onto a detector built from the
  same graph/configuration, so a restarted consumer resumes mid-stream
  without re-scoring or skipping windows.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import DETECTION_RANGE, ScoreRange
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..translation.bleu import sentence_bleu
from .validity import valid_detection_pairs

__all__ = ["OnlineAnomalyDetector", "WindowScore"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class WindowScore:
    """One emitted detection window."""

    window_index: int
    start_sample: int
    anomaly_score: float
    broken_pairs: tuple[tuple[str, str], ...]


class OnlineAnomalyDetector:
    """Incremental Algorithm 2 over a stream of multivariate samples.

    Parameters
    ----------
    graph:
        Trained relationship graph (Algorithm 1 output).
    score_range, threshold, quantile, margin:
        As in :class:`~repro.detection.anomaly.AnomalyDetector`.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` the detector
        records into (samples ingested, windows scored, broken pairs,
        per-window scoring latency — the serving hot path); a private
        registry is created when omitted.

    The valid-pair set is the shared
    :func:`~repro.detection.validity.valid_detection_pairs` definition,
    so the streaming path counts exactly the pairs the batch
    :class:`~repro.detection.anomaly.AnomalyDetector` counts —
    including the dev-BLEU-0.0 exclusion (a never-breakable pair would
    otherwise dilute ``a_t`` relative to batch).
    """

    def __init__(
        self,
        graph: MultivariateRelationshipGraph,
        score_range: ScoreRange = DETECTION_RANGE,
        threshold: str = "dev-quantile",
        quantile: float = 0.05,
        margin: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.graph = graph
        self.score_range = score_range
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._pairs = valid_detection_pairs(graph, score_range)
        if not self._pairs:
            raise ValueError(f"no valid pair models in range {score_range}")
        self._thresholds = {
            pair: graph[pair].threshold(threshold, quantile) - margin
            for pair in self._pairs
        }
        self._sensors = sorted({s for pair in self._pairs for s in pair})
        # The sliding buffers assume every monitored sensor shares one
        # windowing config; divergent per-sensor configs would let the
        # buffers desynchronise silently, so they are rejected here.
        configs = {name: graph.corpus[name].config for name in self._sensors}
        reference = configs[self._sensors[0]]
        divergent = [name for name, c in configs.items() if c != reference]
        if divergent:
            raise ValueError(
                "monitored sensors carry divergent language configs; the "
                "online sliding buffers require a single config "
                f"(sensor {self._sensors[0]!r} has {reference!r}, but "
                f"{divergent} disagree)"
            )
        self._config = reference
        # Samples are interned to encoder codes at push time, so each
        # buffered sample costs one small int and window scoring never
        # re-encodes strings.  Unseen states land on the unknown code.
        self._encoders = {name: graph.corpus[name].encoder for name in self._sensors}
        self._buffers: dict[str, list[int]] = {name: [] for name in self._sensors}
        self._samples_seen = 0
        self._windows_emitted = 0
        self._trimmed = 0  # samples dropped from the front of the buffers
        self.metrics.gauge("online.valid_pairs").set(len(self._pairs))
        for name in (
            "online.samples_ingested",
            "online.windows_scored",
            "online.pairs_evaluated",
            "online.pairs_broken",
            "online.samples_flushed",
        ):
            self.metrics.counter(name)

    # ------------------------------------------------------------------
    @property
    def window_span(self) -> int:
        """Samples covered by one sentence window."""
        return self._config.samples_per_sentence()

    @property
    def window_stride(self) -> int:
        """Samples between consecutive windows (detection granularity)."""
        return self._config.effective_sentence_stride * self._config.word_stride

    @property
    def samples_seen(self) -> int:
        """Samples ingested over the detector's lifetime."""
        return self._samples_seen

    @property
    def windows_emitted(self) -> int:
        """Windows scored over the detector's lifetime."""
        return self._windows_emitted

    @property
    def pending_samples(self) -> int:
        """Buffered samples no emitted window has started from yet.

        This is the residual tail a finite stream leaves behind: samples
        at or after the next window's start that have not completed that
        window.  At end-of-stream these would otherwise sit in the
        buffers invisibly — report them, or discard them explicitly with
        :meth:`flush`.
        """
        return self._samples_seen - self._next_window_start()

    def _next_window_start(self) -> int:
        return self._windows_emitted * self.window_stride

    # ------------------------------------------------------------------
    def push(self, sample: Mapping[str, str]) -> list[WindowScore]:
        """Feed one multivariate sample; return any newly completed windows.

        ``sample`` maps sensor name → categorical state.  Sensors the
        detector does not use are ignored; missing monitored sensors
        raise, since silent gaps would desynchronise the windows.

        Unseen states are interned to the unknown code by the same
        :class:`~repro.core.StateTable` mapping :meth:`push_chunk`'s
        vectorised encode uses, so both ingest paths score never-seen
        states identically.
        """
        missing = [name for name in self._sensors if name not in sample]
        if missing:
            raise KeyError(f"sample is missing monitored sensors: {missing}")
        codes = {
            name: [self._encoders[name].table.code_of(str(sample[name]))]
            for name in self._sensors
        }
        return self._ingest(codes, 1)

    def push_chunk(self, chunk: "Mapping[str, Sequence[str]]") -> list[WindowScore]:
        """Feed a block of consecutive samples; return completed windows.

        ``chunk`` maps sensor name → a column of categorical states, as
        yielded by :func:`repro.datasets.io.iter_event_chunks`.  The
        whole block is interned with one vectorised
        :meth:`~repro.core.StateTable.encode` call per sensor, then
        every window that the new samples complete is scored — exactly
        the windows :meth:`push` would have emitted sample by sample.
        """
        missing = [name for name in self._sensors if name not in chunk]
        if missing:
            raise KeyError(f"chunk is missing monitored sensors: {missing}")
        lengths = {name: len(chunk[name]) for name in self._sensors}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"chunk columns are not aligned; lengths={lengths}")
        length = next(iter(lengths.values()))
        if length == 0:
            return []
        codes = {
            name: self._encoders[name]
            .table.encode([str(event) for event in chunk[name]])
            .tolist()
            for name in self._sensors
        }
        return self._ingest(codes, length)

    def stream_from_reader(
        self, chunks: "Iterable[Mapping[str, Sequence[str]]]"
    ) -> Iterator[WindowScore]:
        """Score a chunked reader's stream without materialising the log.

        ``chunks`` is any iterable of ``{sensor: [state, ...]}`` blocks
        — typically ``iter_event_chunks(path, chunk_size)`` — consumed
        one chunk at a time; windows are yielded as soon as the samples
        completing them arrive, so peak memory is one chunk of strings
        plus the detector's trimmed code buffers, never the full test
        log.  Samples the stream leaves behind without completing a
        window remain visible via :attr:`pending_samples`.
        """
        for chunk in chunks:
            yield from self.push_chunk(chunk)

    def flush(self) -> int:
        """Discard the residual tail that can never complete a window.

        Finite streams end between window boundaries; the trailing
        samples are reported by :attr:`pending_samples` and dropped here
        explicitly (recorded as ``online.samples_flushed``).  The sample
        clock rewinds to the last window boundary, so a detector that
        keeps ingesting after a flush continues with a consistent window
        clock — as if the discarded samples never arrived.  Returns the
        number of samples discarded.
        """
        dropped = self.pending_samples
        if dropped:
            boundary = self._next_window_start()
            for name in self._sensors:
                del self._buffers[name][boundary - self._trimmed :]
            self._samples_seen = boundary
        self.metrics.counter("online.samples_flushed").inc(dropped)
        self.metrics.gauge("online.pending_samples").set(0)
        return dropped

    # ------------------------------------------------------------------
    def _ingest(self, codes: Mapping[str, list[int]], count: int) -> list[WindowScore]:
        """Commit ``count`` interned samples and score completed windows.

        Failure-atomic: appends, the sample clock, the window clock and
        all metrics either commit together after every completed window
        scored cleanly, or roll back together when scoring raises — so a
        retried ``push``/``push_chunk`` neither double-scores a window
        nor skips one.  Trimming is deferred to the commit point, which
        keeps rollback a pure tail truncation (the dropped prefix never
        has to be reconstructed).
        """
        base_length = self._samples_seen - self._trimmed
        clocks = (self._samples_seen, self._windows_emitted)
        emitted: list[WindowScore] = []
        seconds: list[float] = []
        try:
            for name in self._sensors:
                self._buffers[name].extend(codes[name])
            self._samples_seen += count
            while self._next_window_start() + self.window_span <= self._samples_seen:
                emitted.append(self._score_window(seconds))
        except BaseException:
            for name in self._sensors:
                del self._buffers[name][base_length:]
            self._samples_seen, self._windows_emitted = clocks
            raise
        self._trim_buffers()
        self._commit_metrics(count, emitted, seconds)
        return emitted

    def _score_window(self, seconds: list[float]) -> WindowScore:
        """Score the next due window; only the window clock advances.

        Metric commits live in :meth:`_commit_metrics` so a later window
        failing in the same ingest call leaves no half-recorded state.
        """
        watch = Stopwatch()
        start = self._next_window_start()
        stop = start + self.window_span
        sentences: dict[str, tuple] = {}
        for name in self._sensors:
            codes = self._buffers[name][start - self._trimmed : stop - self._trimmed]
            language = self.graph.corpus[name]
            window_sentences = language.sentences_from_codes(codes)
            assert window_sentences, "window span guarantees one sentence"
            sentences[name] = window_sentences[0]

        broken: list[tuple[str, str]] = []
        for pair in self._pairs:
            source, target = pair
            translation = self.graph[pair].model.translate([sentences[source]])[0]
            score = sentence_bleu(translation, sentences[target])
            if score < self._thresholds[pair]:
                broken.append(pair)

        window = WindowScore(
            window_index=self._windows_emitted,
            start_sample=start,
            anomaly_score=len(broken) / len(self._pairs),
            broken_pairs=tuple(broken),
        )
        self._windows_emitted += 1
        elapsed = watch.elapsed
        seconds.append(elapsed)
        logger.debug(
            "window %d (start sample %d): a_t=%.4f, %d/%d pairs broken "
            "in %.4fs",
            window.window_index,
            window.start_sample,
            window.anomaly_score,
            len(broken),
            len(self._pairs),
            elapsed,
            extra={
                "window_index": window.window_index,
                "anomaly_score": window.anomaly_score,
                "broken_pairs": len(broken),
                "seconds": elapsed,
            },
        )
        return window

    def _commit_metrics(
        self, count: int, emitted: list[WindowScore], seconds: list[float]
    ) -> None:
        """Record one successful ingest call's counters in one pass."""
        self.metrics.counter("online.samples_ingested").inc(count)
        if emitted:
            self.metrics.counter("online.windows_scored").inc(len(emitted))
            self.metrics.counter("online.pairs_evaluated").inc(
                len(self._pairs) * len(emitted)
            )
            self.metrics.counter("online.pairs_broken").inc(
                sum(len(window.broken_pairs) for window in emitted)
            )
            window_seconds = self.metrics.histogram("online.window_seconds")
            for elapsed in seconds:
                # The serving hot path: one observation per emitted window.
                window_seconds.observe(elapsed)
        self.metrics.gauge("online.pending_samples").set(self.pending_samples)

    def _trim_buffers(self) -> None:
        """Drop samples no future window can reference (bounded memory)."""
        keep_from = self._next_window_start()
        drop = keep_from - self._trimmed
        if drop <= 0:
            return
        for name in self._sensors:
            del self._buffers[name][:drop]
        self._trimmed = keep_from

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def stream_fingerprint(self) -> str:
        """Digest of everything the stream state depends on.

        Covers the monitored sensors, window geometry, valid pairs and
        break thresholds — a snapshot taken from one detector only loads
        onto another with the same fingerprint, so state can never be
        restored onto a differently-trained or differently-configured
        model without an explicit error.
        """
        payload = {
            "sensors": list(self._sensors),
            "window_span": self.window_span,
            "window_stride": self.window_stride,
            "pairs": [list(pair) for pair in self._pairs],
            "thresholds": [self._thresholds[pair] for pair in self._pairs],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def state_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of the mutable stream state.

        Captures the code buffers and the sample/window/trim clocks plus
        the :meth:`stream_fingerprint`; everything else (models,
        thresholds, valid pairs) is a pure function of the graph and
        construction arguments and is *not* serialised — rebuild the
        detector, then :meth:`load_state_dict` this dict onto it.
        """
        return {
            "fingerprint": self.stream_fingerprint(),
            "buffers": {name: list(self._buffers[name]) for name in self._sensors},
            "samples_seen": self._samples_seen,
            "windows_emitted": self._windows_emitted,
            "trimmed": self._trimmed,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` onto this detector.

        The snapshot's fingerprint must match this detector's
        :meth:`stream_fingerprint` and the buffers must be internally
        consistent with the clocks; a detector resumed this way emits
        exactly the windows the original would have emitted — no window
        is re-scored and none is skipped.
        """
        expected = self.stream_fingerprint()
        recorded = state.get("fingerprint")
        if recorded != expected:
            raise ValueError(
                "snapshot fingerprint mismatch: state was captured from a "
                f"detector with fingerprint {str(recorded)[:12]}…, this "
                f"detector is {expected[:12]}… (different graph, score "
                "range, thresholds or windowing)"
            )
        samples_seen = int(state["samples_seen"])
        windows_emitted = int(state["windows_emitted"])
        trimmed = int(state["trimmed"])
        buffers = state["buffers"]
        missing = [name for name in self._sensors if name not in buffers]
        if missing:
            raise ValueError(f"snapshot is missing sensor buffers: {missing}")
        expected_length = samples_seen - trimmed
        for name in self._sensors:
            if len(buffers[name]) != expected_length:
                raise ValueError(
                    f"snapshot buffer for sensor {name!r} holds "
                    f"{len(buffers[name])} samples, clocks imply "
                    f"{expected_length}"
                )
        if not 0 <= trimmed <= samples_seen:
            raise ValueError(
                f"snapshot clocks are inconsistent: trimmed={trimmed}, "
                f"samples_seen={samples_seen}"
            )
        self._buffers = {name: [int(c) for c in buffers[name]] for name in self._sensors}
        self._samples_seen = samples_seen
        self._windows_emitted = windows_emitted
        self._trimmed = trimmed
        self.metrics.gauge("online.pending_samples").set(self.pending_samples)
