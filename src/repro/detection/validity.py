"""The single definition of Algorithm 2's *valid pair* set.

Both detection paths — batch :class:`~repro.detection.anomaly.
AnomalyDetector` and streaming :class:`~repro.detection.online.
OnlineAnomalyDetector` — must agree on which trained pairs participate
in the broken-pair ratio ``a_t``; any divergence silently skews the
anomaly scores between serving modes (the online path historically
counted dev-BLEU-0.0 pairs the batch path excluded, diluting ``a_t``).
They therefore both call :func:`valid_detection_pairs`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.mvrg import MultivariateRelationshipGraph
    from ..graph.ranges import ScoreRange

__all__ = ["valid_detection_pairs"]


def valid_detection_pairs(
    graph: "MultivariateRelationshipGraph",
    score_range: "ScoreRange",
    sensors: Iterable[str] | None = None,
) -> list[tuple[str, str]]:
    """Directed pairs whose training score lies in ``score_range``.

    A pair whose dev BLEU is exactly ``0.0`` (e.g. an empty or
    degenerate development corpus) carries no relationship signal: its
    threshold is 0 so it can never break, and counting it in Algorithm
    2's broken-pair ratio only dilutes ``a_t``.  Such pairs are never
    valid edges, even when the score range starts at 0.

    ``sensors`` optionally restricts the result to pairs whose both
    endpoints are available (the batch detector passes the test log's
    sensors); pair order follows the graph's relationship order, so the
    batch and online paths enumerate identically.
    """
    available = None if sensors is None else set(sensors)
    pairs: list[tuple[str, str]] = []
    for (source, target), rel in graph.relationships.items():
        if available is not None and (
            source not in available or target not in available
        ):
            continue
        if rel.score == 0.0:
            continue
        if score_range.contains(rel.score):
            pairs.append((source, target))
    return pairs
