"""Per-sensor anomaly attribution.

Section III-C: "the broken relationships can be used to locate sensors
that should be responsible for the corresponding anomaly".  Cluster
diagnosis (:mod:`repro.detection.diagnosis`) works at component
granularity; this module ranks *individual sensors* by how much of
their relationship neighbourhood broke, normalised by how connected
they are — a sensor with 90% of its edges broken is a stronger suspect
than a hub with 10% broken.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .anomaly import DetectionResult

__all__ = ["SensorBlame", "attribute_anomaly"]


@dataclass(frozen=True)
class SensorBlame:
    """One sensor's involvement in a detection window."""

    sensor: str
    broken_edges: int
    total_edges: int

    @property
    def blame(self) -> float:
        """Fraction of the sensor's valid relationships that broke."""
        return self.broken_edges / self.total_edges if self.total_edges else 0.0


def attribute_anomaly(
    result: DetectionResult, window: int, min_edges: int = 1
) -> list[SensorBlame]:
    """Rank sensors by blame at one detection window.

    Parameters
    ----------
    result:
        Algorithm 2 output.
    window:
        Detection window index.
    min_edges:
        Sensors with fewer valid relationships than this are omitted
        (their blame estimate is too noisy to act on).

    Returns
    -------
    Sensors sorted by decreasing blame, ties broken by broken-edge
    count and then name.
    """
    if not 0 <= window < result.num_windows:
        raise IndexError(f"window {window} out of range [0, {result.num_windows})")
    broken = set(result.broken_pairs(window))

    totals: dict[str, int] = {}
    broken_counts: dict[str, int] = {}
    for pair in result.valid_pairs:
        for sensor in pair:
            totals[sensor] = totals.get(sensor, 0) + 1
            if pair in broken:
                broken_counts[sensor] = broken_counts.get(sensor, 0) + 1

    blames = [
        SensorBlame(
            sensor=sensor,
            broken_edges=broken_counts.get(sensor, 0),
            total_edges=total,
        )
        for sensor, total in totals.items()
        if total >= min_edges
    ]
    blames.sort(key=lambda b: (-b.blame, -b.broken_edges, b.sensor))
    return blames
