"""Fault diagnosis via broken relationships (Section III-C, Figure 9).

After an anomaly is detected, the local subgraphs locate the sensors
responsible: edges whose relationship broke are marked, and clusters
with a high fraction of broken edges are flagged as faulty.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..graph.community import connected_component_clusters
from .anomaly import DetectionResult

__all__ = ["FaultDiagnosis", "ClusterDiagnosis", "diagnose"]


@dataclass(frozen=True)
class ClusterDiagnosis:
    """Diagnosis of one sensor cluster at one detection window."""

    sensors: frozenset[str]
    broken_edges: int
    total_edges: int

    @property
    def broken_fraction(self) -> float:
        return self.broken_edges / self.total_edges if self.total_edges else 0.0

    def is_faulty(self, threshold: float = 0.5) -> bool:
        """A cluster is faulty when most of its relationships broke."""
        return self.total_edges > 0 and self.broken_fraction >= threshold


@dataclass
class FaultDiagnosis:
    """Broken-edge annotation of a subgraph at one window."""

    window: int
    broken_edges: list[tuple[str, str]]
    normal_edges: list[tuple[str, str]]
    clusters: list[ClusterDiagnosis]

    @property
    def severity(self) -> float:
        """Fraction of subgraph edges broken — Figure 9's visual density."""
        total = len(self.broken_edges) + len(self.normal_edges)
        return len(self.broken_edges) / total if total else 0.0

    def faulty_clusters(self, threshold: float = 0.5) -> list[ClusterDiagnosis]:
        """Clusters responsible for the anomaly (Figure 9's green circles)."""
        return [cluster for cluster in self.clusters if cluster.is_faulty(threshold)]

    def faulty_sensors(self, threshold: float = 0.5) -> set[str]:
        """Union of sensors in faulty clusters."""
        sensors: set[str] = set()
        for cluster in self.faulty_clusters(threshold):
            sensors |= set(cluster.sensors)
        return sensors


def diagnose(
    result: DetectionResult, subgraph: nx.DiGraph, window: int
) -> FaultDiagnosis:
    """Annotate ``subgraph`` with the alerts of ``result`` at ``window``.

    Parameters
    ----------
    result:
        Output of :class:`~repro.detection.anomaly.AnomalyDetector`.
    subgraph:
        Typically the local subgraph at the detection range; any edge
        subset of the relationship graph works.
    window:
        Detection window index to diagnose.
    """
    if not 0 <= window < result.num_windows:
        raise IndexError(f"window {window} out of range [0, {result.num_windows})")
    broken_set = set(result.broken_pairs(window))
    broken = [edge for edge in subgraph.edges if edge in broken_set]
    normal = [edge for edge in subgraph.edges if edge not in broken_set]

    clusters = []
    for component in connected_component_clusters(subgraph):
        edges = [
            (u, v) for u, v in subgraph.edges if u in component and v in component
        ]
        broken_count = sum(1 for edge in edges if edge in broken_set)
        clusters.append(
            ClusterDiagnosis(
                sensors=frozenset(component),
                broken_edges=broken_count,
                total_edges=len(edges),
            )
        )
    return FaultDiagnosis(
        window=window, broken_edges=broken, normal_edges=normal, clusters=clusters
    )
