"""Disk-failure detection from anomaly-score trajectories (Section IV-D2).

For the HDD case study the paper looks for a *sharp increase* in a
drive's anomaly score right before its failure date: detected drives
show a jump of more than 0.5 while undetected drives' scores stay flat
(Figure 12).  Recall over failed drives is the headline metric
(Table II: ours 58%, OC-SVM 60%, RF 70–80%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "sharp_increases",
    "detects_failure",
    "DriveOutcome",
    "evaluate_drives",
    "DiskEvaluation",
]

#: The paper's jump threshold ("over 0.5 increment").
DEFAULT_JUMP = 0.5


def sharp_increases(
    scores: Sequence[float], jump: float = DEFAULT_JUMP, horizon: int = 1
) -> list[int]:
    """Indices ``t`` where the score rose by more than ``jump`` within
    the last ``horizon`` steps (``score[t] - score[t-k] > jump`` for
    some ``1 <= k <= horizon``).

    The paper inspects daily score curves; with overlapping sentence
    windows (stride < sentence length) a sharp event is smeared over a
    few adjacent windows, so detection pipelines built on overlapping
    windows pass ``horizon > 1`` to recover the single-step semantics.
    """
    array = np.asarray(scores, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("scores must be one-dimensional")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if array.size < 2:
        return []
    hits: list[int] = []
    for t in range(1, array.size):
        lookback = array[max(0, t - horizon) : t]
        if array[t] - lookback.min() > jump:
            hits.append(t)
    return hits


def detects_failure(
    scores: Sequence[float],
    jump: float = DEFAULT_JUMP,
    tail_windows: int | None = None,
    horizon: int = 1,
) -> bool:
    """Whether a trajectory signals an upcoming failure.

    Parameters
    ----------
    scores:
        Per-window anomaly scores for one drive, ending at (or just
        before) the failure date.
    jump:
        Minimum increment.
    tail_windows:
        When given, only jumps inside the last ``tail_windows`` windows
        count ("right before the failure date").
    horizon:
        Lookback for the jump (see :func:`sharp_increases`).
    """
    increases = sharp_increases(scores, jump, horizon)
    if tail_windows is None:
        return bool(increases)
    cutoff = len(scores) - tail_windows
    return any(t >= cutoff for t in increases)


@dataclass(frozen=True)
class DriveOutcome:
    """Per-drive detection outcome."""

    drive: str
    failed: bool
    detected: bool


@dataclass(frozen=True)
class DiskEvaluation:
    """Aggregate detection quality over a drive population."""

    outcomes: tuple[DriveOutcome, ...]

    @property
    def recall(self) -> float:
        """Detected failures / actual failures (Table II's metric)."""
        failed = [o for o in self.outcomes if o.failed]
        if not failed:
            return 0.0
        return sum(o.detected for o in failed) / len(failed)

    @property
    def false_positive_rate(self) -> float:
        """Detections among drives that never failed."""
        healthy = [o for o in self.outcomes if not o.failed]
        if not healthy:
            return 0.0
        return sum(o.detected for o in healthy) / len(healthy)


def evaluate_drives(
    trajectories: Mapping[str, Sequence[float]],
    failed_drives: set[str],
    jump: float = DEFAULT_JUMP,
    tail_windows: int | None = None,
    horizon: int = 1,
) -> DiskEvaluation:
    """Apply the sharp-increase rule to every drive and summarise."""
    outcomes = tuple(
        DriveOutcome(
            drive=drive,
            failed=drive in failed_drives,
            detected=detects_failure(scores, jump, tail_windows, horizon),
        )
        for drive, scores in sorted(trajectories.items())
    )
    return DiskEvaluation(outcomes=outcomes)
