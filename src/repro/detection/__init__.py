"""Anomaly detection, fault diagnosis and disk-failure evaluation."""

from .anomaly import AnomalyDetector, DetectionResult
from .attribution import SensorBlame, attribute_anomaly
from .diagnosis import ClusterDiagnosis, FaultDiagnosis, diagnose
from .drift import DriftReport, PairDrift, assess_drift
from .episodes import AlarmEpisode, extract_episodes
from .evaluation import (
    DayLevelEvaluation,
    EventLevelEvaluation,
    evaluate_days,
    evaluate_events,
    intervals_from_scores,
    merge_intervals,
    threshold_sweep,
)
from .online import OnlineAnomalyDetector, WindowScore
from .validity import valid_detection_pairs
from .disk import (
    DEFAULT_JUMP,
    DiskEvaluation,
    DriveOutcome,
    detects_failure,
    evaluate_drives,
    sharp_increases,
)

__all__ = [
    "AlarmEpisode",
    "AnomalyDetector",
    "ClusterDiagnosis",
    "DEFAULT_JUMP",
    "DayLevelEvaluation",
    "DetectionResult",
    "DiskEvaluation",
    "DriftReport",
    "DriveOutcome",
    "EventLevelEvaluation",
    "FaultDiagnosis",
    "OnlineAnomalyDetector",
    "PairDrift",
    "SensorBlame",
    "WindowScore",
    "assess_drift",
    "attribute_anomaly",
    "detects_failure",
    "diagnose",
    "evaluate_days",
    "evaluate_drives",
    "evaluate_events",
    "extract_episodes",
    "intervals_from_scores",
    "merge_intervals",
    "sharp_increases",
    "threshold_sweep",
    "valid_detection_pairs",
]
