"""Grouping anomalous windows into alarm episodes.

Operators act on *incidents*, not on individual 20-minute windows: a
disturbance that spans two hours should page once, with a start, an
end, a peak and the implicated sensors — not six times.  This module
folds a :class:`~repro.detection.anomaly.DetectionResult` into
:class:`AlarmEpisode` records, merging anomalous windows separated by
short quiet gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .anomaly import DetectionResult
from .attribution import attribute_anomaly

__all__ = ["AlarmEpisode", "extract_episodes"]


@dataclass(frozen=True)
class AlarmEpisode:
    """One contiguous anomaly incident."""

    start_window: int
    end_window: int  # inclusive
    peak_window: int
    peak_score: float
    mean_score: float
    top_sensors: tuple[str, ...]

    @property
    def duration_windows(self) -> int:
        return self.end_window - self.start_window + 1

    def overlaps(self, window: int) -> bool:
        return self.start_window <= window <= self.end_window


def extract_episodes(
    result: DetectionResult,
    threshold: float = 0.5,
    merge_gap: int = 1,
    top_sensors: int = 3,
) -> list[AlarmEpisode]:
    """Fold anomalous windows into episodes.

    Parameters
    ----------
    result:
        Algorithm 2 output.
    threshold:
        Windows with ``a_t >= threshold`` are anomalous.
    merge_gap:
        Anomalous windows separated by at most this many quiet windows
        belong to the same episode.
    top_sensors:
        How many highest-blame sensors to attach per episode (from the
        peak window's attribution).
    """
    if merge_gap < 0:
        raise ValueError("merge_gap must be >= 0")
    flagged = result.anomalous_windows(threshold)
    if not flagged:
        return []

    groups: list[list[int]] = [[flagged[0]]]
    for window in flagged[1:]:
        if window - groups[-1][-1] <= merge_gap + 1:
            groups[-1].append(window)
        else:
            groups.append([window])

    episodes = []
    for group in groups:
        start, end = group[0], group[-1]
        span = result.anomaly_scores[start : end + 1]
        peak_offset = int(np.argmax(span))
        peak_window = start + peak_offset
        blames = attribute_anomaly(result, peak_window)
        episodes.append(
            AlarmEpisode(
                start_window=start,
                end_window=end,
                peak_window=peak_window,
                peak_score=float(span[peak_offset]),
                mean_score=float(span.mean()),
                top_sensors=tuple(b.sensor for b in blames[:top_sensors]),
            )
        )
    return episodes
