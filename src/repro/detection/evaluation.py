"""Day-level evaluation of anomaly-score timelines.

The paper evaluates the plant case study visually (Figure 8): anomaly
days spike, normal days stay low, and spikes shortly *before* a true
anomaly count as early warnings rather than false positives.  This
module makes that reading quantitative: day-level alarms from a score
threshold, precision/recall with an early-warning window, and a
threshold sweep for picking an operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["DayLevelEvaluation", "evaluate_days", "threshold_sweep"]


@dataclass(frozen=True)
class DayLevelEvaluation:
    """Outcome of thresholding a per-day score timeline."""

    threshold: float
    detected_days: tuple[int, ...]
    missed_days: tuple[int, ...]
    early_warning_days: tuple[int, ...]
    false_alarm_days: tuple[int, ...]

    @property
    def recall(self) -> float:
        total = len(self.detected_days) + len(self.missed_days)
        return len(self.detected_days) / total if total else 0.0

    @property
    def precision(self) -> float:
        """Alarms that were real anomalies or sanctioned early warnings."""
        alarms = (
            len(self.detected_days)
            + len(self.early_warning_days)
            + len(self.false_alarm_days)
        )
        useful = len(self.detected_days) + len(self.early_warning_days)
        return useful / alarms if alarms else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_days(
    day_scores: Mapping[int, float],
    anomaly_days: Sequence[int],
    threshold: float = 0.5,
    early_warning_window: int = 2,
) -> DayLevelEvaluation:
    """Threshold per-day scores into alarms and classify each alarm.

    Parameters
    ----------
    day_scores:
        1-indexed day → score (typically the day's max anomaly score).
    anomaly_days:
        Ground-truth anomalous days.
    threshold:
        Alarm threshold on the score.
    early_warning_window:
        An alarm up to this many days *before* a true anomaly counts as
        an early warning (the paper's days 19/20 before the 21st).
    """
    anomaly_set = set(anomaly_days)
    detected: list[int] = []
    missed: list[int] = []
    early: list[int] = []
    false_alarms: list[int] = []

    for day in sorted(anomaly_set):
        if day_scores.get(day, 0.0) >= threshold:
            detected.append(day)
        else:
            missed.append(day)

    for day, score in sorted(day_scores.items()):
        if day in anomaly_set or score < threshold:
            continue
        if any(
            0 < anomaly - day <= early_warning_window for anomaly in anomaly_set
        ):
            early.append(day)
        else:
            false_alarms.append(day)

    return DayLevelEvaluation(
        threshold=threshold,
        detected_days=tuple(detected),
        missed_days=tuple(missed),
        early_warning_days=tuple(early),
        false_alarm_days=tuple(false_alarms),
    )


def threshold_sweep(
    day_scores: Mapping[int, float],
    anomaly_days: Sequence[int],
    thresholds: Sequence[float] | None = None,
    early_warning_window: int = 2,
) -> list[DayLevelEvaluation]:
    """Evaluate a grid of thresholds (an operating-point curve).

    Defaults to 21 evenly spaced thresholds over [0, 1].
    """
    if thresholds is None:
        thresholds = np.linspace(0.0, 1.0, 21)
    return [
        evaluate_days(day_scores, anomaly_days, float(t), early_warning_window)
        for t in thresholds
    ]
