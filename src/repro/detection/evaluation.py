"""Day- and event-level evaluation of anomaly-score timelines.

The paper evaluates the plant case study visually (Figure 8): anomaly
days spike, normal days stay low, and spikes shortly *before* a true
anomaly count as early warnings rather than false positives.  This
module makes that reading quantitative on two granularities:

- **day level** (:func:`evaluate_days`) — the paper's framing:
  day-level alarms from a score threshold, precision/recall with an
  early-warning window, and a threshold sweep for picking an
  operating point;
- **event level** (:func:`evaluate_events`) — the scenario-suite
  framing: ground truth and detections are ``(start, stop)`` intervals
  on a shared sample clock; a true event counts as detected when any
  predicted episode overlaps it (even partially), and a predicted
  episode counts as correct when it overlaps any true event.  This is
  the standard range-based matching for labeled anomaly *episodes*
  (one incident = one event, however many windows it spans) and is
  windowing-agnostic, so detectors with different strides are
  comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "DayLevelEvaluation",
    "EventLevelEvaluation",
    "evaluate_days",
    "evaluate_events",
    "intervals_from_scores",
    "merge_intervals",
    "threshold_sweep",
]


@dataclass(frozen=True)
class DayLevelEvaluation:
    """Outcome of thresholding a per-day score timeline."""

    threshold: float
    detected_days: tuple[int, ...]
    missed_days: tuple[int, ...]
    early_warning_days: tuple[int, ...]
    false_alarm_days: tuple[int, ...]

    @property
    def recall(self) -> float:
        total = len(self.detected_days) + len(self.missed_days)
        return len(self.detected_days) / total if total else 0.0

    @property
    def precision(self) -> float:
        """Alarms that were real anomalies or sanctioned early warnings."""
        alarms = (
            len(self.detected_days)
            + len(self.early_warning_days)
            + len(self.false_alarm_days)
        )
        useful = len(self.detected_days) + len(self.early_warning_days)
        return useful / alarms if alarms else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_days(
    day_scores: Mapping[int, float],
    anomaly_days: Sequence[int],
    threshold: float = 0.5,
    early_warning_window: int = 2,
) -> DayLevelEvaluation:
    """Threshold per-day scores into alarms and classify each alarm.

    Parameters
    ----------
    day_scores:
        1-indexed day → score (typically the day's max anomaly score).
    anomaly_days:
        Ground-truth anomalous days.
    threshold:
        Alarm threshold on the score.
    early_warning_window:
        An alarm up to this many days *before* a true anomaly counts as
        an early warning (the paper's days 19/20 before the 21st).
    """
    anomaly_set = set(anomaly_days)
    detected: list[int] = []
    missed: list[int] = []
    early: list[int] = []
    false_alarms: list[int] = []

    for day in sorted(anomaly_set):
        if day_scores.get(day, 0.0) >= threshold:
            detected.append(day)
        else:
            missed.append(day)

    for day, score in sorted(day_scores.items()):
        if day in anomaly_set or score < threshold:
            continue
        if any(
            0 < anomaly - day <= early_warning_window for anomaly in anomaly_set
        ):
            early.append(day)
        else:
            false_alarms.append(day)

    return DayLevelEvaluation(
        threshold=threshold,
        detected_days=tuple(detected),
        missed_days=tuple(missed),
        early_warning_days=tuple(early),
        false_alarm_days=tuple(false_alarms),
    )


def _check_intervals(
    intervals: Iterable[tuple[int, int]], label: str
) -> list[tuple[int, int]]:
    checked = [(int(start), int(stop)) for start, stop in intervals]
    for start, stop in checked:
        if start >= stop:
            raise ValueError(
                f"{label} interval [{start}, {stop}) is empty or inverted; "
                "intervals must satisfy start < stop"
            )
    return sorted(checked)


def merge_intervals(
    intervals: Iterable[tuple[int, int]], gap: int = 0
) -> list[tuple[int, int]]:
    """Merge overlapping/near intervals into sorted disjoint spans.

    Intervals separated by at most ``gap`` samples fold together —
    detection windows of one incident become one episode.
    """
    if gap < 0:
        raise ValueError("gap must be >= 0")
    merged: list[tuple[int, int]] = []
    for start, stop in _check_intervals(intervals, "input"):
        if merged and start <= merged[-1][1] + gap:
            merged[-1] = (merged[-1][0], max(merged[-1][1], stop))
        else:
            merged.append((start, stop))
    return merged


def intervals_from_scores(
    scores: Sequence[float],
    threshold: float,
    start: int = 0,
    stride: int = 1,
    span: int = 1,
    merge_gap: int = 0,
) -> list[tuple[int, int]]:
    """Threshold windowed scores into detected sample intervals.

    Window ``i`` covers samples ``[start + i*stride, start + i*stride
    + span)``; windows scoring at or above ``threshold`` are flagged
    and merged (within ``merge_gap`` samples) into episodes.  This maps
    any detector's window grid onto the shared sample clock that
    :func:`evaluate_events` compares on.
    """
    if stride <= 0 or span <= 0:
        raise ValueError("stride and span must be positive")
    flagged = [
        (start + index * stride, start + index * stride + span)
        for index, score in enumerate(scores)
        if float(score) >= threshold
    ]
    return merge_intervals(flagged, gap=merge_gap)


@dataclass(frozen=True)
class EventLevelEvaluation:
    """Outcome of matching predicted episodes against true events.

    Matching is by interval overlap: partial overlap counts.  With *no*
    true events, recall is vacuously 1.0 (nothing to find); with no
    predicted episodes, precision is vacuously 1.0 (nothing claimed).
    """

    true_events: tuple[tuple[int, int], ...]
    predicted_episodes: tuple[tuple[int, int], ...]
    detected_events: tuple[tuple[int, int], ...]
    missed_events: tuple[tuple[int, int], ...]
    matched_episodes: tuple[tuple[int, int], ...]
    false_episodes: tuple[tuple[int, int], ...]

    @property
    def recall(self) -> float:
        """Fraction of true events overlapped by some episode."""
        if not self.true_events:
            return 1.0
        return len(self.detected_events) / len(self.true_events)

    @property
    def precision(self) -> float:
        """Fraction of predicted episodes overlapping some true event."""
        if not self.predicted_episodes:
            return 1.0
        return len(self.matched_episodes) / len(self.predicted_episodes)

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def to_dict(self) -> dict:
        """JSON-ready metric summary (used by the scenario benchmark)."""
        return {
            "true_events": len(self.true_events),
            "predicted_episodes": len(self.predicted_episodes),
            "detected_events": len(self.detected_events),
            "missed_events": len(self.missed_events),
            "false_episodes": len(self.false_episodes),
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def evaluate_events(
    predicted: Iterable[tuple[int, int]],
    truth: Iterable[tuple[int, int]],
) -> EventLevelEvaluation:
    """Event-level precision/recall on ``(start, stop)`` intervals.

    Both interval sets live on one sample clock (half-open, start <
    stop; zero-length intervals are rejected).  A true event is
    *detected* when at least one predicted episode overlaps it — even
    partially — and a predicted episode is *matched* when it overlaps
    at least one true event; episodes touching no true event are false
    alarms.  One long episode may detect several events and one event
    may be covered by several episodes; neither is double-counted.
    """
    predicted_list = _check_intervals(predicted, "predicted")
    truth_list = _check_intervals(truth, "truth")

    def overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    detected = [
        event for event in truth_list
        if any(overlaps(event, episode) for episode in predicted_list)
    ]
    matched = [
        episode for episode in predicted_list
        if any(overlaps(episode, event) for event in truth_list)
    ]
    return EventLevelEvaluation(
        true_events=tuple(truth_list),
        predicted_episodes=tuple(predicted_list),
        detected_events=tuple(detected),
        missed_events=tuple(e for e in truth_list if e not in detected),
        matched_episodes=tuple(matched),
        false_episodes=tuple(e for e in predicted_list if e not in matched),
    )


def threshold_sweep(
    day_scores: Mapping[int, float],
    anomaly_days: Sequence[int],
    thresholds: Sequence[float] | None = None,
    early_warning_window: int = 2,
) -> list[DayLevelEvaluation]:
    """Evaluate a grid of thresholds (an operating-point curve).

    Defaults to 21 evenly spaced thresholds over [0, 1].
    """
    if thresholds is None:
        thresholds = np.linspace(0.0, 1.0, 21)
    return [
        evaluate_days(day_scores, anomaly_days, float(t), early_warning_window)
        for t in thresholds
    ]
