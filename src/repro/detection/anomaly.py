"""Online anomaly detection (Algorithm 2).

Given the trained relationship graph and a testing log, every valid
pair model re-translates the test sentences; window ``t``'s test BLEU
``f(i, j)`` is compared to the training score ``s(i, j)``.  A pair is
*broken* when ``f < s``; the anomaly score ``a_t`` is the fraction of
valid pairs broken at ``t`` and ``W_t`` records which pairs broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..graph.mvrg import MultivariateRelationshipGraph
from ..graph.ranges import DETECTION_RANGE, ScoreRange
from ..lang.events import MultivariateEventLog
from ..obs import MetricsRegistry, Stopwatch, get_logger
from ..translation.bleu import sentence_bleu
from .validity import valid_detection_pairs

__all__ = ["AnomalyDetector", "DetectionResult", "SENTENCE_CACHE_KEY"]

logger = get_logger(__name__)

#: Reserved ``sentence_cache`` key holding the fingerprint of the test
#: log the cached sentences were generated from.
SENTENCE_CACHE_KEY = "__log_fingerprint__"


@dataclass
class DetectionResult:
    """Output of Algorithm 2 over ``L`` detection windows.

    Attributes
    ----------
    valid_pairs:
        The directed pairs whose training BLEU fell in the detector's
        score range (``p_t`` of Algorithm 2 is their count).
    anomaly_scores:
        ``a_t`` per window, each in ``[0, 1]``.
    alerts:
        Boolean matrix ``(L, P)``: ``W_t`` — which pairs broke when.
    test_scores:
        Test BLEU ``f(i, j)`` per window and pair, shape ``(L, P)``.
    training_scores:
        ``s(i, j)`` per valid pair, shape ``(P,)``.
    """

    valid_pairs: list[tuple[str, str]]
    anomaly_scores: np.ndarray
    alerts: np.ndarray
    test_scores: np.ndarray
    training_scores: np.ndarray

    @property
    def num_windows(self) -> int:
        return int(self.anomaly_scores.shape[0])

    @property
    def num_valid_pairs(self) -> int:
        return len(self.valid_pairs)

    def broken_pairs(self, window: int) -> list[tuple[str, str]]:
        """Pairs whose relationship is broken at ``window``."""
        flags = self.alerts[window]
        return [pair for pair, broken in zip(self.valid_pairs, flags) if broken]

    def anomalous_windows(self, threshold: float = 0.5) -> list[int]:
        """Windows whose anomaly score meets ``threshold``."""
        return [int(t) for t in np.nonzero(self.anomaly_scores >= threshold)[0]]

    def max_score(self) -> float:
        return float(self.anomaly_scores.max()) if self.num_windows else 0.0


class AnomalyDetector:
    """Applies Algorithm 2 using models from a relationship graph.

    Parameters
    ----------
    graph:
        Trained :class:`MultivariateRelationshipGraph`.
    score_range:
        Validity range for models (the paper finds ``[80, 90)`` best).
    margin:
        Optional slack: a pair breaks when ``f < T - margin``.  The
        paper uses ``margin=0``.
    threshold:
        How the break threshold ``T(i, j)`` is derived from training:
        ``"train"`` (paper-literal, ``T = s(i, j)``), ``"dev-min"`` or
        ``"dev-quantile"`` (robust variants based on the per-sentence
        development-set BLEU distribution; see
        :meth:`repro.graph.PairwiseRelationship.threshold`).
    quantile:
        The quantile used by ``"dev-quantile"``.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` the detector
        records into (windows scored, pairs evaluated, broken-pair
        counts, scoring latency); a private registry is created when
        omitted.  Always available as :attr:`metrics`.
    """

    def __init__(
        self,
        graph: MultivariateRelationshipGraph,
        score_range: ScoreRange = DETECTION_RANGE,
        margin: float = 0.0,
        threshold: str = "dev-quantile",
        quantile: float = 0.05,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if threshold not in ("train", "dev-min", "dev-quantile"):
            raise ValueError(f"unknown threshold strategy {threshold!r}")
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        self.graph = graph
        self.score_range = score_range
        self.margin = margin
        self.threshold = threshold
        self.quantile = quantile
        if metrics is not None:
            self._metrics = metrics

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry detection metrics land in (created lazily, so
        detectors unpickled from pre-observability saves work too)."""
        registry = self.__dict__.get("_metrics")
        if registry is None:
            registry = MetricsRegistry()
            self._metrics = registry
        return registry

    def valid_pairs(self, sensors: Sequence[str] | None = None) -> list[tuple[str, str]]:
        """Directed pairs whose training score lies in the range.

        Delegates to :func:`~repro.detection.validity.valid_detection_pairs`
        — the shared definition both the batch and online detectors use,
        including the dev-BLEU-0.0 exclusion.
        """
        return valid_detection_pairs(self.graph, self.score_range, sensors)

    def detect(
        self,
        test_log: MultivariateEventLog,
        sentence_cache: dict[str, list] | None = None,
    ) -> DetectionResult:
        """Run Algorithm 2 over a testing log.

        Sentences are generated with the *training* languages in their
        native representation — packed integer words on the columnar
        path, character strings on the legacy path — and fitted
        encoders handle unseen states via the unknown code/character,
        so window ``t`` is time-aligned across sensors.  ``sentence_cache``
        (sensor → sentence list) lets callers share the encrypted test
        corpus across detectors for the same log: missing sensors are
        encrypted into the cache, present ones are reused.  The cache is
        stamped with the test log's content fingerprint (under
        :data:`SENTENCE_CACHE_KEY`); passing a cache built from a
        *different* log raises ``ValueError`` instead of silently
        scoring stale windows.
        """
        from ..pipeline.artifacts import fingerprint_log

        watch = Stopwatch()
        pairs = self.valid_pairs(test_log.sensors)
        if not pairs:
            raise ValueError(
                f"no valid pair models in range {self.score_range}; "
                "choose a different score range or retrain"
            )
        corpus = self.graph.corpus
        involved = sorted({sensor for pair in pairs for sensor in pair})
        sentences = {} if sentence_cache is None else sentence_cache
        digest = fingerprint_log(test_log)
        cached_digest = sentences.get(SENTENCE_CACHE_KEY)
        if cached_digest is None:
            sentences[SENTENCE_CACHE_KEY] = digest
        elif cached_digest != digest:
            raise ValueError(
                "sentence_cache was built from a different test log "
                f"(fingerprint {cached_digest[:12]}… != {digest[:12]}…); "
                "reusing it would silently score stale windows — pass a "
                "fresh cache dict per test log"
            )
        for name in involved:
            if name not in sentences:
                sentences[name] = corpus[name].sentences_for(test_log[name])
        window_count = min(len(sentences[name]) for name in involved)
        if window_count == 0:
            raise ValueError(
                "testing log is too short to produce a single sentence window"
            )

        metrics = self.metrics
        test_scores = np.zeros((window_count, len(pairs)))
        training_scores = np.zeros(len(pairs))
        thresholds = np.zeros(len(pairs))
        pair_seconds = metrics.histogram("detect.pair_seconds")
        for column, (source, target) in enumerate(pairs):
            with pair_seconds.time():
                rel = self.graph[(source, target)]
                training_scores[column] = rel.score
                thresholds[column] = rel.threshold(self.threshold, self.quantile)
                translations = rel.model.translate(sentences[source][:window_count])
                for window in range(window_count):
                    test_scores[window, column] = sentence_bleu(
                        translations[window], sentences[target][window]
                    )

        alerts = test_scores < (thresholds[None, :] - self.margin)
        anomaly_scores = alerts.mean(axis=1)

        seconds = watch.elapsed
        metrics.counter("detect.runs").inc()
        metrics.counter("detect.windows_scored").inc(window_count)
        metrics.counter("detect.pairs_evaluated").inc(len(pairs))
        metrics.counter("detect.pair_windows_broken").inc(int(alerts.sum()))
        metrics.gauge("detect.valid_pairs").set(len(pairs))
        metrics.gauge("detect.broken_pair_rate").set(float(alerts.mean()))
        metrics.histogram("detect.seconds").observe(seconds)
        metrics.gauge("detect.seconds_per_window").set(seconds / window_count)
        logger.debug(
            "scored %d windows over %d valid pairs in %.3fs "
            "(broken-pair rate %.4f)",
            window_count,
            len(pairs),
            seconds,
            float(alerts.mean()),
            extra={
                "windows": window_count,
                "valid_pairs": len(pairs),
                "seconds": seconds,
                "broken_pair_rate": float(alerts.mean()),
            },
        )
        return DetectionResult(
            valid_pairs=pairs,
            anomaly_scores=anomaly_scores,
            alerts=alerts,
            test_scores=test_scores,
            training_scores=training_scores,
        )
