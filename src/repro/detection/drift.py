"""Model-drift monitoring for deployed relationship graphs.

A relationship graph trained on last month's normal operation slowly
goes stale as the plant's regime shifts (new setpoints, seasonal duty
cycles).  Stale models inflate the anomaly score on *every* window —
indistinguishable from a real anomaly unless tracked.  This module
compares the live distribution of per-window pair BLEU scores against
the development-set distribution with a two-sample Kolmogorov–Smirnov
test: a persistent, significant shift across many pairs signals that
the graph needs retraining rather than that the plant is failing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..graph.mvrg import MultivariateRelationshipGraph
from .anomaly import DetectionResult

__all__ = ["PairDrift", "DriftReport", "assess_drift"]


@dataclass(frozen=True)
class PairDrift:
    """Drift statistics for one directed pair."""

    pair: tuple[str, str]
    ks_statistic: float
    p_value: float
    dev_median: float
    live_median: float

    def is_drifted(self, alpha: float = 0.01) -> bool:
        return self.p_value < alpha


@dataclass(frozen=True)
class DriftReport:
    """Aggregate drift assessment over all monitored pairs."""

    pairs: tuple[PairDrift, ...]
    alpha: float

    @property
    def drifted_pairs(self) -> tuple[PairDrift, ...]:
        return tuple(pair for pair in self.pairs if pair.is_drifted(self.alpha))

    @property
    def drift_fraction(self) -> float:
        return len(self.drifted_pairs) / len(self.pairs) if self.pairs else 0.0

    def needs_retraining(self, fraction_threshold: float = 0.5) -> bool:
        """Retrain when a majority of pairs shifted — a regime change,
        not a localized anomaly (anomalies break a *subset* of pairs
        for a *bounded time*; drift shifts everything persistently)."""
        return self.drift_fraction >= fraction_threshold


def assess_drift(
    graph: MultivariateRelationshipGraph,
    result: DetectionResult,
    alpha: float = 0.01,
) -> DriftReport:
    """Compare live test BLEU distributions against dev distributions.

    Parameters
    ----------
    graph:
        The trained graph (holds per-pair dev sentence BLEU).
    result:
        A detection run over a recent window of live data
        (``result.test_scores`` holds per-window pair BLEU).
    alpha:
        KS-test significance level per pair.
    """
    pairs: list[PairDrift] = []
    for column, pair in enumerate(result.valid_pairs):
        relationship = graph[pair]
        dev_scores = relationship.dev_sentence_scores
        if dev_scores is None or len(dev_scores) < 2:
            continue
        live_scores = result.test_scores[:, column]
        if len(live_scores) < 2:
            continue
        ks = stats.ks_2samp(dev_scores, live_scores)
        pairs.append(
            PairDrift(
                pair=pair,
                ks_statistic=float(ks.statistic),
                p_value=float(ks.pvalue),
                dev_median=float(np.median(dev_scores)),
                live_median=float(np.median(live_scores)),
            )
        )
    return DriftReport(pairs=tuple(pairs), alpha=alpha)
