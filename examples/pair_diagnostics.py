#!/usr/bin/env python
"""Explaining relationship-graph edges.

Section III-C of the paper investigates *why* the strongest-BLEU
subgraph fails for detection and finds trivially translatable target
languages ("aaaaaaaa" words).  This example automates that
investigation: for a small system containing a genuinely related pair,
an unrelated pair and a near-constant sensor, it prints the full
diagnostic reading of each edge — n-gram precisions, target-language
entropy, asymmetry and a verdict.

Run:  python examples/pair_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.translation import diagnose_pair


def build_system(total: int = 600) -> MultivariateEventLog:
    rng = np.random.default_rng(2)
    pump = [("RUN" if (t // 6) % 2 == 0 else "IDLE") for t in range(total)]
    valve = ["closed"] + ["open" if s == "RUN" else "closed" for s in pump[:-1]]
    alarm = ["ok"] * total  # near-constant: one spurious event
    alarm[total // 2] = "fault"
    noise = [str(rng.integers(0, 2)) for _ in range(total)]
    return MultivariateEventLog.from_mapping(
        {"pump": pump, "valve": valve, "alarm": alarm, "noise": noise}
    )


def main() -> None:
    log = build_system()
    graph = MultivariateRelationshipGraph.build(
        log.slice(0, 400),
        log.slice(400, 600),
        config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",
    )

    print("Edge scores:")
    for (source, target), score in sorted(graph.scores().items()):
        print(f"  {source} -> {target}: {score:5.1f}")

    print("\nDiagnostics:")
    for source, target in (
        ("pump", "valve"),   # real physical relationship
        ("pump", "alarm"),   # trivially translatable target
        ("pump", "noise"),   # no relationship
    ):
        print()
        print(diagnose_pair(graph, source, target).summary())


if __name__ == "__main__":
    main()
