#!/usr/bin/env python
"""Knowledge discovery: recovering system structure from sequences.

The paper's Section III-B shows that the relationship graph's local
subgraphs recover the plant's component structure without any domain
knowledge — useful when sensor names are anonymised.  This example
builds a plant whose component layout is known, hides it from the
framework, and measures how well the discovered clusters match the
ground truth, comparing connected components with the from-scratch
Walktrap community detection (Pons & Latapy, the paper's citation [33]).

Run:  python examples/knowledge_discovery.py
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.graph import ScoreRange
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy


def pair_agreement(clusters: list[set[str]], component_of: dict[str, str]) -> tuple[float, int]:
    """Fraction of co-clustered sensor pairs sharing a true component."""
    same = 0
    total = 0
    for cluster in clusters:
        for a, b in itertools.combinations(sorted(cluster), 2):
            total += 1
            same += component_of[a] == component_of[b]
    return (same / total if total else 0.0), total


def main() -> None:
    dataset = generate_plant_dataset(PlantConfig.small(seed=21))
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    framework = study.framework

    print("Ground-truth components (hidden from the framework):")
    by_component: dict[str, list[str]] = {}
    for sensor, component in dataset.component_of.items():
        by_component.setdefault(component, []).append(sensor)
    for component, sensors in sorted(by_component.items()):
        print(f"  {component}: {sorted(sensors)}")

    print("\nPopular sensors removed before clustering:", framework.popular_sensors())

    strong = ScoreRange(70, 100, inclusive_high=True)
    for method in ("components", "walktrap"):
        clusters = [c for c in framework.clusters(strong, method=method) if len(c) >= 2]
        agreement, pairs = pair_agreement(clusters, dataset.component_of)
        print(f"\nDiscovered clusters ({method}):")
        for cluster in clusters:
            components = {dataset.component_of[s] for s in cluster}
            print(f"  {sorted(cluster)}  <- true components: {sorted(components)}")
        print(
            f"  co-clustered pair agreement: {agreement:.0%} "
            f"over {pairs} sensor pairs"
        )


if __name__ == "__main__":
    main()
