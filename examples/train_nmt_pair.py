#!/usr/bin/env python
"""Training the paper's NMT model on one sensor pair, step by step.

A close-up of Algorithm 1's inner loop using the faithful seq2seq
engine: build the two sensor languages, train the 2-layer LSTM +
attention translator with early stopping on development BLEU, then
compare greedy and beam-search decoding on held-out sentences.

Run:  python examples/train_nmt_pair.py
"""

from __future__ import annotations

import numpy as np

from repro.lang import LanguageConfig, MultiLanguageCorpus, MultivariateEventLog, ParallelCorpus
from repro.translation import (
    NMTConfig,
    beam_search_translate,
    corpus_bleu,
    sentence_bleu,
    train_with_early_stopping,
)


def build_log(total: int, seed: int = 0) -> MultivariateEventLog:
    """A valve whose state follows the pump with a 2-sample delay."""
    rng = np.random.default_rng(seed)
    pump = [("RUN" if (t // 7) % 2 == 0 else "IDLE") for t in range(total)]
    valve = ["closed", "closed"] + ["open" if s == "RUN" else "closed" for s in pump[:-2]]
    return MultivariateEventLog.from_mapping({"pump": pump, "valve": valve})


def main() -> None:
    log = build_log(900)
    config = LanguageConfig(word_size=5, word_stride=1, sentence_length=6, sentence_stride=6)
    corpus = MultiLanguageCorpus.fit(log.slice(0, 600), config)

    train_pc = corpus.parallel("pump", "valve")
    dev_sentences_src = corpus["pump"].sentences_for(log.slice(600, 900)["pump"])
    dev_sentences_tgt = corpus["valve"].sentences_for(log.slice(600, 900)["valve"])
    dev_pc = ParallelCorpus.from_sentences(
        "pump", "valve", dev_sentences_src, dev_sentences_tgt
    )
    print(
        f"Languages: pump vocabulary {corpus['pump'].vocabulary_size}, "
        f"valve vocabulary {corpus['valve'].vocabulary_size}; "
        f"{len(train_pc)} training / {len(dev_pc)} development sentence pairs"
    )

    nmt = NMTConfig(
        embedding_size=16,
        hidden_size=24,
        num_layers=2,
        dropout=0.1,
        training_steps=600,
        batch_size=16,
        learning_rate=5e-3,
        seed=0,
    )
    print("\nTraining seq2seq with early stopping on dev BLEU...")
    model, record = train_with_early_stopping(
        train_pc, dev_pc, nmt, eval_every=100, patience=2
    )
    for steps, bleu in record.eval_history:
        print(f"  after {steps:4d} steps: dev BLEU {bleu:5.1f}")
    print(
        f"  stopped {'early' if record.stopped_early else 'at budget'}; "
        f"train {record.train_seconds:.1f}s, final dev BLEU {record.dev_bleu:.1f}"
    )

    print("\nGreedy vs beam-search decoding on 3 development sentences:")
    for source, target in dev_pc.pairs[:3]:
        greedy = model.translate([source])[0]
        beam = beam_search_translate(model, source, beam_width=4)
        print(f"  source    {' '.join(source)}")
        print(f"  reference {' '.join(target)}")
        print(f"  greedy    {' '.join(greedy)}   (BLEU {sentence_bleu(greedy, target):.0f})")
        print(f"  beam      {' '.join(beam)}   (BLEU {sentence_bleu(beam, target):.0f})")

    translations = model.translate(dev_pc.source_sentences)
    print(
        f"\nCorpus BLEU on development set: "
        f"{corpus_bleu(translations, dev_pc.target_sentences, smooth=True):.1f} "
        "— this number is the edge weight s(pump, valve) in the relationship graph."
    )


if __name__ == "__main__":
    main()
