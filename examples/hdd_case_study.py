#!/usr/bin/env python
"""Case Study II: hard-disk-drive failures (Section IV of the paper).

Generates a Backblaze-style SMART dataset (public-data substitute),
discretizes the 16 framework features with the Figure 10 schemes,
builds the relationship graph on pooled healthy months, and then:

- ranks features by in-degree (Figure 11a / Table III);
- compares against the Random Forest and one-class SVM baselines
  (Table II), including the RF feature-importance overlap (Figure 11b);
- evaluates disk-failure detection with the sharp-increase rule
  (Figure 12), reporting recall.

Run:  python examples/hdd_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.evaluation import evaluate_ocsvm, evaluate_random_forest
from repro.datasets import BackblazeConfig, generate_backblaze_dataset
from repro.datasets.smart import KEY_FAILURE_ATTRIBUTES, SMART_ATTRIBUTES
from repro.pipeline import HDDCaseStudy
from repro.report import ascii_table


def main() -> None:
    dataset = generate_backblaze_dataset(BackblazeConfig(num_drives=24, days=360))
    print(
        f"Drive population: {len(dataset)} drives, "
        f"{len(dataset.failed_serials)} failures"
    )

    print("\nFitting the framework on each drive's healthy months...")
    study = HDDCaseStudy(dataset=dataset).fit()

    print("\nFigure 11a / Table III — features ranked by in-degree at [80, 90):")
    descriptions = {a.column: a.name for a in SMART_ATTRIBUTES}
    rows = [
        {
            "feature": name,
            "name": descriptions.get(name, ""),
            "in-degree": in_degree,
            "out-degree": out_degree,
        }
        for name, in_degree, out_degree in study.feature_ranking(top=5)
    ]
    print(ascii_table(rows))
    key = {f"smart_{i}" for i in KEY_FAILURE_ATTRIBUTES}
    overlap = key & {row["feature"] for row in rows}
    print(f"Overlap with the paper's Table III features: {sorted(overlap)}")

    print("\nFigure 12 — anomaly-score trajectories before failure:")
    trajectories = study.trajectories()
    evaluation = study.evaluate()
    detected = {o.drive for o in evaluation.outcomes if o.failed and o.detected}
    shown = 0
    for serial in sorted(trajectories):
        failed = serial in dataset.failed_serials
        if not failed or shown >= 4:
            continue
        shown += 1
        status = "DETECTED" if serial in detected else "missed  "
        tail = np.array2string(
            np.round(trajectories[serial][-8:], 2), separator=", "
        )
        print(f"  {serial} ({status}): final windows {tail}")

    print("\nTable II — model comparison:")
    forest = evaluate_random_forest(dataset)
    ocsvm = evaluate_ocsvm(dataset)
    print(
        ascii_table(
            [
                {
                    "model": "Random Forest",
                    "unsupervised": "no",
                    "feature engineering": "yes",
                    "feature ranking": "yes",
                    "recall": f"{forest.recall:.0%}",
                    "works on discrete sequences": "no",
                },
                {
                    "model": "One-class SVM",
                    "unsupervised": "yes",
                    "feature engineering": "yes",
                    "feature ranking": "no",
                    "recall": f"{ocsvm.recall:.0%}",
                    "works on discrete sequences": "no",
                },
                {
                    "model": "Ours (translation graph)",
                    "unsupervised": "yes",
                    "feature engineering": "no",
                    "feature ranking": "yes",
                    "recall": f"{evaluation.recall:.0%}",
                    "works on discrete sequences": "yes",
                },
            ]
        )
    )

    rf_top10 = {name.removesuffix("_diff") for name, _ in forest.feature_ranking[:10]}
    print(
        "\nFigure 11b — key features in the RF top-10 importances: "
        f"{sorted(key & rf_top10)}"
    )


if __name__ == "__main__":
    main()
