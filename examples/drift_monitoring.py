#!/usr/bin/env python
"""Distinguishing anomalies from model drift in a deployed graph.

Two live months are replayed through a trained framework:

1. a month from the *same* plant containing two real anomalies, and
2. a month from a *re-commissioned* plant (different component wiring)
   — a regime change that silently invalidates the trained models.

Both inflate anomaly scores.  The KS-based drift report tells them
apart: the anomaly month leaves most pair BLEU distributions compatible
with the development data, while the regime change drifts nearly all of
them — the signal to retrain rather than page the operator.

Run:  python examples/drift_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.detection import assess_drift
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy
from repro.report import ascii_table


def main() -> None:
    plant_config = PlantConfig.small(seed=7)
    dataset = generate_plant_dataset(plant_config)
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    framework = study.framework
    print(f"Trained on days 1-13; monitoring {len(framework.detector.valid_pairs())} pairs.")

    # Scenario 1: the real test month (contains the two anomalies).
    anomaly_result = study.detect()
    anomaly_report = assess_drift(framework.graph, anomaly_result)

    # Scenario 2: a re-commissioned plant behind the same sensor names.
    rewired = generate_plant_dataset(
        PlantConfig.small(seed=plant_config.seed + 5)
    )
    _, _, rewired_test = rewired.split(study.train_days, study.dev_days)
    regime_result = framework.detect(rewired_test)
    regime_report = assess_drift(framework.graph, regime_result)

    print("\n" + ascii_table(
        [
            {
                "scenario": "anomaly month (same plant)",
                "peak anomaly score": f"{anomaly_result.max_score():.2f}",
                "drifted pairs": f"{len(anomaly_report.drifted_pairs)}/{len(anomaly_report.pairs)}",
                "verdict": "page the operator" if not anomaly_report.needs_retraining() else "retrain",
            },
            {
                "scenario": "regime change (rewired plant)",
                "peak anomaly score": f"{regime_result.max_score():.2f}",
                "drifted pairs": f"{len(regime_report.drifted_pairs)}/{len(regime_report.pairs)}",
                "verdict": "retrain the graph" if regime_report.needs_retraining() else "page the operator",
            },
        ],
        title="Drift report",
    ))

    worst = sorted(
        regime_report.pairs, key=lambda p: p.p_value
    )[:3]
    print("\nMost drifted pairs after the regime change:")
    for pair in worst:
        print(
            f"  {pair.pair[0]} -> {pair.pair[1]}: dev median BLEU "
            f"{pair.dev_median:.0f} vs live {pair.live_median:.0f} "
            f"(KS={pair.ks_statistic:.2f}, p={pair.p_value:.1e})"
        )


if __name__ == "__main__":
    main()
