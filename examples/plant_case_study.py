#!/usr/bin/env python
"""Case Study I: the physical-plant workload (Section III of the paper).

Simulates a plant (the proprietary dataset substitute), trains the
relationship graph on 10 normal days, scores it on 3 development days,
and then detects the injected anomalies on days 21 and 28 of the
17-day test period, reproducing the Figure 8a timeline shape.  Ends
with fault diagnosis of the strongest anomaly (Figure 9).

Run:  python examples/plant_case_study.py [--full]

``--full`` uses the paper's full scale (128 sensors, minute sampling);
the default is a reduced scale that finishes in under a minute on a
laptop CPU.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy
from repro.report import ascii_table


def make_case_study(full_scale: bool) -> PlantCaseStudy:
    if full_scale:
        dataset = generate_plant_dataset(PlantConfig())
        config = FrameworkConfig.plant()
    else:
        dataset = generate_plant_dataset(PlantConfig.small())
        config = FrameworkConfig(
            language=LanguageConfig(
                word_size=6, word_stride=1, sentence_length=8, sentence_stride=8
            ),
            engine="ngram",
            popular_threshold=10,
        )
    return PlantCaseStudy(dataset=dataset, config=config)


def main(argv: list[str]) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    args = parser.parse_args(argv)

    study = make_case_study(args.full)
    print(
        f"Simulated plant: {study.dataset.config.num_sensors} sensors, "
        f"{study.dataset.config.days} days, anomalies on days "
        f"{study.dataset.anomaly_days}"
    )

    print("\nTraining pairwise translation models (Algorithm 1)...")
    study.fit()
    graph = study.framework.graph
    scores = np.array(list(graph.scores().values()))
    print(
        f"  {graph.num_edges} directed relationships; "
        f"BLEU median {np.median(scores):.1f}, "
        f"{100 * (scores > 60).mean():.0f}% above 60"
    )

    print("\nTable I — global subgraph statistics per BLEU range:")
    print(ascii_table([s.as_row() for s in study.framework.subgraph_statistics()]))

    popular = study.framework.popular_sensors()
    print(f"\nPopular sensors (critical health indicators): {popular}")
    clusters = study.framework.clusters()
    print(f"Local-subgraph clusters: {[sorted(c) for c in clusters]}")

    print("\nDetecting anomalies over the test period (Algorithm 2)...")
    result = study.detect()
    print("\nFigure 8a — per-day anomaly-score timeline:")
    for day_score in study.day_scores(result):
        label = (
            "ANOMALY " if day_score.is_anomaly
            else "precursor" if day_score.is_precursor
            else ""
        )
        bar = "#" * int(30 * day_score.max_score)
        print(f"  day {day_score.day:2d}: max {day_score.max_score:4.2f} {bar:<31}{label}")

    quality = study.detection_quality(result)
    print(f"\nDetected anomaly days: {quality['detected_days']}")
    print(f"False-alarm days (often early warnings): {quality['false_alarm_days']}")

    peak = int(np.argmax(result.anomaly_scores))
    diagnosis = study.framework.diagnose(result, peak)
    print(
        f"\nFigure 9 — fault diagnosis at the peak window "
        f"(day {study.window_day(peak)}): {len(diagnosis.broken_edges)} broken / "
        f"{len(diagnosis.normal_edges)} intact local relationships"
    )
    for cluster in diagnosis.faulty_clusters():
        print(
            f"  faulty cluster {sorted(cluster.sensors)}: "
            f"{cluster.broken_edges}/{cluster.total_edges} edges broken"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
