#!/usr/bin/env python
"""Export every reproduced figure/table as machine-readable artifacts.

Runs the plant and HDD case studies and writes one JSON file per paper
figure/table into ``./paper_artifacts`` — the data series behind each
plot (CDF points, histograms, timelines, rankings), so any plotting
tool can re-render the paper's evaluation from this reproduction.

Run:  python examples/export_paper_figures.py [output_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.datasets import BackblazeConfig, PlantConfig, generate_backblaze_dataset, generate_plant_dataset
from repro.graph import STRONGEST_RANGE
from repro.lang import LanguageConfig, MultiLanguageCorpus
from repro.pipeline import FrameworkConfig, HDDCaseStudy, PlantCaseStudy
from repro.report import cdf_series, histogram_series


def dump(directory: Path, name: str, payload: object) -> None:
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    print(f"  wrote {path}")


def export_plant(directory: Path) -> None:
    dataset = generate_plant_dataset(
        PlantConfig(num_sensors=20, days=30, samples_per_day=96, num_components=4, seed=7)
    )
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    framework = study.framework

    # Figure 3 — cardinality and vocabulary CDFs.
    cards = list(dataset.log.cardinalities().values())
    xs, ys = cdf_series(cards)
    train, _, _ = dataset.split(10, 3)
    vocabs = list(
        MultiLanguageCorpus.fit(train, config.language).vocabulary_sizes().values()
    )
    vx, vy = cdf_series(vocabs)
    dump(directory, "fig03_cardinality_vocabulary", {
        "cardinality_cdf": {"x": list(xs), "y": list(ys)},
        "vocabulary_cdf": {"x": list(vx), "y": list(vy)},
    })

    # Figure 4 — runtime CDF and BLEU histogram.
    rx, ry = cdf_series(framework.graph.runtimes())
    edges, counts = histogram_series(
        list(framework.graph.scores().values()), bins=[0, 20, 40, 60, 70, 80, 90, 100.001]
    )
    dump(directory, "fig04_runtime_bleu", {
        "runtime_cdf_seconds": {"x": list(rx), "y": list(ry)},
        "bleu_histogram": {"edges": list(edges), "counts": [int(c) for c in counts]},
    })

    # Table I.
    dump(directory, "table1_subgraph_statistics",
         [s.as_row() for s in framework.subgraph_statistics()])

    # Figures 6/7 — subgraph structures.
    global_sub = framework.global_subgraph()
    local_sub = framework.local_subgraph()
    dump(directory, "fig06_07_subgraphs", {
        "global_80_90": {
            "nodes": sorted(global_sub.nodes),
            "edges": [[u, v, d["score"]] for u, v, d in global_sub.edges(data=True)],
        },
        "local_80_90": {
            "nodes": sorted(local_sub.nodes),
            "edges": [[u, v, d["score"]] for u, v, d in local_sub.edges(data=True)],
        },
        "popular": framework.popular_sensors(),
    })

    # Figure 8 — anomaly timelines for both ranges.
    detection = study.detect()
    strongest = study.detect(STRONGEST_RANGE)
    dump(directory, "fig08_anomaly_timeline", {
        "range_80_90": [vars(s) for s in study.day_scores(detection)],
        "range_90_100": [vars(s) for s in study.day_scores(strongest)],
    })

    # Figure 9 — diagnosis at each anomaly day's peak.
    diagnosis_payload = {}
    for day in dataset.anomaly_days:
        windows = [
            w for w in range(detection.num_windows) if study.window_day(w) == day
        ]
        peak = max(windows, key=lambda w: detection.anomaly_scores[w])
        diagnosis = framework.diagnose(detection, peak)
        diagnosis_payload[str(day)] = {
            "severity": diagnosis.severity,
            "broken_edges": [list(edge) for edge in diagnosis.broken_edges],
            "faulty_sensors": sorted(diagnosis.faulty_sensors()),
        }
    dump(directory, "fig09_fault_diagnosis", diagnosis_payload)


def export_hdd(directory: Path) -> None:
    dataset = generate_backblaze_dataset(BackblazeConfig(num_drives=24, days=360, seed=11))
    study = HDDCaseStudy(dataset=dataset).fit()

    dump(directory, "table3_feature_ranking", [
        {"feature": name, "in_degree": i, "out_degree": o}
        for name, i, o in study.feature_ranking()
    ])

    trajectories = study.trajectories()
    evaluation = study.evaluate()
    dump(directory, "fig12_disk_trajectories", {
        "trajectories": {serial: list(scores) for serial, scores in trajectories.items()},
        "failed": sorted(dataset.failed_serials),
        "detected": sorted(
            o.drive for o in evaluation.outcomes if o.failed and o.detected
        ),
        "recall": evaluation.recall,
    })


def main(argv: list[str]) -> None:
    directory = Path(argv[0]) if argv else Path("paper_artifacts")
    directory.mkdir(parents=True, exist_ok=True)
    print(f"Exporting figure data to {directory}/")
    export_plant(directory)
    export_hdd(directory)
    print("Done.")


if __name__ == "__main__":
    main(sys.argv[1:])
