#!/usr/bin/env python
"""Quickstart: the full pipeline on a tiny three-sensor system.

Builds a small multivariate discrete event log (sensor B follows sensor
A with a delay; sensor C is independent noise), trains the relationship
graph with Algorithm 1, inspects the pairwise BLEU scores, and detects
an injected desynchronization anomaly with Algorithm 2.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FrameworkConfig, LanguageConfig, MultivariateEventLog
from repro.graph import ScoreRange
from repro.pipeline import AnalyticsFramework


def build_log(total: int, anomaly_window: tuple[int, int] | None = None):
    """Three sensors: B is A delayed by two samples, C is random."""
    rng = np.random.default_rng(0)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF", "OFF"] + a[:-2]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    if anomaly_window is not None:
        # Desynchronize sensor B: a phase shift keeps its vocabulary and
        # marginal statistics but breaks its relationship to A inside
        # the window — the kind of subtle joint-behaviour change the
        # framework is designed to catch (Figure 2 of the paper).
        start, stop = anomaly_window
        segment = b[start:stop]
        b[start:stop] = segment[3:] + segment[:3]
    return MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})


def main() -> None:
    # 1. Normal-operation data for training and development.
    train_log = build_log(600)
    dev_log = build_log(300)

    # 2. Configure the sensor-language windows and fit Algorithm 1.
    config = FrameworkConfig(
        language=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine="ngram",  # swap to "seq2seq" for the paper's NMT model
        detection_range=ScoreRange(60, 100, inclusive_high=True),
        popular_threshold=10,
    )
    framework = AnalyticsFramework(config).fit(train_log, dev_log)

    print("Pairwise relationship scores (BLEU, Algorithm 1):")
    for (source, target), score in sorted(framework.graph.scores().items()):
        print(f"  {source} -> {target}: {score:5.1f}")

    # 3. Detect anomalies in a test log with a desynchronized window.
    test_log = build_log(300, anomaly_window=(120, 220))
    result = framework.detect(test_log)

    samples_per_window = config.language.effective_sentence_stride * config.language.word_stride
    print("\nAnomaly scores per detection window (Algorithm 2):")
    for window, score in enumerate(result.anomaly_scores):
        start = window * samples_per_window
        in_region = 120 <= start < 220
        marker = " <-- anomaly region" if in_region else ""
        bar = "#" * int(20 * score)
        print(f"  window {window:2d}: {score:4.2f} {bar}{marker}")

    peak = int(np.argmax(result.anomaly_scores))
    print(f"\nPeak anomaly score {result.max_score():.2f} at window {peak}")
    print(f"Broken relationships at the peak: {result.broken_pairs(peak)}")


if __name__ == "__main__":
    main()
