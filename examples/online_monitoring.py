#!/usr/bin/env python
"""Streaming anomaly detection: monitoring a live plant feed.

Deployments do not get a finished test CSV — events arrive one sampling
interval at a time.  This example trains the framework offline on
normal days, then replays the test period sample-by-sample through the
:class:`~repro.detection.OnlineAnomalyDetector`, printing each
completed detection window as it would appear on an operator console.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.detection import OnlineAnomalyDetector
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy


def main() -> None:
    dataset = generate_plant_dataset(PlantConfig.small(seed=7))
    config = FrameworkConfig(
        language=LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8),
        engine="ngram",
        popular_threshold=10,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    print(
        f"Offline training complete: {study.framework.graph.num_edges} pair models; "
        f"monitoring {len(study.framework.detector.valid_pairs())} valid pairs "
        f"in {config.detection_range}"
    )

    detector = OnlineAnomalyDetector(
        study.framework.graph,
        config.detection_range,
        threshold=config.threshold_strategy,
        quantile=config.threshold_quantile,
    )
    print(
        f"Window span {detector.window_span} samples, one verdict every "
        f"{detector.window_stride} samples.\n"
    )

    _, _, test = dataset.split(study.train_days, study.dev_days)
    alarms = 0
    spd = dataset.config.samples_per_day
    for t in range(test.num_samples):
        sample = {name: test[name].events[t] for name in test.sensors}
        for window in detector.push(sample):
            day = study.first_test_day + window.start_sample // spd
            if window.anomaly_score >= 0.5:
                alarms += 1
                print(
                    f"  !! ALARM  day {day:2d} window {window.window_index:3d} "
                    f"score {window.anomaly_score:.2f} "
                    f"broken {len(window.broken_pairs)} pairs "
                    f"(e.g. {window.broken_pairs[:3]})"
                )
            elif window.anomaly_score >= 0.3:
                print(
                    f"  .. watch  day {day:2d} window {window.window_index:3d} "
                    f"score {window.anomaly_score:.2f}"
                )
    print(f"\nReplay complete: {alarms} alarm windows "
          f"(true anomaly days were {dataset.anomaly_days}).")


if __name__ == "__main__":
    main()
