"""Ablation — sentence stride (paper Section II-A2).

Paper rationale: the sentence stride ``n`` controls the trade-off
between detection granularity and training/corpus cost — stride 1 gives
per-sample detection with a much larger corpus; stride = sentence
length (no overlap) gives coarser detection cheaply.

Reproduction: sweep the stride and measure the corpus size / detection
window count, checking the inverse-proportional relationship and that
detection quality survives at every stride.
"""

from __future__ import annotations

from conftest import plant_framework_config, run_once
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, PlantCaseStudy
from repro.report import ascii_table


def run_with_stride(dataset, stride: int):
    base = plant_framework_config()
    config = FrameworkConfig(
        language=LanguageConfig(
            word_size=base.language.word_size,
            word_stride=1,
            sentence_length=base.language.sentence_length,
            sentence_stride=stride,
        ),
        engine=base.engine,
        popular_threshold=base.popular_threshold,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    result = study.detect()
    days = study.day_scores(result)
    anomaly_floor = min(s.max_score for s in days if s.is_anomaly)
    normal_ceiling = max(
        s.max_score for s in days if not s.is_anomaly and not s.is_precursor
    )
    return result.num_windows, anomaly_floor - normal_ceiling


def test_ablation_sentence_stride(benchmark, plant_dataset):
    base = plant_framework_config()
    strides = (base.language.sentence_length, base.language.sentence_length // 2, 2)

    def regenerate():
        return {stride: run_with_stride(plant_dataset, stride) for stride in strides}

    results = run_once(benchmark, regenerate)
    rows = [
        {
            "sentence stride": stride,
            "detection windows": windows,
            "anomaly margin": f"{margin:+.2f}",
        }
        for stride, (windows, margin) in results.items()
    ]
    print("\n" + ascii_table(rows, title="Ablation — sentence stride"))

    # Smaller stride -> proportionally more detection windows (finer
    # granularity), the paper's stated trade-off.
    windows = [results[stride][0] for stride in strides]
    assert windows == sorted(windows)
    ratio = windows[-1] / windows[0]
    expected = strides[0] / strides[-1]
    assert 0.7 * expected <= ratio <= 1.3 * expected

    # Detection separation survives at every granularity.
    for stride, (_, margin) in results.items():
        assert margin > 0, f"stride {stride} lost the anomaly"
