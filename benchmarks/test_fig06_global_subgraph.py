"""Figure 6 — the global subgraph at BLEU [80, 90).

Paper: 73 sensors, 17.8% of relationships; large nodes mark popular
sensors (in-degree >= 100); the graph is densely connected.

Reproduction: regenerate the subgraph, print its adjacency summary and
popular nodes, and check it is the non-trivial, substantially-connected
structure the paper plots.
"""

from __future__ import annotations

import networkx as nx

from conftest import run_once
from repro.graph import popular_sensors


def test_fig06_global_subgraph(benchmark, plant_study):
    framework = plant_study.framework

    def regenerate():
        return framework.global_subgraph()

    subgraph = run_once(benchmark, regenerate)

    popular = popular_sensors(subgraph, framework.config.popular_threshold)
    print(
        f"\nFigure 6 — global subgraph at [80, 90): "
        f"{subgraph.number_of_nodes()} sensors, {subgraph.number_of_edges()} edges, "
        f"popular = {popular}"
    )
    for node in sorted(subgraph.nodes):
        targets = sorted(subgraph.successors(node))
        marker = " *popular*" if node in popular else ""
        print(f"  {node}{marker} -> {targets}")

    assert subgraph.number_of_nodes() >= 3
    assert subgraph.number_of_edges() >= subgraph.number_of_nodes() - 1

    # Every edge weight really lies in the detection range.
    for _, _, data in subgraph.edges(data=True):
        assert 80.0 <= data["score"] < 90.0

    # The subgraph is substantially connected (one weak component holds
    # most sensors), matching the dense Figure 6 rendering.
    components = list(nx.weakly_connected_components(subgraph))
    largest = max(len(c) for c in components)
    assert largest >= subgraph.number_of_nodes() / 2
