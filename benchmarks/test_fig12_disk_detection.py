"""Figure 12 — disk-failure detection trajectories and recall.

Paper: successfully detected disks show a sharp (> 0.5) increase in
anomaly score right before the failure date; undetected disks' scores
stay stable over time (whether high or low).  Overall recall is 58%.

Reproduction: regenerate per-drive trajectories, split failed drives
into detected/missed by the sharp-increase rule, and check (a) detected
drives jump while missed drives stay comparatively flat, (b) recall is
substantial but below the supervised baseline, (c) at least one failed
drive is missed (the silent failures).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.detection import sharp_increases


def test_fig12_disk_detection(benchmark, hdd_study, hdd_trajectories, backblaze_dataset):
    def regenerate():
        return hdd_study.evaluate()

    evaluation = run_once(benchmark, regenerate)
    failed = backblaze_dataset.failed_serials
    detected = {o.drive for o in evaluation.outcomes if o.failed and o.detected}
    missed = {o.drive for o in evaluation.outcomes if o.failed and not o.detected}

    print("\nFigure 12a — detected disks (final 8 windows):")
    for serial in sorted(detected):
        print(f"  {serial}: {np.round(hdd_trajectories[serial][-8:], 2)}")
    print("Figure 12b — undetected disks (final 8 windows):")
    for serial in sorted(missed):
        print(f"  {serial}: {np.round(hdd_trajectories[serial][-8:], 2)}")
    print(
        f"\nrecall: {evaluation.recall:.0%} (paper: 58%); "
        f"false-positive rate: {evaluation.false_positive_rate:.0%}"
    )

    assert detected, "some failures must be detected"
    assert missed, "silent failures must be missed (as in the paper)"

    # Detected drives show a sharp rise; missed drives' trajectories
    # have visibly smaller total movement.
    detected_rise = np.mean(
        [
            max(np.diff(hdd_trajectories[s]).max(initial=0.0), 0.0)
            for s in detected
        ]
    )
    missed_rise = np.mean(
        [
            max(np.diff(hdd_trajectories[s]).max(initial=0.0), 0.0)
            for s in missed
        ]
    )
    print(f"mean max single-step rise: detected {detected_rise:.2f} vs missed {missed_rise:.2f}")
    assert detected_rise > missed_rise

    # Recall shape: substantial, but bounded away from perfect by the
    # silent failures.
    assert 0.4 <= evaluation.recall < 1.0
