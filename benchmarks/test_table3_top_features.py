"""Table III — the top-5 SMART features by in-degree at [80, 90).

Paper: SMART 192 (15 in / 3 out), 187 (13/2), 198 (13/2), 197 (13/2),
5 (3/4) — all error counters whose nonzero values signal failed I/O.

Reproduction: regenerate the ranking with descriptions and check that
the top five are exactly the paper's key failure attributes, with 192
among the leaders and in-degree dominating out-degree for the top
entries.
"""

from __future__ import annotations

from conftest import run_once
from repro.datasets.smart import KEY_FAILURE_ATTRIBUTES, SMART_ATTRIBUTES
from repro.report import ascii_table

PAPER_DEGREES = {
    "smart_192": (15, 3),
    "smart_187": (13, 2),
    "smart_198": (13, 2),
    "smart_197": (13, 2),
    "smart_5": (3, 4),
}


def test_table3_top_features(benchmark, hdd_study):
    def regenerate():
        return hdd_study.feature_ranking(top=5)

    top5 = run_once(benchmark, regenerate)
    descriptions = {a.column: a.name for a in SMART_ATTRIBUTES}

    rows = []
    for name, in_degree, out_degree in top5:
        paper_in, paper_out = PAPER_DEGREES.get(name, ("-", "-"))
        rows.append(
            {
                "feature": name,
                "name": descriptions.get(name, ""),
                "in (measured)": in_degree,
                "in (paper)": paper_in,
                "out (measured)": out_degree,
                "out (paper)": paper_out,
            }
        )
    print("\n" + ascii_table(rows, title="Table III — top-5 features at [80, 90)"))

    measured = [name for name, _, _ in top5]
    key = {f"smart_{i}" for i in KEY_FAILURE_ATTRIBUTES}
    overlap = key & set(measured)
    print(f"overlap with the paper's five: {len(overlap)}/5")
    assert len(overlap) >= 4, measured

    # In-degree dominates out-degree for the top features (they are
    # *targets* everything translates into — critical indicators).
    top_in, top_out = top5[0][1], top5[0][2]
    assert top_in > top_out
    # The leader is strongly connected (paper: 15 of 15 possible).
    assert top_in >= 7
