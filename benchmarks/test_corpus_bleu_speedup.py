"""Columnar-core speedup — corpus build + pairwise n-gram BLEU.

The integer-coded columnar path ("codes") windows interned ``uint16``
arrays with zero-copy stride tricks, translates via precomputed argmax
tables and scores BLEU by counting packed integer n-grams with numpy;
the legacy path ("strings") materialises encrypted character strings
and counts tuple n-grams with ``collections.Counter``.  Both produce
bit-identical scores, so this bench times the full Algorithm 1 body —
language generation plus every ordered pair's n-gram model fit,
translation and dev BLEU — under each representation on the seeded
plant dataset, asserts the promised >= 3x wall-clock win with no extra
peak memory, and records the numbers in ``BENCH_corpus.json`` so the
repo carries a perf trajectory.
"""

from __future__ import annotations

import itertools
import json
import time
import tracemalloc
from pathlib import Path

from repro.lang import LanguageConfig, MultiLanguageCorpus, ParallelCorpus
from repro.translation.bleu import corpus_bleu
from repro.translation.ngram import NGramTranslator

from conftest import plant_config, plant_framework_config

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus.json"
MIN_SPEEDUP = 3.0


def build_and_score(train, dev, config: LanguageConfig, representation: str):
    """The Algorithm 1 body: languages, pair models, dev BLEU scores."""
    corpus = MultiLanguageCorpus.fit(train, config, representation=representation)
    dev_sentences = {
        name: corpus[name].sentences_for(dev[name]) for name in corpus.sensors
    }
    scores = {}
    for source, target in itertools.permutations(corpus.sensors, 2):
        model = NGramTranslator().fit(
            ParallelCorpus.from_languages(corpus[source], corpus[target])
        )
        translations = model.translate(dev_sentences[source])
        scores[(source, target)] = corpus_bleu(
            translations, dev_sentences[target], smooth=True
        )
    return scores


def measure(train, dev, config: LanguageConfig, representation: str, repeats: int = 2):
    """(wall seconds, peak tracemalloc bytes, scores) for one path.

    Wall time is the best of ``repeats`` passes (standard noise
    suppression, applied identically to both paths); memory is a
    separate tracemalloc pass so its hooks do not pollute the
    wall-clock numbers.
    """
    wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scores = build_and_score(train, dev, config, representation)
        wall = min(wall, time.perf_counter() - start)

    tracemalloc.start()
    try:
        build_and_score(train, dev, config, representation)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return wall, peak, scores


def test_columnar_corpus_and_bleu_speedup(plant_dataset):
    config = plant_framework_config().language
    days = plant_config().days
    train_days = int(days * 2 / 3)
    dev_days = (days - train_days) // 2  # leave the rest as test days
    train, dev, _ = plant_dataset.split(train_days, dev_days)

    string_wall, string_peak, string_scores = measure(train, dev, config, "strings")
    code_wall, code_peak, code_scores = measure(train, dev, config, "codes")

    assert code_scores == string_scores  # the refactor's bit-identity promise

    speedup = string_wall / code_wall
    pairs = len(code_scores)
    print(
        f"\nColumnar corpus+BLEU — {len(train.sensors)} sensors, {pairs} pairs:\n"
        f"  strings: {string_wall:.3f}s, peak {string_peak / 1e6:.1f} MB\n"
        f"  codes:   {code_wall:.3f}s, peak {code_peak / 1e6:.1f} MB\n"
        f"  speedup {speedup:.2f}x, memory ratio {code_peak / string_peak:.2f}"
    )

    record = {
        "benchmark": "corpus_build_plus_pairwise_ngram_bleu",
        "dataset": "seeded-plant",
        "sensors": len(train.sensors),
        "pairs": pairs,
        "train_samples": train.num_samples,
        "dev_samples": dev.num_samples,
        "language_config": {
            "word_size": config.word_size,
            "word_stride": config.word_stride,
            "sentence_length": config.sentence_length,
            "sentence_stride": config.sentence_stride,
        },
        "strings_seconds": string_wall,
        "codes_seconds": code_wall,
        "speedup": speedup,
        "strings_peak_bytes": string_peak,
        "codes_peak_bytes": code_peak,
        "scores_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= MIN_SPEEDUP
    assert code_peak <= string_peak
