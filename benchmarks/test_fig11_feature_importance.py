"""Figure 11 — feature importance: global subgraph vs Random Forest.

Paper: the five heavily connected features of the [80, 90) global
subgraph (SMART 192/187/198/197/5) all appear in the Random Forest's
top-10 importances, validating the graph as an unsupervised feature
ranker.

Reproduction: rank features by in-degree and compare with the RF
ranking; check a substantial overlap between the two top sets and that
the graph's top set is dominated by the key failure signals.
"""

from __future__ import annotations

from conftest import run_once
from repro.datasets.smart import KEY_FAILURE_ATTRIBUTES

KEY = {f"smart_{i}" for i in KEY_FAILURE_ATTRIBUTES}


def test_fig11_feature_importance(benchmark, hdd_study, forest_result):
    def regenerate():
        return hdd_study.feature_ranking(top=5)

    graph_top5 = run_once(benchmark, regenerate)
    graph_features = [name for name, _, _ in graph_top5]

    rf_top10 = [
        name.removesuffix("_diff") for name, _ in forest_result.feature_ranking[:10]
    ]

    print("\nFigure 11a — global-subgraph top-5 (by in-degree at [80, 90)):")
    for name, in_degree, out_degree in graph_top5:
        print(f"  {name}: in={in_degree} out={out_degree}")
    print("Figure 11b — Random Forest top-10 importances:")
    for name, importance in forest_result.feature_ranking[:10]:
        print(f"  {name}: {importance:.3f}")

    graph_keys = KEY & set(graph_features)
    overlap = set(graph_features) & set(rf_top10)
    print(f"\nkey failure features in graph top-5: {sorted(graph_keys)}")
    print(f"graph top-5 ∩ RF top-10: {sorted(overlap)}")

    # Shape facts: the graph's unsupervised ranking surfaces the key
    # failure signals, and it substantially agrees with the supervised
    # ranking (paper: all 5 graph features appear in the RF top-10).
    assert len(graph_keys) >= 3
    assert len(overlap) >= 2
