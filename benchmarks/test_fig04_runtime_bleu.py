"""Figure 4 — (a) CDF of per-pair model runtime, (b) BLEU histogram.

Paper: each NMT pair model needs ~2.5 minutes to train and test, and
89.4% of development-set BLEU scores exceed 60.

Reproduction: the n-gram engine is orders of magnitude faster (that is
the point of the substitution), so 4a checks the *distributional* facts
(finite spread, no stragglers) and prints the measured CDF; 4b
regenerates the histogram and checks that the clear majority of scores
are high (the plant's sensors are strongly interrelated).
"""

from __future__ import annotations

import numpy as np

from conftest import FULL_SCALE, run_once
from repro.report import cdf_series, histogram_series


def test_fig04a_runtime_cdf(benchmark, plant_study):
    graph = plant_study.framework.graph

    def regenerate():
        return np.asarray(graph.runtimes())

    runtimes = run_once(benchmark, regenerate)
    xs, ys = cdf_series(runtimes)
    print("\nFigure 4a — per-pair train+score runtime CDF (seconds):")
    for q in (0.1, 0.5, 0.9, 1.0):
        print(f"  p{int(q * 100)}: {np.quantile(runtimes, q) * 1000:.2f} ms")
    print(
        f"  paper: ~2.5 min/pair for the GPU NMT model; surrogate engine "
        f"mean {runtimes.mean() * 1000:.2f} ms/pair"
    )
    assert runtimes.min() > 0
    # No pathological stragglers: the slowest pair is within 100x of
    # the median (the paper argues scalability is not a concern).
    assert runtimes.max() < 100 * np.median(runtimes)


def test_fig04b_bleu_histogram(benchmark, plant_study):
    graph = plant_study.framework.graph

    def regenerate():
        scores = np.asarray(list(graph.scores().values()))
        return histogram_series(scores, bins=[0, 20, 40, 60, 70, 80, 90, 100.001]), scores

    (edges, counts), scores = run_once(benchmark, regenerate)
    print("\nFigure 4b — histogram of development-set BLEU scores:")
    for low, high, count in zip(edges[:-1], edges[1:], counts):
        bar = "#" * int(40 * count / counts.max()) if counts.max() else ""
        print(f"  [{low:5.1f}, {high:5.1f}): {count:4d} {bar}")
    above_60 = (scores > 60).mean()
    print(f"  fraction above 60: {above_60:.1%} (paper: 89.4%)")
    # Shape: the high-score mass is substantial — a large share of
    # sensor pairs in the plant are related.  The paper-scale simulator
    # produces a weaker skew than the real plant (documented in
    # EXPERIMENTS.md), hence the lower full-scale bound.
    assert above_60 > (0.35 if FULL_SCALE else 0.5)
