"""Shared state for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The
expensive artifacts (fitted case studies, detection results) are built
once per session here; individual benches measure and print their own
regeneration step.

Scale note: the paper's full plant (128 sensors → 32,512 pair models)
is not tractable on one CPU with the neural engine; benches default to
a reduced-scale plant and the n-gram translation engine, which
preserves the result *shapes* (see DESIGN.md, "Substitutions").  Set
``REPRO_BENCH_SCALE=full`` to run the paper-scale configuration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines.evaluation import evaluate_ocsvm, evaluate_random_forest
from repro.datasets import (
    BackblazeConfig,
    PlantConfig,
    generate_backblaze_dataset,
    generate_plant_dataset,
)
from repro.lang import LanguageConfig
from repro.pipeline import FrameworkConfig, HDDCaseStudy, PlantCaseStudy

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small") == "full"


def plant_config() -> PlantConfig:
    if FULL_SCALE:
        return PlantConfig()
    return PlantConfig(
        num_sensors=20,
        days=30,
        samples_per_day=96,
        num_components=4,
        seed=7,
    )


def plant_framework_config() -> FrameworkConfig:
    if FULL_SCALE:
        return FrameworkConfig.plant()
    return FrameworkConfig(
        language=LanguageConfig(
            word_size=6, word_stride=1, sentence_length=8, sentence_stride=8
        ),
        engine="ngram",
        popular_threshold=10,
    )


@pytest.fixture(scope="session")
def plant_dataset():
    return generate_plant_dataset(plant_config())


@pytest.fixture(scope="session")
def plant_study(plant_dataset):
    return PlantCaseStudy(
        dataset=plant_dataset, config=plant_framework_config()
    ).fit()


@pytest.fixture(scope="session")
def plant_detection(plant_study):
    return plant_study.detect()


@pytest.fixture(scope="session")
def backblaze_dataset():
    return generate_backblaze_dataset(
        BackblazeConfig(num_drives=24, days=360, seed=11)
    )


@pytest.fixture(scope="session")
def hdd_study(backblaze_dataset):
    return HDDCaseStudy(dataset=backblaze_dataset).fit()


@pytest.fixture(scope="session")
def hdd_trajectories(hdd_study):
    return hdd_study.trajectories()


@pytest.fixture(scope="session")
def baseline_dataset():
    """A larger population so the baselines' recall is stable."""
    return generate_backblaze_dataset(
        BackblazeConfig(num_drives=60, days=360, seed=13)
    )


@pytest.fixture(scope="session")
def forest_result(baseline_dataset):
    return evaluate_random_forest(baseline_dataset, num_trees=40, seed=0)


@pytest.fixture(scope="session")
def ocsvm_result(baseline_dataset):
    return evaluate_ocsvm(baseline_dataset, seed=0)


def run_once(benchmark, func):
    """Benchmark a regeneration step exactly once (no warmup rounds —
    these are pipeline steps, not microbenchmarks)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
