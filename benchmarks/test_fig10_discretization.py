"""Figure 10 — the two feature-discretization schemes.

Paper: SMART 187 (reported uncorrectable errors) is mostly zero, so it
gets the binary zero/nonzero scheme (10a); SMART 9 (power-on hours)
spreads broadly, so it is cut at the training 20/40/60/80th percentiles
into five categories (10b).

Reproduction: regenerate both feature CDFs from the drive population,
fit the discretizers, and check exactly those scheme assignments and
the balanced-quintile property.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.datasets.discretize import (
    BinaryDiscretizer,
    QuantileDiscretizer,
    fit_discretizer,
)
from repro.report import cdf_at


def pooled(dataset, column):
    return np.concatenate([drive.values[column] for drive in dataset.drives])


def test_fig10_discretization_schemes(benchmark, backblaze_dataset):
    def regenerate():
        errors = pooled(backblaze_dataset, "smart_187")
        hours = pooled(backblaze_dataset, "smart_9")
        return (
            errors,
            hours,
            fit_discretizer("smart_187", errors),
            fit_discretizer("smart_9", hours),
        )

    errors, hours, error_discretizer, hour_discretizer = run_once(benchmark, regenerate)

    zero_fraction = cdf_at(errors, 0.0)
    print(
        f"\nFigure 10a — SMART 187 CDF: {zero_fraction:.1%} of observations are zero"
        " -> binary zero/nonzero scheme"
    )
    assert isinstance(error_discretizer, BinaryDiscretizer)
    assert zero_fraction > 0.5

    print("Figure 10b — SMART 9 percentile boundaries:", end=" ")
    assert isinstance(hour_discretizer, QuantileDiscretizer)
    print([f"{b:.0f}" for b in hour_discretizer.boundaries])
    np.testing.assert_allclose(
        hour_discretizer.boundaries, np.quantile(hours, (0.2, 0.4, 0.6, 0.8))
    )

    # The quintile scheme balances category populations on its own
    # training data.
    labels = hour_discretizer.transform(hours)
    counts = {label: labels.count(label) for label in set(labels)}
    print(f"  quintile populations: {dict(sorted(counts.items()))}")
    assert set(counts) == {"q1", "q2", "q3", "q4", "q5"}
    assert max(counts.values()) < 2 * min(counts.values())

    # Binary scheme semantics on unseen values.
    assert error_discretizer.transform([0.0, 7.0]) == ["zero", "nonzero"]
