"""Ablation — NMT architecture: recurrent unit and attention score.

The paper fixes the NMT architecture (2-layer LSTM, Luong "general"
attention) and argues that what matters is *relative* scores across
pairs, not translation quality per se.  This ablation swaps the
recurrent unit (LSTM/GRU) and the attention score function
(dot/general/concat) and verifies that every variant preserves the
related-vs-unrelated separation the framework relies on.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.lang import LanguageConfig, MultiLanguageCorpus, MultivariateEventLog
from repro.report import ascii_table
from repro.translation import NMTConfig, Seq2SeqTranslator

VARIANTS = (
    ("lstm", "general"),  # the paper's configuration
    ("lstm", "dot"),
    ("gru", "general"),
    ("gru", "concat"),
)


def build_corpora():
    rng = np.random.default_rng(17)
    total = 420
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})
    corpus = MultiLanguageCorpus.fit(
        log, LanguageConfig(word_size=4, word_stride=1, sentence_length=4, sentence_stride=4)
    )
    return corpus.parallel("sA", "sB"), corpus.parallel("sA", "sC")


def test_ablation_nmt_architecture(benchmark):
    related, unrelated = build_corpora()

    def run_variant(unit: str, score: str) -> tuple[float, float]:
        config = NMTConfig(
            embedding_size=10,
            hidden_size=14,
            num_layers=2,
            dropout=0.0,
            training_steps=160,
            batch_size=12,
            learning_rate=5e-3,
            seed=3,
            recurrent_unit=unit,
            attention_score=score,
        )
        related_bleu = Seq2SeqTranslator(config).fit(related).score(related)
        unrelated_bleu = Seq2SeqTranslator(config).fit(unrelated).score(unrelated)
        return related_bleu, unrelated_bleu

    def regenerate():
        return {variant: run_variant(*variant) for variant in VARIANTS}

    results = run_once(benchmark, regenerate)
    rows = [
        {
            "unit": unit,
            "attention": score,
            "related BLEU": f"{rel:.1f}",
            "unrelated BLEU": f"{unrel:.1f}",
            "separation": f"{rel - unrel:+.1f}",
        }
        for (unit, score), (rel, unrel) in results.items()
    ]
    print("\n" + ascii_table(rows, title="Ablation — NMT architecture"))

    for variant, (rel, unrel) in results.items():
        assert rel > unrel + 10, f"{variant} lost the separation"

    # The paper's configuration is competitive with every alternative.
    paper_sep = results[("lstm", "general")][0] - results[("lstm", "general")][1]
    best_sep = max(rel - unrel for rel, unrel in results.values())
    assert paper_sep >= 0.5 * best_sep
