"""Figure 2 — discrete event sequences on a normal vs an abnormal day.

Paper: two representative sensors (one periodic, one mostly-OFF) whose
normal-day and anomaly-day traces are visually indistinguishable; the
anomaly lives in *joint* behaviour, not marginals.

Reproduction: extract both day traces for a periodic and a mostly-OFF
sensor, print run-length summaries, and check that the marginal state
distributions on the anomalous day stay close to the normal day's.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once


def run_lengths(events: tuple[str, ...]) -> list[int]:
    lengths = [1]
    for previous, current in zip(events, events[1:]):
        if current == previous:
            lengths[-1] += 1
        else:
            lengths.append(1)
    return lengths


def pick_sensors(dataset) -> tuple[str, str]:
    """One periodic sensor and one mostly-OFF sensor (Figure 2a/2b)."""
    periodic, mostly_off = None, None
    for sequence in dataset.log:
        if sequence.cardinality != 2:
            continue
        counts = {state: 0 for state in sequence.unique_states}
        for event in sequence.events:
            counts[event] += 1
        minority = min(counts.values()) / len(sequence)
        if minority < 0.1 and mostly_off is None:
            mostly_off = sequence.sensor
        elif minority > 0.3 and periodic is None:
            periodic = sequence.sensor
        if periodic and mostly_off:
            break
    assert periodic and mostly_off, "simulator must produce both sensor kinds"
    return periodic, mostly_off


def test_fig02_sensor_traces(benchmark, plant_dataset):
    periodic, mostly_off = pick_sensors(plant_dataset)
    normal_day = 15
    abnormal_day = plant_dataset.anomaly_days[0]

    def regenerate():
        return {
            sensor: (
                plant_dataset.day_slice(normal_day)[sensor],
                plant_dataset.day_slice(abnormal_day)[sensor],
            )
            for sensor in (periodic, mostly_off)
        }

    traces = run_once(benchmark, regenerate)

    print("\nFigure 2 — normal vs abnormal day traces")
    for sensor, (normal, abnormal) in traces.items():
        normal_runs = run_lengths(normal.events)
        abnormal_runs = run_lengths(abnormal.events)
        print(
            f"  {sensor}: normal day {len(normal_runs)} state changes "
            f"(median run {np.median(normal_runs):.0f}), abnormal day "
            f"{len(abnormal_runs)} changes (median run {np.median(abnormal_runs):.0f})"
        )

        # Marginal state distributions stay close (paper: "challenging
        # to visually distinguish status changes").
        for state in normal.unique_states:
            normal_fraction = normal.events.count(state) / len(normal)
            abnormal_fraction = abnormal.events.count(state) / len(abnormal)
            assert abs(normal_fraction - abnormal_fraction) < 0.25, (
                sensor,
                state,
            )

    # The periodic sensor changes state much more often than the
    # mostly-OFF one, matching the two panels of Figure 2.
    periodic_changes = len(run_lengths(traces[periodic][0].events))
    quiet_changes = len(run_lengths(traces[mostly_off][0].events))
    assert periodic_changes > quiet_changes
