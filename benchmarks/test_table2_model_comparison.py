"""Table II — model comparison on the Backblaze-style dataset.

Paper: Random Forest (supervised, feature-engineered) reaches 70-80%
recall; one-class SVM (unsupervised, feature-engineered) 60%; the
framework (unsupervised, no feature engineering, works directly on
discrete sequences) 58% — comparable to OC-SVM without its feature
engineering.

Reproduction: run all three on synthetic populations and check the
ordering — RF best, the framework below the supervised baseline and in
the vicinity of OC-SVM — plus the capability matrix.
"""

from __future__ import annotations

from conftest import run_once
from repro.report import ascii_table

PAPER = {"Random Forest": "70-80%", "One-class SVM": "60%", "Ours": "58%"}


def test_table2_model_comparison(
    benchmark, hdd_study, forest_result, ocsvm_result
):
    def regenerate():
        return hdd_study.evaluate()

    ours = run_once(benchmark, regenerate)

    rows = [
        {
            "model": "Random Forest",
            "unsupervised": "no",
            "feature engineering": "yes",
            "feature ranking": "yes",
            "recall (measured)": f"{forest_result.recall:.0%}",
            "recall (paper)": PAPER["Random Forest"],
            "discrete sequences": "no",
        },
        {
            "model": "One-class SVM",
            "unsupervised": "yes",
            "feature engineering": "yes",
            "feature ranking": "no",
            "recall (measured)": f"{ocsvm_result.recall:.0%}",
            "recall (paper)": PAPER["One-class SVM"],
            "discrete sequences": "no",
        },
        {
            "model": "Ours",
            "unsupervised": "yes",
            "feature engineering": "no",
            "feature ranking": "yes",
            "recall (measured)": f"{ours.recall:.0%}",
            "recall (paper)": PAPER["Ours"],
            "discrete sequences": "yes",
        },
    ]
    print("\n" + ascii_table(rows, title="Table II — model comparison"))

    # Shape facts from the paper:
    # (1) the supervised baseline wins;
    assert forest_result.recall >= ocsvm_result.recall
    assert forest_result.recall >= ours.recall
    # (2) the framework is competitive despite being unsupervised and
    #     feature-engineering-free: it recalls a substantial share and
    #     is not an order of magnitude behind OC-SVM.
    assert ours.recall >= 0.4
    assert ours.recall >= ocsvm_result.recall - 0.35
