"""Figure 3 — CDFs of sensor cardinality (a) and vocabulary size (b).

Paper: sensors report 2.07 distinct states on average; 97.6% are
binary; the maximum cardinality is 7.  With 10-character words, ~40% of
sensors have vocabulary below 13 and under 20% exceed 100.

Reproduction: regenerate both CDFs from the simulated plant and check
the same shape facts (binary dominance, bounded cardinality, a heavy
low-vocabulary mass from the mostly-constant sensors).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.lang import MultiLanguageCorpus
from repro.report import cdf_at, cdf_series


def test_fig03_cardinality_and_vocabulary(benchmark, plant_study, plant_dataset):
    language_config = plant_study.config.language

    def regenerate():
        cardinalities = list(plant_dataset.log.cardinalities().values())
        corpus = MultiLanguageCorpus.fit(
            plant_dataset.split(plant_study.train_days, plant_study.dev_days)[0],
            language_config,
        )
        vocabulary_sizes = list(corpus.vocabulary_sizes().values())
        return cardinalities, vocabulary_sizes

    cardinalities, vocabulary_sizes = run_once(benchmark, regenerate)

    xs, ys = cdf_series(cardinalities)
    print("\nFigure 3a — sensor cardinality CDF (value -> fraction <=):")
    for value in sorted(set(cardinalities)):
        print(f"  {value}: {cdf_at(cardinalities, value):.3f}")
    print(f"  mean cardinality: {np.mean(cardinalities):.2f} (paper: 2.07)")

    binary_fraction = sum(1 for c in cardinalities if c <= 2) / len(cardinalities)
    print(f"  fraction with cardinality <= 2: {binary_fraction:.1%} (paper: 97.6%)")
    assert binary_fraction > 0.7, "binary sensors must dominate"
    assert max(cardinalities) <= 7, "paper's max cardinality is 7"

    xs, ys = cdf_series(vocabulary_sizes)
    print("\nFigure 3b — vocabulary-size CDF quartiles:")
    for q in (0.25, 0.5, 0.75, 1.0):
        print(f"  p{int(q * 100)}: {np.quantile(vocabulary_sizes, q):.0f} words")
    small_vocab = cdf_at(vocabulary_sizes, 13)
    print(f"  fraction with vocabulary < 13: {small_vocab:.1%} (paper: ~40%)")
    # Mostly-OFF sensors give a visible low-vocabulary mass; periodic
    # sensors give much larger vocabularies (a wide spread overall).
    assert small_vocab > 0.0
    assert max(vocabulary_sizes) > 3 * min(vocabulary_sizes)
