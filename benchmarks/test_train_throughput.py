"""Pair-training throughput — batched tensor-program engine vs looped.

Algorithm 1's cost is ``N(N-1)`` seq2seq fits; the looped engine pays
Python-level autograd overhead per model per step, while the batched
engine advances whole cohorts in lockstep through stacked BLAS calls
(see ``repro.translation.batched``).  This bench builds the same
plant-style relationship graph with both engines and records pair
throughput in ``BENCH_train.json`` (schema ``repro-train-v1``),
asserting the batched engine trains pairs at least
``REPRO_BENCH_TRAIN_MIN_SPEEDUP``x (default 4x) faster while producing
the same valid-pair set and edge weights.

Knobs: ``REPRO_BENCH_TRAIN_SENSORS`` (plant size, default 8),
``REPRO_BENCH_TRAIN_STEPS`` (per-pair step budget, default 80),
``REPRO_BENCH_TRAIN_COHORT`` (cohort size, default 64).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig
from repro.translation.seq2seq import NMTConfig

BENCH_SCHEMA = "repro-train-v1"
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_train.json"

NUM_SENSORS = int(os.environ.get("REPRO_BENCH_TRAIN_SENSORS", "8"))
TRAINING_STEPS = int(os.environ.get("REPRO_BENCH_TRAIN_STEPS", "80"))
COHORT_SIZE = int(os.environ.get("REPRO_BENCH_TRAIN_COHORT", "64"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_TRAIN_MIN_SPEEDUP", "4.0"))

LANG = LanguageConfig(word_size=6, word_stride=1, sentence_length=8, sentence_stride=8)


def _nmt() -> NMTConfig:
    base = NMTConfig.small(seed=0)
    return NMTConfig(**{**base.__dict__, "training_steps": TRAINING_STEPS})


def _logs():
    dataset = generate_plant_dataset(
        PlantConfig(
            num_sensors=NUM_SENSORS,
            days=30,
            samples_per_day=96,
            num_components=4,
            seed=7,
        )
    )
    train, dev, _ = dataset.split(10, 3)
    return train, dev


def _build(train, dev, **kwargs):
    return MultivariateRelationshipGraph.build(
        train, dev, config=LANG, engine="seq2seq", nmt_config=_nmt(), **kwargs
    )


@pytest.mark.slow
def test_batched_engine_throughput():
    train, dev = _logs()

    looped = _build(train, dev)
    looped_report = looped.build_report
    batched = _build(train, dev, train_engine="batched", cohort_size=COHORT_SIZE)
    batched_report = batched.build_report

    assert set(looped.relationships) == set(batched.relationships)
    score_diffs = [
        abs(looped.relationships[pair].score - batched.relationships[pair].score)
        for pair in looped.relationships
    ]
    max_score_diff = max(score_diffs) if score_diffs else 0.0
    assert max_score_diff == 0.0, max_score_diff

    pairs = len(looped_report.completed)
    assert pairs == len(batched_report.completed) > 0
    looped_rate = pairs / looped_report.wall_seconds
    batched_rate = pairs / batched_report.wall_seconds
    speedup = batched_rate / looped_rate

    payload = {
        "schema": BENCH_SCHEMA,
        "benchmark": "train_engine_throughput",
        "dataset": "seeded-plant",
        "sensors": NUM_SENSORS,
        "pairs": pairs,
        "language_config": {
            "word_size": LANG.word_size,
            "word_stride": LANG.word_stride,
            "sentence_length": LANG.sentence_length,
            "sentence_stride": LANG.sentence_stride,
        },
        "nmt": {
            "training_steps": TRAINING_STEPS,
            "hidden_size": _nmt().hidden_size,
            "embedding_size": _nmt().embedding_size,
            "batch_size": _nmt().batch_size,
        },
        "cohort_size": COHORT_SIZE,
        "looped": {
            "wall_seconds": looped_report.wall_seconds,
            "pairs_per_second": looped_rate,
        },
        "batched": {
            "wall_seconds": batched_report.wall_seconds,
            "pairs_per_second": batched_rate,
            "cohorts": batched_report.cohorts,
        },
        "speedup": speedup,
        "max_score_diff": max_score_diff,
        "pair_sets_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\npair-train throughput: looped {looped_rate:.2f} pairs/s, "
        f"batched {batched_rate:.2f} pairs/s "
        f"({batched_report.cohorts} cohort(s)) -> {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine achieved only {speedup:.2f}x "
        f"(required {MIN_SPEEDUP:.1f}x): {payload}"
    )
