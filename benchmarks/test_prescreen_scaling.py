"""Prescreen scaling — trained-model count and wall-clock vs. fleet size.

Algorithm 1 trains all ``N(N-1)`` ordered pair models, so the build is
quadratic in sensor count no matter how weakly coupled the fleet is.
The affinity prescreen spends a vectorised sub-quadratic pass to drop
pairs that cannot reach an informative BLEU range before any model is
trained.  This bench builds the relationship graph over a noisy plant
(the loosely coupled regime the prescreen exists for) at a ladder of
sensor counts, with and without the prescreen, and records both arms'
trained-model counts and wall-clock in ``BENCH_pairs.json``.

Asserted invariants, also re-checked by CI on the small ladder:

- the prescreen arm trains strictly fewer models at every size;
- at ``N >= 40`` the reduction is at least :data:`MIN_REDUCTION_AT_40`;
- surviving edges carry bit-identical scores to the full build.

``REPRO_BENCH_PRESCREEN_SIZES`` (comma-separated sensor counts)
overrides the ladder; CI uses ``20`` to keep the job fast.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.datasets import PlantConfig, generate_plant_dataset
from repro.graph import MultivariateRelationshipGraph
from repro.graph.prescreen import DEFAULT_FLOORS, PrescreenConfig
from repro.lang import LanguageConfig

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pairs.json"
BENCH_SCHEMA = "repro-prescreen-scaling-v1"

DEFAULT_SIZES = (10, 20, 40, 80)

#: Acceptance bar: at 40 sensors the prescreen must train at most half
#: the models of the full build.
MIN_REDUCTION_AT_40 = 2.0

#: Elevated flip noise thins the relationship graph the way a real,
#: loosely coupled fleet is thin; the default near-deterministic plant
#: is close to fully connected and leaves nothing for a *sound*
#: prescreen to prune.
NOISE_RATE = 0.12

LANGUAGE = LanguageConfig(
    word_size=6, word_stride=1, sentence_length=8, sentence_stride=8
)


def bench_sizes() -> tuple[int, ...]:
    override = os.environ.get("REPRO_BENCH_PRESCREEN_SIZES")
    if not override:
        return DEFAULT_SIZES
    return tuple(int(part) for part in override.split(",") if part.strip())


def plant_split(num_sensors: int):
    config = PlantConfig(
        num_sensors=num_sensors,
        days=14,
        samples_per_day=96,
        num_components=max(2, num_sensors // 4),
        noise_rate=NOISE_RATE,
        seed=7,
        anomaly_days=(13,),
        precursor_days=(12,),
    )
    train, dev, _ = generate_plant_dataset(config).split(7, 3)
    return train, dev


def timed_build(train, dev, prescreen):
    start = time.perf_counter()
    graph = MultivariateRelationshipGraph.build(
        train, dev, config=LANGUAGE, engine="ngram", prescreen=prescreen
    )
    return time.perf_counter() - start, graph


def test_prescreen_reduces_trained_models_and_writes_bench():
    prescreen_config = PrescreenConfig()
    sizes = []
    for num_sensors in bench_sizes():
        train, dev = plant_split(num_sensors)
        full_wall, full = timed_build(train, dev, prescreen="off")
        pruned_wall, pruned = timed_build(train, dev, prescreen=prescreen_config)

        trained_full = len(full.build_report.completed)
        trained_pruned = len(pruned.build_report.completed)
        reduction = trained_full / max(1, trained_pruned)
        identical = all(
            rel.score == full.relationships[pair].score
            for pair, rel in pruned.relationships.items()
        )
        sizes.append(
            {
                "sensors": num_sensors,
                "pairs": num_sensors * (num_sensors - 1),
                "no_prune": {
                    "trained_models": trained_full,
                    "wall_seconds": full_wall,
                },
                "prescreen": {
                    "trained_models": trained_pruned,
                    "pruned_pairs": len(pruned.build_report.pruned),
                    "wall_seconds": pruned_wall,
                    "prescreen_seconds": pruned.prescreen.seconds,
                },
                "reduction": reduction,
                "kept_scores_identical": identical,
            }
        )
        print(
            f"\nN={num_sensors}: full {trained_full} models {full_wall:.1f}s | "
            f"prescreen {trained_pruned} models {pruned_wall:.1f}s "
            f"({reduction:.2f}x fewer)"
        )

        assert identical
        assert trained_pruned < trained_full
        if num_sensors >= 40:
            assert reduction >= MIN_REDUCTION_AT_40

    payload = {
        "schema": BENCH_SCHEMA,
        "benchmark": "prescreen_pair_scaling",
        "dataset": "seeded-plant",
        "noise_rate": NOISE_RATE,
        "train_days": 7,
        "dev_days": 3,
        "samples_per_day": 96,
        "language_config": {
            "word_size": LANGUAGE.word_size,
            "word_stride": LANGUAGE.word_stride,
            "sentence_length": LANGUAGE.sentence_length,
            "sentence_stride": LANGUAGE.sentence_stride,
        },
        "prescreen": {
            "method": prescreen_config.method,
            "max_order": prescreen_config.max_order,
            "floor": DEFAULT_FLOORS[prescreen_config.method],
        },
        "sizes": sizes,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
