"""Robustness — the headline plant result across simulator seeds.

A reproduction that only works for one random seed is a coincidence.
This bench re-runs the full plant pipeline (generate → fit → detect)
for several seeds and requires the Figure 8 shape — both anomaly days
above every clean normal day — to hold in every run.  A second sweep
drives the fault-scenario library (``repro.scenarios``) across the
same seeds: every scenario shape must stay detectable by the framework
regardless of the simulator draw, and every regeneration must be
bit-identical (digest-stable).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from conftest import plant_framework_config, run_once
from repro.datasets import PlantConfig, generate_plant_dataset
from repro.pipeline import PlantCaseStudy
from repro.report import ascii_table
from repro.scenarios import TIERS, generate_scenario, run_scenario, scenario_names

SEEDS = (7, 19, 31)


def run_seed(seed: int) -> dict[str, float]:
    dataset = generate_plant_dataset(
        PlantConfig(
            num_sensors=20,
            days=30,
            samples_per_day=96,
            num_components=4,
            seed=seed,
        )
    )
    study = PlantCaseStudy(dataset=dataset, config=plant_framework_config()).fit()
    result = study.detect()
    days = study.day_scores(result)
    anomaly_floor = min(s.max_score for s in days if s.is_anomaly)
    normal_peak = max(
        s.max_score for s in days if not s.is_anomaly and not s.is_precursor
    )
    threshold = study.calibrated_alarm_threshold()
    evaluation = study.evaluate(result, alarm_threshold=threshold)
    return {
        "anomaly_floor": anomaly_floor,
        "normal_peak": normal_peak,
        "threshold": threshold,
        "recall": evaluation.recall,
        "false_alarms": len(evaluation.false_alarm_days),
    }


def test_robustness_across_seeds(benchmark):
    def regenerate():
        return {seed: run_seed(seed) for seed in SEEDS}

    outcomes = run_once(benchmark, regenerate)
    rows = [
        {
            "seed": seed,
            "anomaly-day floor": f"{o['anomaly_floor']:.2f}",
            "normal-day peak": f"{o['normal_peak']:.2f}",
            "margin": f"{o['anomaly_floor'] - o['normal_peak']:+.2f}",
            "calibrated threshold": f"{o['threshold']:.2f}",
            "day recall": f"{o['recall']:.0%}",
            "false-alarm days": o["false_alarms"],
        }
        for seed, o in outcomes.items()
    ]
    print("\n" + ascii_table(rows, title="Robustness — plant detection across seeds"))

    for seed, outcome in outcomes.items():
        # Shape: anomaly days top every clean normal day.
        assert outcome["anomaly_floor"] > outcome["normal_peak"], f"seed {seed}"
    # With the dev-calibrated alarm threshold, detection recalls most
    # anomalies across seeds (anomaly magnitudes vary with the random
    # disturbance draw; false alarms stay bounded).
    mean_recall = float(np.mean([o["recall"] for o in outcomes.values()]))
    assert mean_recall >= 0.5
    assert all(o["false_alarms"] <= 6 for o in outcomes.values())


#: The sweep doubles injection severity: robustness here means "a
#: clear fault stays detectable whatever the simulator draws", while
#: SNR sensitivity at default severity is the harness's own benchmark
#: (BENCH_scenarios.json).
SCENARIO_PARAMS = dataclasses.replace(TIERS["tiny"], severity=2.0)


def run_scenario_seed(name: str, seed: int) -> dict[str, float]:
    data = generate_scenario(name, params=SCENARIO_PARAMS, seed=seed)
    # Regeneration from the same (params, seed) must be bit-identical.
    assert (
        generate_scenario(name, params=SCENARIO_PARAMS, seed=seed).digest
        == data.digest
    )
    report = run_scenario(data, detectors=("framework",))
    outcome = report.outcome("framework")
    return {
        "precision": outcome.evaluation.precision,
        "recall": outcome.evaluation.recall,
        "f1": outcome.evaluation.f1,
    }


def test_scenario_robustness_across_seeds(benchmark):
    def sweep():
        return {
            name: {seed: run_scenario_seed(name, seed) for seed in SEEDS}
            for name in scenario_names()
        }

    outcomes = run_once(benchmark, sweep)
    rows = [
        {
            "scenario": name,
            **{
                f"seed {seed}": f"P={o['precision']:.2f} R={o['recall']:.2f}"
                for seed, o in by_seed.items()
            },
            "mean recall": f"{np.mean([o['recall'] for o in by_seed.values()]):.2f}",
        }
        for name, by_seed in outcomes.items()
    ]
    print(
        "\n" + ascii_table(rows, title="Robustness — scenario suite across seeds")
    )

    for name, by_seed in outcomes.items():
        mean_recall = float(np.mean([o["recall"] for o in by_seed.values()]))
        # Every fault shape stays detectable on average across draws.
        assert mean_recall >= 0.5, f"scenario {name}"
        # Alarms that fire must mostly point at real injections.
        for seed, outcome in by_seed.items():
            assert outcome["precision"] >= 0.5, f"scenario {name}, seed {seed}"
