"""Ablation — the BLEU range used for anomaly detection.

Paper (Sections III-B/III-C, footnotes 2 and 5): models with BLEU in
[80, 90) detect best; weaker ranges (< 80) "generally do well but can
result in many false positives"; the strongest range is useless.  The
optimum held across both datasets.

Reproduction: run Algorithm 2 with every range of the paper's partition
and compare anomaly/normal separation, verifying that [80, 90) is at
(or tied with) the optimum and beats both extremes.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.graph import DEFAULT_RANGES
from repro.report import ascii_table


def test_ablation_bleu_range(benchmark, plant_study):
    def regenerate():
        margins = {}
        for score_range in DEFAULT_RANGES:
            try:
                result = plant_study.detect(score_range)
            except ValueError:  # no valid pairs in this range
                margins[score_range.label] = None
                continue
            days = plant_study.day_scores(result)
            anomaly_floor = min(s.max_score for s in days if s.is_anomaly)
            normal = [
                s.max_score
                for s in days
                if not s.is_anomaly and not s.is_precursor
            ]
            margins[score_range.label] = (
                anomaly_floor - max(normal),
                float(np.mean(normal)),
            )
        return margins

    margins = run_once(benchmark, regenerate)
    rows = []
    for label, value in margins.items():
        if value is None:
            rows.append({"range": label, "anomaly margin": "(no models)", "normal mean": "-"})
        else:
            margin, normal_mean = value
            rows.append(
                {
                    "range": label,
                    "anomaly margin": f"{margin:+.2f}",
                    "normal mean": f"{normal_mean:.2f}",
                }
            )
    print("\n" + ascii_table(rows, title="Ablation — detection BLEU range"))

    detection = margins["[80, 90)"]
    strongest = margins["[90, 100]"]
    weakest = margins["[0, 60)"]
    assert detection is not None

    # [80, 90) separates anomalies from normal days...
    assert detection[0] > 0
    # ...and beats the strongest range (trivially translatable targets).
    if strongest is not None:
        assert detection[0] > strongest[0]
    # Weak ranges produce noisier normal periods (the paper's "many
    # false positives") or a worse margin.
    if weakest is not None:
        assert weakest[1] > detection[1] or detection[0] >= weakest[0]
