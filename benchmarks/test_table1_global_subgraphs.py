"""Table I — statistics of global subgraphs per BLEU score range.

Paper (128 sensors): the ranges [0,60) .. [90,100] hold 10.6 / 12.8 /
28.8 / 17.8 / 29.9 % of relationships; every range keeps a substantial
sensor population and a handful of popular (in-degree >= 100) sensors.

Reproduction: regenerate the table at the bench scale and check the
partition invariants and the shape facts — the high ranges hold most of
the mass, each populated range spans many sensors, and popular sensors
exist in at least one range.
"""

from __future__ import annotations

from conftest import FULL_SCALE, run_once
from repro.report import ascii_table

PAPER_ROWS = {
    "[0, 60)": 10.6,
    "[60, 70)": 12.8,
    "[70, 80)": 28.8,
    "[80, 90)": 17.8,
    "[90, 100]": 29.9,
}


def test_table1_global_subgraph_statistics(benchmark, plant_study):
    framework = plant_study.framework

    def regenerate():
        return framework.subgraph_statistics()

    stats = run_once(benchmark, regenerate)

    rows = []
    for stat in stats:
        row = stat.as_row()
        row["paper %"] = PAPER_ROWS[stat.score_range.label]
        rows.append(row)
    print("\n" + ascii_table(rows, title="Table I — global subgraph statistics"))

    # Partition invariant: every relationship in exactly one range.
    assert abs(sum(s.relationship_fraction for s in stats) - 1.0) < 1e-9

    by_label = {s.score_range.label: s for s in stats}
    # Shape: strong relationships dominate — the >= 70 ranges together
    # hold the majority of edges (paper: 76.5%).
    strong_mass = sum(
        by_label[label].relationship_fraction
        for label in ("[70, 80)", "[80, 90)", "[90, 100]")
    )
    print(f"mass at BLEU >= 70: {strong_mass:.1%} (paper: 76.5%)")
    assert strong_mass > (0.25 if FULL_SCALE else 0.4)

    # The detection range is populated (it drives Figures 6-9).
    assert by_label["[80, 90)"].num_sensors >= 3
    assert by_label["[80, 90)"].relationship_fraction > (0.03 if FULL_SCALE else 0.05)

    # Popular sensors appear somewhere in the partition.
    assert any(s.num_popular > 0 for s in stats)
