"""Ablation — word size (paper Section III-A1: "Generating words").

Paper rationale: longer words carry more history, enlarging the
vocabulary and the information passed to the translation model, at the
cost of training time; 10 characters "strikes a good balance".

Reproduction: sweep the word size on the plant dataset and measure
(a) vocabulary growth and (b) the anomaly-day/normal-day separation
margin, showing that very short words lose discriminating power.
"""

from __future__ import annotations

import numpy as np

from conftest import plant_framework_config, run_once
from repro.lang import LanguageConfig, MultiLanguageCorpus
from repro.pipeline import FrameworkConfig, PlantCaseStudy
from repro.report import ascii_table

WORD_SIZES = (2, 6, 10)


def margin_for(dataset, word_size: int) -> tuple[float, float]:
    base = plant_framework_config()
    config = FrameworkConfig(
        language=LanguageConfig(
            word_size=word_size,
            word_stride=1,
            sentence_length=base.language.sentence_length,
            sentence_stride=base.language.effective_sentence_stride,
        ),
        engine=base.engine,
        popular_threshold=base.popular_threshold,
        detection_range=base.detection_range,
    )
    study = PlantCaseStudy(dataset=dataset, config=config).fit()
    result = study.detect()
    days = study.day_scores(result)
    anomaly_floor = min(s.max_score for s in days if s.is_anomaly)
    normal_ceiling = max(
        s.max_score for s in days if not s.is_anomaly and not s.is_precursor
    )
    train, _, _ = dataset.split(study.train_days, study.dev_days)
    corpus = MultiLanguageCorpus.fit(train, config.language)
    mean_vocab = float(np.mean(list(corpus.vocabulary_sizes().values())))
    return anomaly_floor - normal_ceiling, mean_vocab


def test_ablation_word_size(benchmark, plant_dataset):
    def regenerate():
        return {size: margin_for(plant_dataset, size) for size in WORD_SIZES}

    results = run_once(benchmark, regenerate)
    rows = [
        {
            "word size": size,
            "mean vocabulary": f"{vocab:.0f}",
            "anomaly margin": f"{margin:+.2f}",
        }
        for size, (margin, vocab) in results.items()
    ]
    print("\n" + ascii_table(rows, title="Ablation — word size"))

    vocabs = [results[size][1] for size in WORD_SIZES]
    # Vocabulary grows monotonically with word size (more history per
    # word), the paper's stated trade-off.
    assert vocabs == sorted(vocabs)
    assert vocabs[-1] > 2 * vocabs[0]

    # The mid/long word sizes keep a positive separation margin.
    best_margin = max(results[size][0] for size in WORD_SIZES[1:])
    assert best_margin > 0
