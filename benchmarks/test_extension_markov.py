"""Extension — univariate Markov chains vs the translation graph.

The paper's introduction argues that anomalies in complex systems live
in *joint* behaviour: each sensor's own sequence looks plausible
(Figure 2), so univariate models miss them.  This extension benchmark
makes that argument quantitative: a per-sensor Markov-chain detector
(the natural univariate baseline for discrete sequences) is run on the
same plant test period as the relationship graph.  The simulator's
anomalies are desynchronizations that preserve marginals — the Markov
baseline's anomaly/normal separation collapses while the translation
graph's stays wide.
"""

from __future__ import annotations

import numpy as np

from conftest import plant_framework_config, run_once
from repro.baselines import MarkovAnomalyDetector
from repro.report import ascii_table


def day_margins(per_day: dict[int, float], dataset) -> tuple[float, float]:
    anomaly_floor = min(per_day[d] for d in dataset.anomaly_days)
    normal_peak = max(
        score
        for day, score in per_day.items()
        if day not in dataset.anomaly_days and day not in dataset.precursor_days
    )
    return anomaly_floor, normal_peak


def test_extension_markov_vs_translation_graph(
    benchmark, plant_dataset, plant_study, plant_detection
):
    config = plant_framework_config()
    train, dev, test = plant_dataset.split(
        plant_study.train_days, plant_study.dev_days
    )
    spd = plant_dataset.config.samples_per_day

    def regenerate():
        detector = MarkovAnomalyDetector(
            order=2,
            window_size=config.language.samples_per_sentence(),
            window_stride=config.language.effective_sentence_stride,
            calibration_quantile=0.99,
        ).fit(train, dev)
        return detector.detect(test)

    markov_result = run_once(benchmark, regenerate)

    # Collapse both detectors' window scores to per-day maxima.
    markov_per_day: dict[int, float] = {}
    for window in range(markov_result.windows):
        day = plant_study.first_test_day + (
            window * config.language.effective_sentence_stride
        ) // spd
        markov_per_day[day] = max(
            markov_per_day.get(day, 0.0), float(markov_result.anomaly_scores[window])
        )
    graph_per_day = {
        s.day: s.max_score for s in plant_study.day_scores(plant_detection)
    }

    markov_floor, markov_normal = day_margins(markov_per_day, plant_dataset)
    graph_floor, graph_normal = day_margins(graph_per_day, plant_dataset)

    rows = [
        {
            "detector": "per-sensor Markov chains (univariate)",
            "anomaly-day floor": f"{markov_floor:.2f}",
            "normal-day peak": f"{markov_normal:.2f}",
            "margin": f"{markov_floor - markov_normal:+.2f}",
        },
        {
            "detector": "translation graph (ours)",
            "anomaly-day floor": f"{graph_floor:.2f}",
            "normal-day peak": f"{graph_normal:.2f}",
            "margin": f"{graph_floor - graph_normal:+.2f}",
        },
    ]
    print("\n" + ascii_table(rows, title="Extension — univariate vs pairwise detection"))

    graph_margin = graph_floor - graph_normal
    markov_margin = markov_floor - markov_normal
    # The pairwise method separates; the univariate method separates
    # much worse (or not at all) on marginal-preserving anomalies.
    assert graph_margin > 0
    assert graph_margin > markov_margin + 0.1
