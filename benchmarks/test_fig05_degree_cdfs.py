"""Figure 5 — in/out-degree CDFs of sensors in each global subgraph.

Paper: in-degree is heavily skewed — 20-25% of sensors are "popular"
hubs while the rest sit near in-degree 10; out-degree spreads evenly
between roughly 10 and 35.

Reproduction: regenerate both degree distributions per range and check
the skew asymmetry: in-degree dispersion far exceeds out-degree
dispersion, and a popular minority exists.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.graph import DEFAULT_RANGES, degree_distribution, partition_by_ranges


def test_fig05_degree_cdfs(benchmark, plant_study):
    graph = plant_study.framework.graph

    def regenerate():
        subgraphs = partition_by_ranges(graph)
        return {
            score_range.label: (
                degree_distribution(sub, "in"),
                degree_distribution(sub, "out"),
            )
            for score_range, sub in subgraphs.items()
            if sub.number_of_nodes() > 0
        }

    distributions = run_once(benchmark, regenerate)
    assert distributions, "at least one populated subgraph"

    print("\nFigure 5 — degree summaries per global subgraph:")
    skew_observed = False
    for label, (in_degrees, out_degrees) in distributions.items():
        print(
            f"  {label}: in-degree p50/p90/max = "
            f"{np.median(in_degrees):.0f}/{np.quantile(in_degrees, 0.9):.0f}/{in_degrees.max()}"
            f" | out-degree p50/p90/max = "
            f"{np.median(out_degrees):.0f}/{np.quantile(out_degrees, 0.9):.0f}/{out_degrees.max()}"
        )
        if len(in_degrees) >= 5:
            in_spread = in_degrees.max() - np.median(in_degrees)
            out_spread = out_degrees.max() - np.median(out_degrees)
            if in_spread > out_spread:
                skew_observed = True

    # Shape: the in-degree distribution is the skewed one (hubs), as in
    # Figure 5a vs 5b.
    assert skew_observed

    # Total degree bookkeeping: in-degrees and out-degrees both sum to
    # the edge count within each subgraph.
    for label, (in_degrees, out_degrees) in distributions.items():
        assert in_degrees.sum() == out_degrees.sum()
