"""Ablation — pooled vs per-drive relationship graphs (HDD case).

Paper (IV-C): "we aggregate the data for all disks so that the number
of anomalies corresponds to the number of failure disks" — one graph is
trained on pooled healthy months.  The alternative is one graph per
drive.  This ablation shows why pooling wins at this data scale: with
only two healthy months per drive, per-drive graphs often lack pairs in
the detection range (unmonitorable drives), hurting recall.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.pipeline import HDDCaseStudy
from repro.report import ascii_table


def test_ablation_hdd_pooling(benchmark, backblaze_dataset, hdd_study):
    def regenerate():
        per_drive = HDDCaseStudy(dataset=backblaze_dataset, pooled=False).fit()
        return per_drive.evaluate()

    per_drive_eval = run_once(benchmark, regenerate)
    pooled_eval = hdd_study.evaluate()

    rows = [
        {
            "training mode": "pooled across drives (paper)",
            "recall": f"{pooled_eval.recall:.0%}",
            "false-positive rate": f"{pooled_eval.false_positive_rate:.0%}",
        },
        {
            "training mode": "one graph per drive",
            "recall": f"{per_drive_eval.recall:.0%}",
            "false-positive rate": f"{per_drive_eval.false_positive_rate:.0%}",
        },
    ]
    print("\n" + ascii_table(rows, title="Ablation — pooled vs per-drive graphs"))

    # Pooling matches or beats per-drive training at this data scale.
    assert pooled_eval.recall >= per_drive_eval.recall
