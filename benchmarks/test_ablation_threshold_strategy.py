"""Ablation — Algorithm 2's break-threshold strategy.

DESIGN.md's substitution note: the paper-literal ``f(i,j) < s(i,j)``
comparison is noisy when per-window BLEU fluctuates around the dev
corpus score; the robust variants derive the threshold from the dev
per-sentence BLEU distribution.  This ablation quantifies the
trade-off: stricter thresholds lower the normal-day noise floor while
keeping the anomaly days on top.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.detection import AnomalyDetector
from repro.report import ascii_table

STRATEGIES = (
    ("train", 0.0),
    ("dev-quantile", 0.25),
    ("dev-quantile", 0.05),
    ("dev-min", 0.0),
)


def test_ablation_threshold_strategy(benchmark, plant_study, plant_dataset):
    graph = plant_study.framework.graph
    score_range = plant_study.config.detection_range
    _, _, test = plant_dataset.split(plant_study.train_days, plant_study.dev_days)

    def regenerate():
        outcomes = {}
        for strategy, quantile in STRATEGIES:
            detector = AnomalyDetector(
                graph, score_range, threshold=strategy, quantile=quantile
            )
            result = detector.detect(test)
            days = plant_study.day_scores(result)
            anomaly_floor = min(s.max_score for s in days if s.is_anomaly)
            normal = [
                s.max_score for s in days if not s.is_anomaly and not s.is_precursor
            ]
            outcomes[(strategy, quantile)] = (
                anomaly_floor,
                max(normal),
                float(np.mean([s.mean_score for s in days if not s.is_anomaly])),
            )
        return outcomes

    outcomes = run_once(benchmark, regenerate)
    rows = [
        {
            "strategy": strategy,
            "quantile": quantile,
            "anomaly floor": f"{floor:.2f}",
            "normal ceiling": f"{ceiling:.2f}",
            "normal mean": f"{mean:.2f}",
            "margin": f"{floor - ceiling:+.2f}",
        }
        for (strategy, quantile), (floor, ceiling, mean) in outcomes.items()
    ]
    print("\n" + ascii_table(rows, title="Ablation — break-threshold strategy"))

    # Stricter thresholds quiet the normal background monotonically:
    # train >= dev-quantile(0.25) >= dev-quantile(0.05) >= dev-min.
    means = [outcomes[key][2] for key in STRATEGIES]
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))

    # The default (dev-quantile 0.05) separates; the paper-literal
    # threshold has a visibly noisier normal background.
    default = outcomes[("dev-quantile", 0.05)]
    literal = outcomes[("train", 0.0)]
    assert default[0] > default[1]
    assert literal[2] > default[2]
