"""Figure 7 — local subgraphs at [80, 90) and [90, 100].

Paper: removing the popular sensors reveals several clusters of
sensors, mostly isolated from each other (one pair of clusters shares a
single bridging edge); clusters match physical components.

Reproduction: regenerate both local subgraphs, list their clusters, and
check (a) clusters exist, (b) the clusters mostly map onto the
simulator's ground-truth components.
"""

from __future__ import annotations

import itertools

from conftest import run_once
from repro.graph import STRONGEST_RANGE, connected_component_clusters


def test_fig07_local_subgraphs(benchmark, plant_study, plant_dataset):
    framework = plant_study.framework

    def regenerate():
        return {
            "[80, 90)": framework.local_subgraph(),
            "[90, 100]": framework.local_subgraph(STRONGEST_RANGE),
        }

    locals_by_range = run_once(benchmark, regenerate)

    component_of = plant_dataset.component_of
    clusters_seen = 0
    agreements = []
    print("\nFigure 7 — local subgraphs and their clusters:")
    for label, local in locals_by_range.items():
        clusters = connected_component_clusters(local)
        clusters_seen += len(clusters)
        print(
            f"  {label}: {local.number_of_nodes()} sensors, "
            f"{local.number_of_edges()} edges, {len(clusters)} cluster(s)"
        )
        for cluster in clusters:
            true_components = sorted({component_of[s] for s in cluster})
            print(f"    {sorted(cluster)} <- components {true_components}")
            same = sum(
                component_of[a] == component_of[b]
                for a, b in itertools.combinations(sorted(cluster), 2)
            )
            total = max(1, len(cluster) * (len(cluster) - 1) // 2)
            agreements.append(same / total)

    assert clusters_seen >= 1, "local subgraphs must reveal clusters"
    # Knowledge-discovery shape: co-clustered sensors tend to share a
    # physical component ("sensors in the same cluster could come from
    # same system components", confirmed by the simulator ground truth).
    multi = [a for a in agreements if a > 0]
    assert multi, "at least one cluster groups same-component sensors"
