"""Ablation — redundant-sensor filtering (Section III-A2).

Paper: "many sensors actually share similar event sequences.  If
redundant sensors are further filtered out, then models are trained on
representative sensors only and training time reduces significantly."

Reproduction: group near-duplicate sensors on the plant training log,
build the graph over representatives only, and measure the model-count
and wall-clock reduction; verify the representative graph preserves the
strong-pair structure.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import plant_framework_config, run_once
from repro.graph import MultivariateRelationshipGraph, find_redundant_sensors
from repro.report import ascii_table


def test_ablation_redundancy_filtering(benchmark, plant_dataset, plant_study):
    config = plant_framework_config()
    train, dev, _ = plant_dataset.split(plant_study.train_days, plant_study.dev_days)

    def regenerate():
        groups = find_redundant_sensors(train, similarity=0.95)
        representatives = [
            name for name in groups.representatives
            if not train[name].is_constant()
        ]
        start = time.perf_counter()
        reduced_graph = MultivariateRelationshipGraph.build(
            train.select(representatives),
            dev.select(representatives),
            config=config.language,
            engine=config.engine,
        )
        reduced_seconds = time.perf_counter() - start
        return groups, reduced_graph, reduced_seconds

    groups, reduced_graph, reduced_seconds = run_once(benchmark, regenerate)
    full_graph = plant_study.framework.graph
    full_seconds = sum(full_graph.runtimes())

    rows = [
        {
            "configuration": "all sensors (paper default)",
            "sensors": len(full_graph.sensors),
            "pair models": full_graph.num_edges,
            "train+score seconds": f"{full_seconds:.2f}",
        },
        {
            "configuration": "representatives only",
            "sensors": len(reduced_graph.sensors),
            "pair models": reduced_graph.num_edges,
            "train+score seconds": f"{reduced_seconds:.2f}",
        },
    ]
    print("\n" + ascii_table(rows, title="Ablation — redundant-sensor filtering"))
    print(
        f"redundant sensors: {groups.num_redundant}; "
        f"model-count reduction factor {groups.reduction_factor():.2f}x"
    )

    # The filter only ever shrinks the problem.
    assert reduced_graph.num_edges <= full_graph.num_edges
    # Strong relationships survive: the reduced graph still contains
    # high-BLEU pairs.
    reduced_scores = np.asarray(list(reduced_graph.scores().values()))
    if reduced_scores.size:
        assert reduced_scores.max() > 60
