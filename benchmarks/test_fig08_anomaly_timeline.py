"""Figure 8 — anomaly-score timelines at [80, 90) vs [90, 100].

Paper: the [80, 90) subgraph detects both anomalies (days 21 and 28,
scores near 0.8) with low normal-day scores (mostly below 0.2) and a
few precursor spikes on days 19/20/27; the [90, 100] subgraph's scores
are too low to signal anything — its sensors merely have trivially
translatable languages.

Reproduction: run Algorithm 2 with both ranges and check exactly those
shape facts: both anomalies detected at [80, 90) with anomaly peaks
clearly above normal-day peaks; [90, 100] peaks lower on the anomaly
days than [80, 90) does.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.graph import STRONGEST_RANGE


def timeline(plant_study, result):
    return plant_study.day_scores(result)


def render(label, day_scores):
    print(f"\nFigure 8 — anomaly scores with global subgraph at {label}:")
    for score in day_scores:
        flag = (
            "ANOMALY" if score.is_anomaly
            else "precursor" if score.is_precursor
            else ""
        )
        bar = "#" * int(30 * score.max_score)
        print(f"  day {score.day:2d}: {score.max_score:4.2f} {bar:<31}{flag}")


def test_fig08_anomaly_timelines(benchmark, plant_study, plant_detection):
    def regenerate():
        strongest = plant_study.detect(STRONGEST_RANGE)
        return timeline(plant_study, plant_detection), timeline(plant_study, strongest)

    detection_days, strongest_days = run_once(benchmark, regenerate)
    render("[80, 90)", detection_days)
    render("[90, 100]", strongest_days)

    by_day = {s.day: s for s in detection_days}
    anomalies = [by_day[d] for d in plant_study.dataset.anomaly_days]
    normal = [
        s for s in detection_days if not s.is_anomaly and not s.is_precursor
    ]

    # (a) Both anomalies stand out at [80, 90).
    anomaly_floor = min(s.max_score for s in anomalies)
    normal_ceiling = max(s.max_score for s in normal)
    print(
        f"\n[80, 90): anomaly-day peak floor {anomaly_floor:.2f} vs "
        f"normal-day ceiling {normal_ceiling:.2f} "
        "(paper: ~0.8 vs mostly < 0.2)"
    )
    assert anomaly_floor > normal_ceiling
    assert anomaly_floor >= 0.3

    # (b) Normal days stay quiet on average.
    assert np.mean([s.mean_score for s in normal]) < 0.25

    # (c) The strongest range fails to separate anomalies from normal
    # operation (the paper's takeaway: "[90, 100] is not useful").  Its
    # anomaly-to-normal margin is worse than the detection range's.
    strongest_normal = [
        s for s in strongest_days if not s.is_anomaly and not s.is_precursor
    ]
    strongest_anomalies = [
        s for s in strongest_days if s.is_anomaly
    ]
    strongest_margin = min(s.max_score for s in strongest_anomalies) - max(
        s.max_score for s in strongest_normal
    )
    detection_margin = anomaly_floor - normal_ceiling
    print(
        f"separation margin: [80,90) {detection_margin:+.2f} vs "
        f"[90,100] {strongest_margin:+.2f}"
    )
    assert detection_margin > strongest_margin
