"""Executor speedup — parallel Algorithm 1 vs the serial pair loop.

The paper reports ~2.5 minutes of GPU time per NMT pair (Figure 4a), so
the pair loop is the build's bottleneck.  This bench fits a 6-sensor
plant-style log (30 ordered pairs) twice — ``n_jobs=1`` vs ``n_jobs=4``
— and asserts at least a 2x wall-clock win.

The per-pair model is the n-gram engine wrapped with a fixed training
latency (a stand-in for the neural engine's per-pair cost) so the bench
measures the *scheduler's* concurrency rather than this machine's core
count: the latency is GIL-free sleep, which threads overlap on any
hardware, exactly as the seq2seq engine's numpy-heavy training overlaps
on multicore machines.  The pure n-gram timings are also printed for
reference (on a single-core box those cannot speed up, and do not
assert).
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.translation.ngram import NGramTranslator

PAIR_LATENCY_SECONDS = 0.03


class LatencyNGramTranslator(NGramTranslator):
    """N-gram model with a fixed per-pair training latency."""

    def fit(self, corpus):
        time.sleep(PAIR_LATENCY_SECONDS)
        return super().fit(corpus)


def six_sensor_log(total: int = 480) -> MultivariateEventLog:
    rng = np.random.default_rng(99)
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    c = [("HI" if (t // 8) % 2 == 0 else "LO") for t in range(total)]
    e = [str(rng.integers(0, 3)) for _ in range(total)]
    return MultivariateEventLog.from_mapping(
        {
            "sA": a,
            "sB": ["OFF", "OFF"] + a[:-2],
            "sC": c,
            "sD": ["LO"] + c[:-1],
            "sE": e,
            "sF": ["0"] + e[:-1],
        }
    )


def timed_build(log, n_jobs: int, model_factory=None) -> tuple[float, dict]:
    config = LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5)
    start = time.perf_counter()
    graph = MultivariateRelationshipGraph.build(
        log.slice(0, 360),
        log.slice(360, 480),
        config=config,
        model_factory=model_factory,
        n_jobs=n_jobs,
        backend="thread" if n_jobs > 1 else "auto",
    )
    return time.perf_counter() - start, graph.scores()


def test_parallel_build_at_least_2x_faster():
    log = six_sensor_log()
    serial_wall, serial_scores = timed_build(log, 1, LatencyNGramTranslator)
    parallel_wall, parallel_scores = timed_build(log, 4, LatencyNGramTranslator)
    speedup = serial_wall / parallel_wall
    pairs = len(serial_scores)
    print(f"\nExecutor speedup — {pairs} pairs, {PAIR_LATENCY_SECONDS * 1000:.0f} ms/pair latency:")
    print(f"  n_jobs=1: {serial_wall:.3f}s   n_jobs=4: {parallel_wall:.3f}s   speedup {speedup:.2f}x")
    assert serial_scores == parallel_scores  # parallelism never changes results
    assert speedup >= 2.0


def test_pure_ngram_reference_timings():
    """Informational: the raw n-gram engine with no injected latency.

    On a multicore machine the thread pool wins here too; on a
    single-core CI box it cannot, so this prints without asserting a
    ratio.
    """
    log = six_sensor_log()
    serial_wall, serial_scores = timed_build(log, 1)
    parallel_wall, parallel_scores = timed_build(log, 4)
    print(
        f"\nPure n-gram reference: n_jobs=1 {serial_wall * 1000:.1f} ms, "
        f"n_jobs=4 {parallel_wall * 1000:.1f} ms"
    )
    assert serial_scores == parallel_scores
