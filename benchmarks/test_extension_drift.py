"""Extension — distinguishing anomalies from model drift.

A deployed graph faces two kinds of trouble: bounded anomalies (the
paper's subject) and regime changes that silently invalidate the
trained models.  Both inflate anomaly scores; only the second requires
retraining.  This bench shows the KS-based drift report separates them:
the plant's anomaly days leave the dev-vs-live BLEU distributions
compatible over the full test month, while a synthetic regime change
(retrained-world replay) drifts a majority of pairs.
"""

from __future__ import annotations

import numpy as np

from conftest import plant_framework_config, run_once
from repro.datasets import PlantConfig, generate_plant_dataset
from repro.detection import assess_drift
from repro.report import ascii_table


def test_extension_drift_vs_anomaly(benchmark, plant_dataset, plant_study, plant_detection):
    framework = plant_study.framework

    def regenerate():
        # Live month containing the true anomalies: bounded disturbance.
        anomaly_report = assess_drift(framework.graph, plant_detection)
        # A different plant (new seed = new component wiring) replayed
        # through the stale graph: a persistent regime change.
        other = generate_plant_dataset(
            PlantConfig(
                num_sensors=plant_dataset.config.num_sensors,
                days=plant_dataset.config.days,
                samples_per_day=plant_dataset.config.samples_per_day,
                num_components=plant_dataset.config.num_components,
                seed=plant_dataset.config.seed + 1,
            )
        )
        # Replay only sensors the graph knows; cardinalities match by
        # construction (same generator settings).
        _, _, other_test = other.split(plant_study.train_days, plant_study.dev_days)
        regime_result = framework.detect(
            other_test.select(
                [s for s in framework.graph.sensors if s in other_test]
            )
        )
        regime_report = assess_drift(framework.graph, regime_result)
        return anomaly_report, regime_report

    anomaly_report, regime_report = run_once(benchmark, regenerate)

    rows = [
        {
            "scenario": "normal month with 2 anomaly days",
            "drifted pairs": f"{len(anomaly_report.drifted_pairs)}/{len(anomaly_report.pairs)}",
            "drift fraction": f"{anomaly_report.drift_fraction:.0%}",
            "needs retraining": anomaly_report.needs_retraining(),
        },
        {
            "scenario": "regime change (different plant wiring)",
            "drifted pairs": f"{len(regime_report.drifted_pairs)}/{len(regime_report.pairs)}",
            "drift fraction": f"{regime_report.drift_fraction:.0%}",
            "needs retraining": regime_report.needs_retraining(),
        },
    ]
    print("\n" + ascii_table(rows, title="Extension — anomaly vs drift"))

    assert regime_report.drift_fraction > anomaly_report.drift_fraction
    assert regime_report.needs_retraining()
