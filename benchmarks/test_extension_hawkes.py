"""Extension — multivariate Hawkes process vs the translation graph.

The related work ([22], [27]) models inter-dependent event streams with
multidimensional Hawkes processes.  This bench runs the from-scratch
Hawkes baseline on the plant task and compares:

1. *structure discovery* — the Hawkes influence matrix's edges vs the
   translation graph's strong edges (do they agree on who relates to
   whom?), and
2. *anomaly detection* — likelihood-based window scores vs Algorithm 2
   on the marginal-preserving desynchronization anomalies.

Hawkes sees only state-change *timing* co-occurrence; the paper's
method additionally sees state *content* alignment, which is why it
separates the plant anomalies more sharply.
"""

from __future__ import annotations

import numpy as np

from conftest import plant_framework_config, run_once
from repro.baselines import HawkesAnomalyDetector, MultivariateHawkes, state_change_times
from repro.graph import ScoreRange
from repro.report import ascii_table


def test_extension_hawkes(benchmark, plant_dataset, plant_study, plant_detection):
    config = plant_framework_config()
    train, dev, test = plant_dataset.split(
        plant_study.train_days, plant_study.dev_days
    )
    spd = plant_dataset.config.samples_per_day

    def regenerate():
        sensors = plant_study.framework.graph.sensors
        events = {
            name: state_change_times(train[name]) for name in sensors
        }
        hawkes = MultivariateHawkes(decay=0.2, iterations=30).fit(
            events, float(train.num_samples)
        )
        detector = HawkesAnomalyDetector(
            window_size=config.language.samples_per_sentence(),
            window_stride=config.language.effective_sentence_stride,
        )
        detector.model = hawkes
        dev_rates = detector._nll_rates(dev.select(sensors))
        detector._threshold = float(np.quantile(dev_rates, 0.99))
        detector._scale = max(float(dev_rates.std()), 1e-6)
        result = detector.detect(test.select(sensors))
        return hawkes, result

    hawkes, hawkes_result = run_once(benchmark, regenerate)

    # --- structure agreement ------------------------------------------
    strong_edges = set(
        plant_study.framework.global_subgraph(
            ScoreRange(70, 100, inclusive_high=True)
        ).edges
    )
    influence = hawkes.influence_graph(threshold=0.0)
    ranked = sorted(influence, key=influence.get, reverse=True)[: len(strong_edges)]
    overlap = len(set(ranked) & strong_edges) / max(1, len(strong_edges))

    # --- detection comparison -----------------------------------------
    hawkes_per_day: dict[int, float] = {}
    for window in range(hawkes_result.windows):
        day = plant_study.first_test_day + (
            window * config.language.effective_sentence_stride
        ) // spd
        hawkes_per_day[day] = max(
            hawkes_per_day.get(day, 0.0), float(hawkes_result.anomaly_scores[window])
        )
    graph_per_day = {
        s.day: s.max_score for s in plant_study.day_scores(plant_detection)
    }

    def margin(per_day):
        anomaly = min(per_day[d] for d in plant_dataset.anomaly_days)
        normal = max(
            v for d, v in per_day.items()
            if d not in plant_dataset.anomaly_days
            and d not in plant_dataset.precursor_days
        )
        return anomaly - normal

    rows = [
        {
            "method": "Hawkes process (timing only)",
            "anomaly margin": f"{margin(hawkes_per_day):+.2f}",
        },
        {
            "method": "translation graph (timing + content)",
            "anomaly margin": f"{margin(graph_per_day):+.2f}",
        },
    ]
    print("\n" + ascii_table(rows, title="Extension — Hawkes vs translation graph"))
    print(f"structure agreement with strong BLEU edges: {overlap:.0%}")

    # The translation graph separates at least as well as the
    # timing-only Hawkes model on marginal-preserving anomalies.
    assert margin(graph_per_day) >= margin(hawkes_per_day)
    assert margin(graph_per_day) > 0
