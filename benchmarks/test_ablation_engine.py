"""Ablation — translation engine: seq2seq NMT vs n-gram surrogate.

DESIGN.md substitutes a count-based translator for the paper's NMT
model in the full-scale benches.  This ablation justifies the
substitution on a reduced problem: both engines must agree on what the
graph layer consumes — the *ordering* of pairwise relationship
strengths (related pairs above unrelated pairs).
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.graph import MultivariateRelationshipGraph
from repro.lang import LanguageConfig, MultivariateEventLog
from repro.report import ascii_table
from repro.translation import NMTConfig


def build_logs():
    rng = np.random.default_rng(3)
    total = 480
    a = [("ON" if (t // 6) % 2 == 0 else "OFF") for t in range(total)]
    b = ["OFF"] + a[:-1]
    c = [str(rng.integers(0, 2)) for _ in range(total)]
    log = MultivariateEventLog.from_mapping({"sA": a, "sB": b, "sC": c})
    return log.slice(0, 330), log.slice(330, 480)


def build_graph(engine: str) -> MultivariateRelationshipGraph:
    train, dev = build_logs()
    return MultivariateRelationshipGraph.build(
        train,
        dev,
        config=LanguageConfig(word_size=4, word_stride=1, sentence_length=5, sentence_stride=5),
        engine=engine,
        nmt_config=NMTConfig(
            embedding_size=12,
            hidden_size=16,
            num_layers=2,
            dropout=0.0,
            training_steps=180,
            batch_size=12,
            learning_rate=5e-3,
            seed=0,
        ),
    )


def test_ablation_translation_engine(benchmark):
    def regenerate():
        return {engine: build_graph(engine) for engine in ("ngram", "seq2seq")}

    graphs = run_once(benchmark, regenerate)

    rows = []
    for pair in sorted(graphs["ngram"].scores()):
        rows.append(
            {
                "pair": f"{pair[0]} -> {pair[1]}",
                "ngram BLEU": f"{graphs['ngram'].score(*pair):.1f}",
                "seq2seq BLEU": f"{graphs['seq2seq'].score(*pair):.1f}",
            }
        )
    print("\n" + ascii_table(rows, title="Ablation — translation engine"))

    for engine, graph in graphs.items():
        related = graph.score("sA", "sB")
        unrelated = max(graph.score("sA", "sC"), graph.score("sB", "sC"))
        print(f"{engine}: related {related:.1f} vs unrelated {unrelated:.1f}")
        # Both engines separate the related pair from the noise pairs —
        # the only property Algorithms 1/2 rely on.
        assert related > unrelated + 15

    # The two engines agree on the strongest pair.
    strongest = {
        engine: max(graph.scores(), key=graph.scores().get)
        for engine, graph in graphs.items()
    }
    assert strongest["ngram"] == strongest["seq2seq"]
