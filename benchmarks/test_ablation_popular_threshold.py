"""Ablation — the popular-sensor in-degree threshold.

Paper: popular sensors (in-degree >= 100 of 127 possible) are removed
to obtain local subgraphs; keeping them leaves the graph "too densely
connected to provide useful clustering information" (Figure 6 vs 7).

Reproduction: sweep the threshold and verify the monotone trade-off —
lower thresholds remove more sensors and yield sparser, more fragmented
local subgraphs (more, smaller clusters).
"""

from __future__ import annotations

from conftest import run_once
from repro.graph import connected_component_clusters, local_subgraph, popular_sensors
from repro.report import ascii_table


def test_ablation_popular_threshold(benchmark, plant_study):
    global_graph = plant_study.framework.global_subgraph()
    max_degree = max((d for _, d in global_graph.in_degree()), default=0)
    thresholds = sorted({max(1, max_degree // 2), max(2, max_degree), max_degree + 1})

    def regenerate():
        sweep = {}
        for threshold in thresholds:
            local = local_subgraph(global_graph, threshold)
            sweep[threshold] = (
                popular_sensors(global_graph, threshold),
                local,
                connected_component_clusters(local),
            )
        return sweep

    sweep = run_once(benchmark, regenerate)
    rows = [
        {
            "threshold": threshold,
            "popular removed": len(popular),
            "local nodes": local.number_of_nodes(),
            "local edges": local.number_of_edges(),
            "clusters": len(clusters),
        }
        for threshold, (popular, local, clusters) in sweep.items()
    ]
    print("\n" + ascii_table(rows, title="Ablation — popular-sensor threshold"))

    # Monotone: raising the threshold removes fewer sensors and keeps
    # more edges.
    removed = [len(sweep[t][0]) for t in thresholds]
    edges = [sweep[t][1].number_of_edges() for t in thresholds]
    assert removed == sorted(removed, reverse=True)
    assert edges == sorted(edges)

    # Beyond the maximum in-degree nothing is popular: the "local"
    # subgraph degenerates to the global one.
    top = thresholds[-1]
    assert sweep[top][0] == []
    assert sweep[top][1].number_of_edges() == global_graph.number_of_edges()
