"""Figure 9 — fault diagnosis with local subgraphs on anomalous days.

Paper: on 2017-11-21 the broken (red) edges concentrate in specific
clusters (the faulty components); on 2017-11-28 almost all
relationships break — a severe, system-wide anomaly.

Reproduction: diagnose the peak window of each anomaly day on the
[80, 90) local subgraph, print broken/intact counts per cluster, and
check that anomaly-window severity dominates normal-window severity and
that faulty clusters are identified.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once


def peak_window_of_day(plant_study, result, day):
    windows = [
        w for w in range(result.num_windows) if plant_study.window_day(w) == day
    ]
    assert windows, f"no detection windows on day {day}"
    return max(windows, key=lambda w: result.anomaly_scores[w])


def test_fig09_fault_diagnosis(benchmark, plant_study, plant_detection):
    framework = plant_study.framework

    def regenerate():
        diagnoses = {}
        for day in plant_study.dataset.anomaly_days:
            window = peak_window_of_day(plant_study, plant_detection, day)
            diagnoses[day] = framework.diagnose(plant_detection, window)
        return diagnoses

    diagnoses = run_once(benchmark, regenerate)

    print("\nFigure 9 — fault diagnosis on anomalous days:")
    for day, diagnosis in diagnoses.items():
        print(
            f"  day {day}: {len(diagnosis.broken_edges)} broken / "
            f"{len(diagnosis.normal_edges)} intact edges "
            f"(severity {diagnosis.severity:.2f})"
        )
        for cluster in diagnosis.clusters:
            status = "FAULTY" if cluster.is_faulty() else "healthy"
            print(
                f"    cluster {sorted(cluster.sensors)}: "
                f"{cluster.broken_edges}/{cluster.total_edges} broken [{status}]"
            )
        # Broken relationships locate responsible sensors.
        assert diagnosis.severity > 0.3
        assert diagnosis.faulty_sensors(), "diagnosis must flag sensors"

    # Normal windows show far lower severity than anomaly windows.
    normal_windows = [
        w
        for w in range(plant_detection.num_windows)
        if plant_study.window_day(w) not in plant_study.dataset.anomaly_days
        and plant_study.window_day(w) not in plant_study.dataset.precursor_days
    ]
    normal_severity = np.mean(
        [
            framework.diagnose(plant_detection, w).severity
            for w in normal_windows[:: max(1, len(normal_windows) // 10)]
        ]
    )
    anomaly_severity = np.mean([d.severity for d in diagnoses.values()])
    print(
        f"  mean severity: anomaly windows {anomaly_severity:.2f} vs "
        f"normal windows {normal_severity:.2f}"
    )
    assert anomaly_severity > 2 * normal_severity
