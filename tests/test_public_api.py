"""Guard rails on the public API surface.

Every name a subpackage exports must resolve, be documented, and the
top-level package must re-export the primary entry points.  These tests
fail when an `__all__` entry goes stale or a public item loses its
docstring.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.nn",
    "repro.lang",
    "repro.translation",
    "repro.graph",
    "repro.detection",
    "repro.baselines",
    "repro.datasets",
    "repro.pipeline",
    "repro.report",
    "repro.scenarios",
    "repro.service",
    "repro.bench",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} must define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_entries_sorted(module_name):
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert exported == sorted(exported), f"{module_name}.__all__ is not sorted"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)
    # The primary entry points are reachable without submodule imports.
    assert repro.AnalyticsFramework is not None
    assert repro.FrameworkConfig is not None
    assert repro.MultivariateEventLog is not None


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
