"""Tests for the pair trainer and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import ParallelCorpus
from repro.translation import (
    NGramTranslator,
    NMTConfig,
    PairTrainer,
    train_with_early_stopping,
)


@pytest.fixture(scope="module")
def corpora():
    sentences = [tuple(f"w{(i + j) % 4}" for j in range(4)) for i in range(16)]
    train = ParallelCorpus.from_sentences("src", "tgt", sentences[:12], sentences[:12])
    dev = ParallelCorpus.from_sentences("src", "tgt", sentences[12:], sentences[12:])
    return train, dev


class TestPairTrainer:
    def test_records_timing_and_score(self, corpora):
        train, dev = corpora
        trainer = PairTrainer(model_factory=NGramTranslator)
        model, record = trainer.fit_pair(train, dev)
        assert model.fitted
        assert record.source == "src" and record.target == "tgt"
        assert record.train_seconds > 0
        assert record.eval_seconds > 0
        assert 0.0 <= record.dev_bleu <= 100.0
        assert record.total_seconds == record.train_seconds + record.eval_seconds


class TestEarlyStopping:
    def test_stops_early_on_easy_pair(self, corpora):
        train, dev = corpora
        config = NMTConfig(
            embedding_size=10,
            hidden_size=14,
            num_layers=1,
            dropout=0.0,
            training_steps=1200,  # generous budget the copy task won't need
            batch_size=8,
            learning_rate=5e-3,
            seed=0,
        )
        model, record = train_with_early_stopping(
            train, dev, config, eval_every=80, patience=2
        )
        assert record.stopped_early
        assert len(record.loss_history) < config.training_steps
        assert record.dev_bleu > 80.0
        assert len(record.eval_history) >= 2
        # Eval steps recorded in increasing order.
        steps = [s for s, _ in record.eval_history]
        assert steps == sorted(steps)

    def test_respects_total_budget(self, corpora):
        train, dev = corpora
        config = NMTConfig(
            embedding_size=8,
            hidden_size=8,
            num_layers=1,
            dropout=0.0,
            training_steps=60,
            batch_size=8,
            seed=1,
        )
        model, record = train_with_early_stopping(
            train, dev, config, eval_every=40, patience=99
        )
        assert len(record.loss_history) <= config.training_steps
        assert not record.stopped_early or len(record.loss_history) < 60

    def test_invalid_parameters(self, corpora):
        train, dev = corpora
        with pytest.raises(ValueError):
            train_with_early_stopping(train, dev, NMTConfig.small(), eval_every=0)


class TestChunkedTrainingContinuity:
    def test_chunked_equals_uninterrupted(self, corpora):
        # The optimizer persists across fit/continue chunks, so chunked
        # training follows the exact optimisation path of one
        # uninterrupted fit: same Adam moments, same RNG stream.
        from repro.translation import Seq2SeqTranslator
        from repro.translation.trainer import _continue_training

        train, _ = corpora
        base = dict(
            embedding_size=8,
            hidden_size=10,
            num_layers=2,
            dropout=0.1,
            batch_size=8,
            seed=2,
        )
        full = Seq2SeqTranslator(NMTConfig(training_steps=60, **base)).fit(train)
        chunked = Seq2SeqTranslator(NMTConfig(training_steps=20, **base)).fit(train)
        _continue_training(chunked, train, 20)
        _continue_training(chunked, train, 20)

        state_full, state_chunked = full.state_dict(), chunked.state_dict()
        for key in state_full:
            np.testing.assert_array_equal(state_full[key], state_chunked[key], err_msg=key)


class TestBestWeightsRestored:
    def test_reported_bleu_describes_returned_model(self, corpora):
        # Later chunks may degrade the model below its best evaluation;
        # the best weights are restored so record.dev_bleu is always
        # reproducible by rescoring the returned model.
        train, dev = corpora
        config = NMTConfig(
            embedding_size=8,
            hidden_size=10,
            num_layers=1,
            dropout=0.0,
            training_steps=90,
            batch_size=8,
            seed=3,
        )
        model, record = train_with_early_stopping(
            train, dev, config, eval_every=15, patience=3, min_improvement=0.0
        )
        assert record.dev_bleu == model.score(dev)
        assert record.dev_bleu == max(bleu for _, bleu in record.eval_history)
