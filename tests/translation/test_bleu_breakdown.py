"""Tests for BLEU breakdown diagnostics."""

from __future__ import annotations

import pytest

from repro.translation import bleu_breakdown, corpus_bleu


class TestBleuBreakdown:
    def test_perfect_translation(self):
        sentences = [["a", "b", "c", "d", "e"]]
        breakdown = bleu_breakdown(sentences, sentences)
        assert breakdown.precisions == {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
        assert breakdown.brevity_penalty == 1.0
        assert breakdown.score == pytest.approx(100.0)

    def test_shared_vocabulary_without_dynamics(self):
        """Same unigrams, scrambled order: p1 high, p4 low — the
        signature of sensors that share states but not behaviour."""
        reference = [["a", "b", "c", "d", "e", "f"]]
        scrambled = [["d", "a", "f", "b", "e", "c"]]
        breakdown = bleu_breakdown(scrambled, reference)
        assert breakdown.precisions[1] == 1.0
        assert breakdown.precisions[4] == 0.0

    def test_brevity_captured(self):
        breakdown = bleu_breakdown([["a", "b"]], [["a", "b", "c", "d"]])
        assert breakdown.candidate_length == 2
        assert breakdown.reference_length == 4
        assert breakdown.brevity_penalty < 1.0

    def test_score_matches_corpus_bleu(self):
        candidates = [["a", "b", "c"], ["d", "e", "f"]]
        references = [["a", "b", "x"], ["d", "e", "f"]]
        breakdown = bleu_breakdown(candidates, references)
        assert breakdown.score == pytest.approx(
            corpus_bleu(candidates, references, smooth=True)
        )

    def test_short_sentences_omit_infeasible_orders(self):
        breakdown = bleu_breakdown([["a"]], [["a"]])
        assert set(breakdown.precisions) == {1}
